#!/usr/bin/env python
"""Stream tuning: why the number of concurrent kernels must be chosen per
device and per layer (the paper's Observations 1 and 2).

Sweeps manual stream counts for a few Table 5 layers on every paper GPU and
compares the empirically best count to what GLP4NN's analytical model picks
without any sweeping.

Usage::

    python examples/stream_tuning.py
"""

from repro.bench.reporting import format_table
from repro.gpusim import GPU, get_device
from repro.gpusim.device import PAPER_DEVICES
from repro.nn.zoo.table5 import CAFFENET_CONVS, CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import (
    FixedStreamExecutor,
    GLP4NNExecutor,
    NaiveExecutor,
)
from repro.runtime.lowering import lower_conv_forward

SWEEP = (1, 2, 4, 8, 16, 32)
LAYERS = (SIAMESE_CONVS[1], CIFAR10_CONVS[2], CAFFENET_CONVS[0])


def steady(ex, work):
    ex.run(work)
    return ex.run(work).elapsed_us


def main() -> None:
    rows = []
    for cfg in LAYERS:
        work = lower_conv_forward(cfg)
        for device in PAPER_DEVICES:
            times = {}
            for s in SWEEP:
                if s == 1:
                    ex = NaiveExecutor(GPU(get_device(device),
                                           record_timeline=False))
                else:
                    ex = FixedStreamExecutor(
                        GPU(get_device(device), record_timeline=False), s)
                times[s] = steady(ex, work)
            best = min(times, key=times.get)

            glp = GLP4NNExecutor(GPU(get_device(device),
                                     record_timeline=False))
            t_glp = steady(glp, work)
            decision = glp.runs[-1].decision
            rows.append([
                f"{cfg.net}/{cfg.name}",
                device,
                best,
                round(times[1] / times[best], 2),
                decision.c_out,
                round(times[1] / t_glp, 2),
            ])
    print(format_table(
        ["layer", "device", "best #streams (swept)", "best speedup",
         "model C_out", "GLP4NN speedup"],
        rows,
        title="Manual sweep vs analytical model "
              "(speedups over single stream)",
    ))
    print("\nThe model lands near the swept optimum with zero tuning runs —")
    print("and the optimum indeed differs across devices and layers.")


if __name__ == "__main__":
    main()
