#!/usr/bin/env python
"""Multi-GPU GLP4NN: one framework instance driving several devices.

The paper's Fig. 5 architecture: all GPUs in a machine share one resource
tracker and one stream manager, while each GPU has a private kernel
analyzer and runtime scheduler.  This example runs the GoogLeNet inception
units on three simulated GPUs under a single framework instance and shows
the per-device concurrency decisions the private analyzers make.

Usage::

    python examples/multi_gpu.py
"""

from repro.bench.reporting import format_table
from repro.core import GLP4NN
from repro.gpusim import GPU, get_device
from repro.nn.zoo.table5 import GOOGLENET_CONVS
from repro.runtime.lowering import lower_conv_forward


def main() -> None:
    gpus = [GPU(get_device(n), record_timeline=False)
            for n in ("K40C", "P100", "TitanXP")]
    glp = GLP4NN(gpus)

    works = [lower_conv_forward(cfg) for cfg in GOOGLENET_CONVS]
    for gpu in gpus:
        glp.warm_up(gpu, works)       # profile + analyze on each device

    rows = []
    for cfg, work in zip(GOOGLENET_CONVS, works):
        row = [cfg.name]
        for gpu in gpus:
            run = glp.run_layer(gpu, work)
            d = run.decision
            row.append(f"{d.c_out} ({run.elapsed_us / 1000:.2f} ms)")
        rows.append(row)
    print(format_table(
        ["layer"] + [g.props.name for g in gpus],
        rows,
        title="GoogLeNet units: per-device pool size (and layer time)",
    ))

    print("\nshared modules (Fig. 5):")
    print(f"  resource tracker : {glp.tracker.layers_profiled} layer "
          f"profiles across {len(gpus)} devices")
    print(f"  stream manager   : {len(glp.streams)} device pools")
    for gpu in gpus:
        pool = glp.streams.pool(gpu)
        print(f"    {gpu.props.name:8s} pool high-water mark: "
              f"{pool.high_water} streams")


if __name__ == "__main__":
    main()
