#!/usr/bin/env python
"""The paper's future work, implemented: fusion, dataflow, distribution.

The GLP4NN paper closes with three directions; this example demonstrates
the reproduction's implementation of each:

1. **kernel fusion** for small kernels — rescues the launch-bound layers
   that degrade in the paper's Fig. 9;
2. **complex kernel dependencies** — an inception module dispatched as a
   dataflow graph with event-based edges instead of layer barriers;
3. **distribution** — synchronous data-parallel replicas with a ring
   all-reduce, composing with per-device GLP4NN.

Usage::

    python examples/extensions.py
"""

from repro.comm import AllReduceModel, NVLINK1
from repro.core import GLP4NN
from repro.gpusim import GPU, get_device
from repro.nn.zoo import build_cifar10
from repro.nn.zoo.table5 import CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime import (
    DataParallelSession,
    GLP4NNExecutor,
    GraphScheduler,
    NaiveExecutor,
    conv_works,
    lower_conv_forward,
    make_fusion_transform,
)
from repro.bench.graph_ablation import inception_graph


def fresh(name="P100"):
    return GPU(get_device(name), record_timeline=False)


def demo_fusion() -> None:
    print("=== 1. kernel fusion (small kernels) ===")
    dev = get_device("P100")
    work = lower_conv_forward(SIAMESE_CONVS[0])   # the Fig. 9 loser
    naive = NaiveExecutor(fresh())
    naive.run(work)
    t_naive = naive.run(work).elapsed_us

    gpu = fresh()
    glp = GLP4NN([gpu], work_transform=make_fusion_transform(dev))
    glp.run_layer(gpu, work)
    t_fused = glp.run_layer(gpu, work).elapsed_us
    print(f"Siamese conv1: naive {t_naive / 1000:.2f} ms -> "
          f"GLP4NN+fusion {t_fused / 1000:.2f} ms "
          f"({t_naive / t_fused:.2f}x; was a slight LOSS without fusion)\n")


def demo_graph() -> None:
    print("=== 2. dataflow dependencies (inception as a DAG) ===")
    gpu = fresh()
    glp = GLP4NN([gpu])
    sched = GraphScheduler(glp, gpu)
    g = inception_graph()
    sched.run(g)                      # profile
    t = sched.run(g)
    print(f"inception-5b branches ({len(g)} kernels) dispatched as one "
          f"graph: {t / 1000:.2f} ms, one synchronization instead of five\n")


def demo_data_parallel() -> None:
    print("=== 3. distribution (data-parallel replicas) ===")
    net = build_cifar10(batch=100)
    grad_bytes = DataParallelSession.grad_bytes_of(net)
    single = GLP4NNExecutor(fresh())
    fwd = conv_works(CIFAR10_CONVS, "forward")
    bwd = conv_works(CIFAR10_CONVS, "backward")
    single.run_pass(fwd); single.run_pass(bwd)
    t1 = single.run_pass(fwd) + single.run_pass(bwd)
    print(f"1 x P100 (GLP4NN): {t1 / 1000:8.2f} ms/iteration")
    for k in (2, 4):
        dp = DataParallelSession(
            [GLP4NNExecutor(fresh()) for _ in range(k)],
            CIFAR10_CONVS, grad_bytes, comm=AllReduceModel(NVLINK1),
        )
        dp.run_iteration()
        it = dp.run_iteration()
        print(f"{k} x P100 (GLP4NN): {it.total_us / 1000:8.2f} ms/iteration "
              f"(compute {it.compute_us / 1000:.2f} + allreduce "
              f"{it.allreduce_us / 1000:.2f}; efficiency "
              f"{dp.scaling_efficiency(t1):.0%})")


if __name__ == "__main__":
    demo_fusion()
    demo_graph()
    demo_data_parallel()
