#!/usr/bin/env python
"""Export a GLP4NN execution timeline as a Chrome/Perfetto trace.

Runs CaffeNet's conv5 layer under naive Caffe and under GLP4NN on a
simulated P100 and writes both traces to JSON files loadable in
``chrome://tracing`` or https://ui.perfetto.dev — the reproduction of the
NVIDIA-Visual-Profiler views the paper's figures are screenshots of.

Usage::

    python examples/timeline_export.py [outdir]
"""

import pathlib
import sys

from repro.gpusim import GPU, get_device, ascii_timeline, to_chrome_trace
from repro.nn.zoo.table5 import CAFFENET_CONVS
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.lowering import lower_conv_forward


def trace(executor_cls, path: pathlib.Path) -> float:
    gpu = GPU(get_device("P100"), record_timeline=True)
    ex = executor_cls(gpu)
    work = lower_conv_forward(CAFFENET_CONVS[4])
    ex.run(work)                       # warm-up / profiling pass
    gpu.timeline.clear()
    run = ex.run(work)
    path.write_text(to_chrome_trace(gpu.timeline), encoding="utf-8")
    print(f"{executor_cls.__name__:18s} {run.elapsed_us / 1000:8.2f} ms  "
          f"peak concurrency {gpu.timeline.max_concurrency():2d}  -> {path}")
    print(ascii_timeline(gpu.timeline, width=74))
    print()
    return run.elapsed_us


def main(outdir: str = ".") -> None:
    out = pathlib.Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    t_naive = trace(NaiveExecutor, out / "trace_naive.json")
    t_glp = trace(GLP4NNExecutor, out / "trace_glp4nn.json")
    print(f"speedup: {t_naive / t_glp:.2f}x — open the JSON files in "
          "chrome://tracing to inspect the lanes")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
