#!/usr/bin/env python
"""Export a GLP4NN execution timeline as a Chrome/Perfetto trace.

Runs CaffeNet's conv5 layer under naive Caffe and under GLP4NN on a
simulated P100 and writes both runs as *merged* traces — host spans
(profiling, MILP solve, dispatch, sync) from :mod:`repro.obs` on one set
of tracks, per-stream device slices on another — loadable in
``chrome://tracing`` or https://ui.perfetto.dev.  This is the reproduction
of the NVIDIA-Visual-Profiler views the paper's figures are screenshots
of, with the host-side scheduling work the profiler cannot show added on
top.  (``python -m repro trace conv5`` produces the same kind of file from
a canned scenario; see ``docs/observability.md``.)

Usage::

    python examples/timeline_export.py [outdir]
"""

import pathlib
import sys

from repro.gpusim import GPU, get_device, ascii_timeline
from repro.nn.zoo.table5 import CAFFENET_CONVS
from repro.obs import MetricsRegistry, recording, to_perfetto_json
from repro.obs import metrics as obs_metrics
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.lowering import lower_conv_forward


def trace(executor_cls, path: pathlib.Path) -> float:
    gpu = GPU(get_device("P100"), record_timeline=True)
    ex = executor_cls(gpu)
    work = lower_conv_forward(CAFFENET_CONVS[4])
    ex.run(work)                       # warm-up / profiling pass
    gpu.timeline.clear()
    registry = MetricsRegistry()
    previous = obs_metrics.install(registry)
    try:
        with recording(lambda: gpu.host_time) as recorder:
            run = ex.run(work)
    finally:
        obs_metrics.install(previous)
    path.write_text(
        to_perfetto_json(recorder.sorted_spans(), gpu.timeline,
                         metrics=registry.snapshot(),
                         meta={"example": "timeline_export",
                               "executor": executor_cls.__name__}),
        encoding="utf-8",
    )
    print(f"{executor_cls.__name__:18s} {run.elapsed_us / 1000:8.2f} ms  "
          f"peak concurrency {gpu.timeline.max_concurrency():2d}  -> {path}")
    print(ascii_timeline(gpu.timeline, width=74))
    print()
    return run.elapsed_us


def main(outdir: str = ".") -> None:
    out = pathlib.Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    t_naive = trace(NaiveExecutor, out / "trace_naive.json")
    t_glp = trace(GLP4NNExecutor, out / "trace_glp4nn.json")
    print(f"speedup: {t_naive / t_glp:.2f}x — open the JSON files in "
          "https://ui.perfetto.dev to inspect the lanes")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
