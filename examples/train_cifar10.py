#!/usr/bin/env python
"""Convergence invariance: train CIFAR10-quick under Caffe and GLP4NN-Caffe.

Reproduces the paper's Fig. 11 argument interactively: the same network,
data and shuffle seed trained under the naive executor and under GLP4NN
produce *bit-identical* loss curves — the framework reschedules kernels but
never changes the math — while GLP4NN's simulated iterations are faster.

Usage::

    python examples/train_cifar10.py [iterations]
"""

import sys

from repro.data import BatchLoader, make_dataset
from repro.gpusim import GPU, get_device
from repro.nn.solver import SolverConfig
from repro.nn.zoo import build_cifar10
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.session import TrainingSession

BATCH = 100
SAMPLES = 1000


def train(executor_cls, iterations: int):
    net = build_cifar10(batch=BATCH, seed=42, with_accuracy=False)
    dataset = make_dataset("cifar10", num_samples=SAMPLES, seed=7)
    loader = BatchLoader(dataset, BATCH, seed=13)
    session = TrainingSession(
        net,
        executor_cls(GPU(get_device("P100"), record_timeline=False)),
        solver_config=SolverConfig(base_lr=0.01, momentum=0.9,
                                   weight_decay=0.004),
    )
    for _ in range(iterations):
        session.run_iteration(loader.next_batch())
    return session


def main(iterations: int = 60) -> None:
    print(f"training CIFAR10-quick for {iterations} iterations "
          f"(batch {BATCH}, synthetic CIFAR-10) on a simulated P100\n")
    caffe = train(NaiveExecutor, iterations)
    glp = train(GLP4NNExecutor, iterations)

    print(f"{'iter':>6} | {'Caffe loss':>12} | {'GLP4NN loss':>12} | same?")
    print("-" * 48)
    for i in range(0, iterations, max(1, iterations // 12)):
        a, b = caffe.losses[i], glp.losses[i]
        print(f"{i:>6} | {a:>12.6f} | {b:>12.6f} | "
              f"{'yes' if a == b else 'NO'}")

    identical = caffe.losses == glp.losses
    print(f"\nloss curves bit-identical : {identical}")
    t_caffe = caffe.steady_state_time_us()
    t_glp = glp.steady_state_time_us()
    print(f"simulated iteration time  : Caffe {t_caffe / 1000:.2f} ms, "
          f"GLP4NN {t_glp / 1000:.2f} ms "
          f"({t_caffe / t_glp:.2f}x per-iteration speedup)")
    if not identical:
        raise SystemExit("convergence invariance violated!")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
