#!/usr/bin/env python
"""Quickstart: accelerate one convolution layer with GLP4NN.

Runs the forward pass of CIFAR10's conv3 layer (batch 100, Table 5 of the
paper) on a simulated Tesla P100 three ways:

1. naive Caffe — every kernel on the default stream;
2. a manual 4-stream configuration;
3. GLP4NN — profile once, let the analytical model size the stream pool,
   dispatch round-robin.

Usage::

    python examples/quickstart.py [device]
"""

import sys

from repro.gpusim import GPU, get_device, ascii_timeline
from repro.nn.zoo.table5 import CIFAR10_CONVS
from repro.runtime.executor import (
    FixedStreamExecutor,
    GLP4NNExecutor,
    NaiveExecutor,
)
from repro.runtime.lowering import lower_conv_forward


def main(device_name: str = "P100") -> None:
    device = get_device(device_name)
    cfg = CIFAR10_CONVS[2]
    work = lower_conv_forward(cfg)
    print(f"device : {device.describe()}")
    print(f"layer  : {cfg.describe()}")
    print(f"work   : {len(work.parallel_chains)} per-sample chains, "
          f"{work.num_kernels} kernels total\n")

    # 1. naive Caffe
    naive = NaiveExecutor(GPU(device, record_timeline=False))
    naive.run(work)                       # warm-up for symmetry
    t_naive = naive.run(work).elapsed_us
    print(f"naive Caffe (1 stream)     : {t_naive / 1000:8.3f} ms")

    # 2. manual stream count
    fixed = FixedStreamExecutor(GPU(device, record_timeline=False), 4)
    fixed.run(work)
    t_fixed = fixed.run(work).elapsed_us
    print(f"manual 4 streams           : {t_fixed / 1000:8.3f} ms "
          f"({t_naive / t_fixed:.2f}x)")

    # 3. GLP4NN
    gpu = GPU(device, record_timeline=True)
    glp = GLP4NNExecutor(gpu)
    first = glp.run(work)                 # profiling + analysis pass
    run = glp.run(work)
    decision = run.decision
    assert decision is not None
    print(f"GLP4NN ({decision.c_out} streams)         : "
          f"{run.elapsed_us / 1000:8.3f} ms ({t_naive / run.elapsed_us:.2f}x)")
    print(f"\nanalytical model decision : {decision.counts}")
    print(f"one-time profiling pass    : {first.elapsed_us / 1000:.3f} ms "
          "(paid once, Table 6)")

    print("\nsteady-state timeline (one lane per stream):")
    # keep only the records of the final run
    recs = gpu.timeline.records
    last_run = [r for r in recs if r.enqueue_us >= recs[-1].enqueue_us
                - run.elapsed_us]
    gpu.timeline.records = last_run
    print(ascii_timeline(gpu.timeline, width=76))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "P100")
