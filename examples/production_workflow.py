#!/usr/bin/env python
"""Production-style workflow: Trainer loop + persisted decision cache.

Two framework features a long-running training job needs:

1. the Caffe-style :class:`~repro.nn.trainer.Trainer` loop — test phases on
   an interval, periodic solver snapshots;
2. GLP4NN's **persisted concurrency decisions** — the one-time profiling/
   analysis cost (Table 6) is saved to JSON after the first run, so a
   restarted job (e.g. resuming from a snapshot) dispatches concurrently
   from its very first iteration.

Usage::

    python examples/production_workflow.py [workdir]
"""

import pathlib
import sys

from repro.core import GLP4NN
from repro.data import BatchLoader, make_dataset
from repro.data.synthetic import Dataset
from repro.gpusim import GPU, get_device
from repro.nn import Solver, SolverConfig, Trainer
from repro.nn.zoo import build_cifar10
from repro.runtime import GLP4NNExecutor, TrainingSession, lower_net

BATCH = 50


def make_loaders():
    full = make_dataset("cifar10", 600, seed=3)
    train = Dataset("cifar10", full.images[:500], full.labels[:500])
    test = Dataset("cifar10", full.images[500:], full.labels[500:])
    return (BatchLoader(train, BATCH, seed=5),
            BatchLoader(test, BATCH, seed=6))


def main(workdir: str = ".") -> None:
    cache = pathlib.Path(workdir) / "glp4nn_decisions.json"

    # ---- first run: profile, analyze, train, persist -----------------
    print("=== run 1: fresh framework (pays profiling + analysis once) ===")
    gpu = GPU(get_device("P100"), record_timeline=False)
    glp = GLP4NN([gpu])
    net = build_cifar10(batch=BATCH, seed=42)
    train_loader, test_loader = make_loaders()
    trainer = Trainer(
        Solver(net, SolverConfig(base_lr=0.01, momentum=0.9,
                                 weight_decay=0.004)),
        train_loader, test_loader,
        test_interval=20, test_iter=2, snapshot_interval=40,
        display=lambda e: print(
            f"  iter {e.iteration:>3}  loss {e.train_loss:.4f}"
            + (f"  test acc {e.test_accuracy:.2%}"
               if e.test_accuracy is not None else "")
        ),
    )
    # meter the GPU side of each iteration through GLP4NN
    session = TrainingSession(net, GLP4NNExecutor(gpu, framework=glp),
                              compute_numeric=False)
    for _ in range(3):
        session.run_iteration()      # warm the profiles/decisions
    trainer.run(80)
    saved = glp.save_decisions(gpu, cache)
    print(f"saved {saved} concurrency decisions -> {cache}")
    print(f"snapshots taken: {len(trainer.snapshots)}; "
          f"best test accuracy {trainer.best_accuracy:.2%}\n")

    # ---- second run: restart, load cache, no profiling ---------------
    print("=== run 2: restarted process (loads the decision cache) ===")
    gpu2 = GPU(get_device("P100"), record_timeline=False)
    glp2 = GLP4NN([gpu2])
    loaded = glp2.load_decisions(gpu2, cache)
    net2 = build_cifar10(batch=BATCH, seed=42)
    session2 = TrainingSession(net2, GLP4NNExecutor(gpu2, framework=glp2),
                               compute_numeric=False)
    first = session2.run_iteration()
    profiled = any(r.profiled for r in session2.executor.runs)
    print(f"loaded {loaded} decisions; first iteration ran in "
          f"{first.sim_time_us / 1000:.2f} ms with profiling passes: "
          f"{profiled}")
    assert not profiled, "decision cache should have skipped profiling"


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
