#!/usr/bin/env python
"""Inter-operator stream planning on a GoogLeNet inception unit.

Builds inception-5b (the paper's Table 5 geometry on the 7x7x832 map),
plans it under all four stream policies — layer-serial, round-robin,
chain-affine, opara — certifies every plan race-free through the
fallback ladder, then executes each plan twice: eager per-kernel
dispatch and one amortized graph launch of the same certified plan.

Usage::

    python examples/inception_streams.py

See docs/inter_op.md for the planning pipeline this walks through.
"""

from repro.bench.reporting import format_table
from repro.gpusim.engine import GPU
from repro.interop import (
    PLAN_POLICIES,
    build_plan,
    certify,
    estimate_graph,
    inception_unit,
    replay_plan,
    run_plan,
    structural_effects,
    suggest_pool_size,
)
from repro.serve.engine import resolve_device

UNIT = "5b"
BATCH = 4


def main() -> None:
    props = resolve_device("p100")
    workload = inception_unit(UNIT, batch=BATCH)
    graph = workload.graph
    estimates = estimate_graph(graph, props)
    streams = suggest_pool_size(graph, props)
    effects = structural_effects(graph, in_place=workload.in_place)

    print(f"inception-{UNIT} x{BATCH} on {props.name}: "
          f"{len(graph)} kernels, analyzer-sized pool of {streams}")

    rows = []
    for policy in PLAN_POLICIES:
        plan = build_plan(graph, policy, streams, device=props,
                          estimates=estimates)
        cert = certify(graph, plan, effects=effects, device=props)
        gpu = GPU(props)
        pool = [gpu.create_stream(name=f"demo.{policy}.s{i}")
                for i in range(streams)]
        eager = run_plan(gpu, graph, cert.plan, pool)
        graph_run = replay_plan(GPU(props), graph, cert.plan,
                                effects=effects)
        rows.append([
            policy,
            cert.plan.streams_used(),
            cert.plan.cross_edges(graph),
            cert.plan.switches(),
            "yes" if cert.plan.certified else "NO",
            f"{eager.elapsed_us:.1f}",
            f"{graph_run.elapsed_us:.1f}",
        ])

    print(format_table(
        ["policy", "streams", "x-edges", "switches", "certified",
         "eager us", "graph us"], rows))
    serial = float(rows[0][5])
    opara = float(rows[-1][5])
    print(f"\nopara vs layer-serial (eager): {serial / opara:.2f}x; "
          "every plan above was race-detector-certified before running")


if __name__ == "__main__":
    main()
