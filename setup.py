"""Setup shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools lacks PEP 660 wheel support (the
legacy ``setup.py develop`` code path needs this file).
"""

from setuptools import setup

setup()
