"""Multi-threaded host dispatch: the baseline GLP4NN argues against.

The paper's related work covers OpenMP-based coarse-grain parallelization
(Tallada, PPoPP'16) and node-level parallelization, and criticizes them:
*"may occupy too many CPU threads, which will eliminate the potential of
CPU-GPU cooperations"* — plus they "require programmers to determine the
number of threads".  GLP4NN's stream pool gets concurrency from a *single*
host thread.

This module models the alternative so the claim can be measured: ``k`` host
threads each own a serialized launch pipeline (so launches overlap across
threads), chains are distributed over the threads, and each thread drives
its own CUDA stream.  Costs modelled:

* per-thread spawn/teardown (one-time per layer, OpenMP fork-join style);
* a launch-latency inflation factor for driver lock contention — the CUDA
  driver serializes parts of every launch, so concurrent launchers do not
  scale perfectly.

The comparison metric is two-dimensional on purpose: layer time *and* CPU
threads consumed, which is exactly the trade-off the paper's critique is
about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.gpusim.engine import GPU
from repro.kernels.ir import LayerWork
from repro.obs.metrics import counter_inc, observe
from repro.obs.spans import span
from repro.runtime.executor import Executor

#: One-time cost of forking/joining a worker thread (OpenMP region entry).
THREAD_SPAWN_US = 15.0
#: Driver-lock contention: with k concurrent launchers, each launch costs
#: ``T_launch * (1 + (k - 1) * CONTENTION)`` — parts of cudaLaunchKernel
#: hold a global driver lock.
DRIVER_CONTENTION = 0.15


@dataclass
class MultiThreadRun:
    """Timing record of one multi-threaded layer execution."""

    key: str
    elapsed_us: float
    threads_used: int
    launches: int


class MultiThreadDispatcher:
    """Dispatch a layer's chains from ``k`` simulated host threads.

    Each thread owns one stream and a private launch clock; kernels are
    stamped with per-thread enqueue times, so the host launch pipeline —
    GLP4NN's single-thread bottleneck on short-kernel layers — is
    parallelized, at the price of ``k`` CPU threads.
    """

    def __init__(self, gpu: GPU, threads: int) -> None:
        if threads < 1:
            raise SchedulingError("need at least one dispatch thread")
        if threads > gpu.props.max_concurrent_kernels:
            raise SchedulingError(
                f"{threads} threads exceed the device concurrency degree"
            )
        self.gpu = gpu
        self.threads = threads
        self._streams = [gpu.create_stream(name=f"thread{i}")
                         for i in range(threads)]
        self.runs: list[MultiThreadRun] = []

    def run(self, work: LayerWork) -> MultiThreadRun:
        gpu = self.gpu
        start = gpu.host_time
        per_launch = gpu.props.launch_latency_us * (
            1.0 + (self.threads - 1) * DRIVER_CONTENTION
        )
        with span("runtime.multithread", cat="runtime", layer=work.key,
                  threads=self.threads) as h:
            clocks = [start + THREAD_SPAWN_US] * self.threads
            launches = 0
            for i, chain in enumerate(work.parallel_chains):
                t = i % self.threads
                for spec in chain:
                    clocks[t] += per_launch
                    gpu.launch(spec, stream=self._streams[t],
                               enqueue_at=clocks[t])
                    launches += 1
            # join threads, then run whole-batch serial work on the main
            # thread
            gpu.host_time = max([gpu.host_time] + clocks) + THREAD_SPAWN_US
            for spec in work.serial_kernels:
                gpu.launch(spec)
                launches += 1
            gpu.synchronize()
            h.set(launches=launches)
        counter_inc("runtime.multithread_layers")
        observe("runtime.multithread_layer_us", gpu.host_time - start)
        run = MultiThreadRun(
            key=work.key,
            elapsed_us=gpu.host_time - start,
            threads_used=self.threads,
            launches=launches,
        )
        self.runs.append(run)
        return run


class MultiThreadExecutor(Executor):
    """Executor facade over :class:`MultiThreadDispatcher`.

    Lets the multi-threaded host-dispatch baseline plug into anything that
    drives an :class:`~repro.runtime.executor.Executor` — training
    sessions and the differential verification harness — so the OpenMP
    alternative can be compared end-to-end, not just per layer.
    """

    def __init__(self, gpu: GPU, threads: int = 4) -> None:
        super().__init__(gpu)
        self.dispatcher = MultiThreadDispatcher(gpu, threads)
        self.threads = threads

    def run(self, work: LayerWork) -> MultiThreadRun:
        return self.dispatcher.run(work)

    @property
    def runs(self) -> list[MultiThreadRun]:
        return self.dispatcher.runs
