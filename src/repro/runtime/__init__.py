"""Integration layer: "GLP4NN-Caffe" on the simulated GPU.

* :mod:`repro.runtime.lowering` — turns layers (or bare Table 5 configs)
  into :class:`~repro.kernels.ir.LayerWork`: per-sample kernel chains for
  convolutions (the batch-level parallelism GLP4NN exploits) and
  whole-batch kernels for everything else.
* :mod:`repro.runtime.executor` — three executors over one scheduler core:
  ``NaiveExecutor`` (unmodified Caffe: default stream only),
  ``FixedStreamExecutor`` (manual stream counts, for the motivation
  experiments), and ``GLP4NNExecutor`` (the framework).
* :mod:`repro.runtime.session` — training sessions combining the numeric
  solver with simulated timing (the Fig. 7 / Fig. 11 driver).
* :mod:`repro.runtime.metrics` — timing summaries and speedup helpers.
"""

from repro.runtime.lowering import (
    lower_conv_forward,
    lower_conv_backward,
    lower_layer,
    lower_net,
    conv_works,
)
from repro.runtime.executor import (
    Executor,
    NaiveExecutor,
    FixedStreamExecutor,
    GLP4NNExecutor,
)
from repro.runtime.session import TrainingSession, IterationTiming
from repro.runtime.metrics import TimingSummary, speedup
from repro.runtime.graph import KernelGraph, GraphScheduler, dispatch_graph
from repro.runtime.fusion import fuse_work, fuse_chain, make_fusion_transform
from repro.runtime.data_parallel import DataParallelSession, DataParallelIteration

__all__ = [
    "lower_conv_forward",
    "lower_conv_backward",
    "lower_layer",
    "lower_net",
    "conv_works",
    "Executor",
    "NaiveExecutor",
    "FixedStreamExecutor",
    "GLP4NNExecutor",
    "TrainingSession",
    "IterationTiming",
    "TimingSummary",
    "speedup",
    "KernelGraph",
    "GraphScheduler",
    "dispatch_graph",
    "fuse_work",
    "fuse_chain",
    "make_fusion_transform",
    "DataParallelSession",
    "DataParallelIteration",
]
