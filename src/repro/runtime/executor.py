"""Executors: naive Caffe, fixed stream counts, and GLP4NN.

All three share the :class:`~repro.core.runtime_scheduler.RuntimeScheduler`
dispatch core and differ only in policy, so timing comparisons between them
measure scheduling — not implementation — differences:

* :class:`NaiveExecutor` — unmodified Caffe: every kernel on the default
  stream, in order.
* :class:`FixedStreamExecutor` — a user-chosen stream count, round-robin;
  this is the configuration behind the paper's motivation experiments
  (Figs. 2-4: sweep stream counts, observe speedup and the per-device
  optimum).
* :class:`GLP4NNExecutor` — the framework: profile on first execution,
  size the pool with the analytical model, dispatch round-robin.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.framework import GLP4NN
from repro.core.runtime_scheduler import DispatchPolicy, LayerRun, RuntimeScheduler
from repro.gpusim.engine import GPU
from repro.kernels.ir import LayerWork
from repro.obs.spans import span


class Executor:
    """Base executor: run layer works on one device and record timings."""

    def __init__(self, gpu: GPU) -> None:
        self.gpu = gpu
        #: When set (:meth:`enable_graph_mode`), ``run_pass`` routes
        #: through the graph-launch lifecycle — warmup, capture, hazard
        #: admission, amortized replay — falling back to this class's
        #: eager dispatch on any capture miss or validation failure.
        self.graph_runtime = None

    @property
    def scheduler(self) -> RuntimeScheduler:
        raise NotImplementedError

    def run(self, work: LayerWork) -> LayerRun:
        """Execute one layer-phase; returns its timing record."""
        return self.scheduler.run_layer(work)

    def run_pass(self, works: Iterable[LayerWork]) -> float:
        """Execute a sequence of layers; returns total elapsed µs."""
        if self.graph_runtime is not None:
            return self.graph_runtime.run_pass(self, works)
        return self._eager_run_pass(works)

    def _eager_run_pass(self, works: Iterable[LayerWork]) -> float:
        """One kernel launch per dispatch op — the pre-graph path."""
        with span("runtime.pass", cat="runtime") as h:
            total = 0.0
            layers = 0
            for w in works:
                total += self.run(w).elapsed_us
                layers += 1
            h.set(layers=layers, elapsed_us=total)
        return total

    def enable_graph_mode(self, net=None, network: str = "",
                          effects_fn=None, graphs=None,
                          minimize: bool = False):
        """Switch ``run_pass`` to graph-launch dispatch; returns the runtime.

        ``net`` supplies the capture memory-effect model (blob-wiring
        derived; synthetic chain-structural effects when omitted);
        ``graphs`` seeds pre-captured graphs from a cache; ``minimize``
        runs admitted graphs through certified sync-elision.  See
        :class:`repro.graphs.runtime.GraphModeRuntime`.
        """
        from repro.graphs.runtime import GraphModeRuntime

        self.graph_runtime = GraphModeRuntime(
            net=net, network=network, effects_fn=effects_fn,
            graphs=graphs, minimize=minimize)
        return self.graph_runtime

    @property
    def runs(self) -> list[LayerRun]:
        return self.scheduler.runs

    def layer_times(self) -> dict[str, float]:
        """Per-layer elapsed time of the most recent run of each layer."""
        out: dict[str, float] = {}
        for r in self.scheduler.runs:
            out[r.key] = r.elapsed_us
        return out


class NaiveExecutor(Executor):
    """Unmodified Caffe: single (default) stream."""

    def __init__(self, gpu: GPU) -> None:
        super().__init__(gpu)
        glp = GLP4NN([gpu], policy=DispatchPolicy.SINGLE)
        self._scheduler = glp.scheduler_for(gpu)
        self.framework = glp

    @property
    def scheduler(self) -> RuntimeScheduler:
        return self._scheduler


class FixedStreamExecutor(Executor):
    """Manual stream count (the Figs. 2-4 sweep configuration)."""

    def __init__(self, gpu: GPU, num_streams: int) -> None:
        super().__init__(gpu)
        glp = GLP4NN([gpu], policy=DispatchPolicy.FIXED,
                     fixed_streams=num_streams)
        self._scheduler = glp.scheduler_for(gpu)
        self.framework = glp
        self.num_streams = num_streams

    @property
    def scheduler(self) -> RuntimeScheduler:
        return self._scheduler


class FusedExecutor(Executor):
    """GLP4NN with the greedy kernel-fusion prepass enabled.

    Identical to :class:`GLP4NNExecutor` except every work unit passes
    through :func:`repro.runtime.fusion.make_fusion_transform` before both
    profiling and dispatch — the configuration behind the fusion ablation
    and the ``fused`` differential-verification path.
    """

    def __init__(self, gpu: GPU, threshold_us: Optional[float] = None,
                 analyze_fn=None) -> None:
        super().__init__(gpu)
        from repro.runtime.fusion import (
            DEFAULT_THRESHOLD_US,
            make_fusion_transform,
        )
        self.threshold_us = (DEFAULT_THRESHOLD_US if threshold_us is None
                             else threshold_us)
        self.framework = GLP4NN(
            [gpu], policy=DispatchPolicy.MODEL,
            analyze_fn=analyze_fn,
            work_transform=make_fusion_transform(gpu.props,
                                                 self.threshold_us),
        )
        self._scheduler = self.framework.scheduler_for(gpu)

    @property
    def scheduler(self) -> RuntimeScheduler:
        return self._scheduler


class GLP4NNExecutor(Executor):
    """The framework: model-sized pools, profile-then-dispatch.

    Pass an existing :class:`~repro.core.framework.GLP4NN` to share its
    tracker/analyzer caches (e.g. across executors in one session); by
    default a private instance is created.
    """

    def __init__(self, gpu: GPU, framework: Optional[GLP4NN] = None,
                 use_launch_bound: bool = True) -> None:
        super().__init__(gpu)
        self.framework = framework or GLP4NN(
            [gpu], policy=DispatchPolicy.MODEL,
            use_launch_bound=use_launch_bound,
        )
        self._scheduler = self.framework.scheduler_for(gpu)

    @property
    def scheduler(self) -> RuntimeScheduler:
        return self._scheduler

    def warm_up(self, works: Sequence[LayerWork]) -> None:
        """Run the profiling pass for all layers up front."""
        for w in works:
            self.run(w)
