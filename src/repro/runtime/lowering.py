"""Lowering: layers -> GPU kernel work units.

Convolution layers lower to **per-sample chains** — the GPU form of the
batch loop in the paper's Algorithms 1 and 2 (``for n <- 1 to N``), which is
how unmodified Caffe actually executes convolutions (a loop of im2col +
GEMM per sample) and exactly the independence GLP4NN's batch-level
parallelism exploits.  Every other layer type lowers to whole-batch serial
kernels, since the paper applies the framework to convolution layers only.

Backward convolutions need one care point: Caffe accumulates every sample's
weight-gradient GEMM into a single buffer, which is unsafe across streams.
The lowering therefore gives each *chain* its own weight-gradient partial
and adds a serial reduction kernel on the default stream — the standard
privatize-and-reduce transform, preserving convergence invariance.

All of this is *shape-driven*: a bare :class:`~repro.nn.config.ConvConfig`
(a Table 5 row) suffices, so CaffeNet-sized timing experiments never touch
tensor data.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.errors import NetworkError
from repro.kernels.ir import KernelChain, LayerWork
from repro.kernels.ops import (
    axpy_spec,
    col2im_spec,
    eltwise_spec,
    gemmk_bias_spec,
    im2col_spec,
    lrn_spec,
    pooling_spec,
    relu_spec,
    sgemm_spec,
    softmax_spec,
)
from repro.nn.config import ConvConfig
from repro.nn.layer import Layer
from repro.nn.layers import (
    AccuracyLayer,
    ConcatLayer,
    ConvolutionLayer,
    DropoutLayer,
    EltwiseLayer,
    FlattenLayer,
    InnerProductLayer,
    LRNLayer,
    PoolingLayer,
    ReLULayer,
    SigmoidLayer,
    TanHLayer,
)
from repro.nn.layers.losses import ContrastiveLossLayer, SoftmaxWithLossLayer
from repro.nn.net import Net


def _is_1x1(cfg: ConvConfig) -> bool:
    """1x1/stride-1/no-pad convolutions skip im2col (Caffe's fast path)."""
    return cfg.f == 1 and cfg.s == 1 and cfg.p == 0


def lower_conv_forward(cfg: ConvConfig, layer_name: str = "") -> LayerWork:
    """Per-sample forward chains: [im2col] -> sgemm (x group) -> gemmk."""
    name = layer_name or cfg.name
    chains = []
    for n in range(cfg.n):
        kernels = []
        if not _is_1x1(cfg):
            kernels.append(im2col_spec(cfg.ci, cfg.out_hw, cfg.out_hw,
                                       cfg.f, cfg.f, tag=f"{name}/s{n}"))
        for _ in range(cfg.g):
            kernels.append(sgemm_spec(cfg.co_gemm, cfg.out_spatial,
                                      cfg.k_gemm, tag=f"{name}/s{n}"))
        kernels.append(gemmk_bias_spec(cfg.co, cfg.out_spatial,
                                       tag=f"{name}/s{n}"))
        chains.append(KernelChain(tuple(kernels), label=f"{name}/s{n}"))
    return LayerWork(layer=name, phase="forward",
                     parallel_chains=tuple(chains))


def lower_conv_backward(cfg: ConvConfig, layer_name: str = "") -> LayerWork:
    """Per-sample backward chains + serial gradient reduction.

    Each chain computes the sample's weight-gradient partial
    (``dW_n = dout_n @ cols_n^T``), the data gradient
    (``dcols_n = W^T @ dout_n``) and scatters it back with ``col2im``.
    The serial tail reduces the partials and the bias gradient.
    """
    name = layer_name or cfg.name
    chains = []
    for n in range(cfg.n):
        kernels = []
        for _ in range(cfg.g):
            kernels.append(
                # weight-gradient partial for this sample
                sgemm_spec(cfg.co_gemm, cfg.k_gemm, cfg.out_spatial,
                           tag=f"{name}/s{n}/dW", accumulate=True))
            kernels.append(
                # data gradient in column space
                sgemm_spec(cfg.k_gemm, cfg.out_spatial, cfg.co_gemm,
                           tag=f"{name}/s{n}/dX"))
        if not _is_1x1(cfg):
            kernels.append(col2im_spec(cfg.ci, cfg.hw, cfg.hw, cfg.f, cfg.f,
                                       tag=f"{name}/s{n}"))
        chains.append(KernelChain(tuple(kernels), label=f"{name}/s{n}"))
    serial = (
        # reduce per-stream weight-gradient partials
        axpy_spec(cfg.co * cfg.k_gemm, tag=f"{name}/reduce_dW"),
        # bias gradient (row-sum of dout)
        gemmk_bias_spec(cfg.co, cfg.out_spatial, tag=f"{name}/db"),
    )
    return LayerWork(layer=name, phase="backward",
                     parallel_chains=tuple(chains), serial_kernels=serial)


# ----------------------------------------------------------------------
# Whole-batch lowerings for the non-convolution layers.
# ----------------------------------------------------------------------

def _serial_work(name: str, phase: str, kernels) -> LayerWork:
    return LayerWork(layer=name, phase=phase, serial_kernels=tuple(kernels))


def lower_layer(layer: Layer, phase: str,
                bottom_shapes: Optional[Sequence[tuple[int, ...]]] = None
                ) -> Optional[LayerWork]:
    """Lower one layer instance (after ``setup``) for one phase.

    Returns ``None`` for layers with no GPU work (accuracy is evaluated
    host-side in this integration).
    """
    if isinstance(layer, ConvolutionLayer):
        if layer.config is None:
            raise NetworkError(f"{layer.name}: lower before setup")
        if phase == "forward":
            return lower_conv_forward(layer.config, layer.name)
        return lower_conv_backward(layer.config, layer.name)

    if isinstance(layer, PoolingLayer):
        cfg = layer.config
        if cfg is None:
            raise NetworkError(f"{layer.name}: lower before setup")
        spec = pooling_spec(cfg.n * cfg.c, cfg.out_hw, cfg.out_hw,
                            cfg.f, cfg.f, op=cfg.op, tag=layer.name)
        if phase == "backward":
            spec = eltwise_spec(f"{cfg.op}pool_bwd",
                                cfg.n * cfg.c * cfg.hw * cfg.hw,
                                flops=2.0, bytes_per_elem=12.0,
                                tag=layer.name)
        return _serial_work(layer.name, phase, [spec])

    if isinstance(layer, (ReLULayer, SigmoidLayer, TanHLayer)):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: elementwise lowering needs shapes")
        count = math.prod(bottom_shapes[0])
        kind = type(layer).__name__.replace("Layer", "").lower()
        if phase == "forward" and isinstance(layer, ReLULayer):
            spec = relu_spec(count, tag=layer.name)
        else:
            spec = eltwise_spec(f"{kind}_{'fwd' if phase == 'forward' else 'bwd'}",
                                count, tag=layer.name)
        return _serial_work(layer.name, phase, [spec])

    if isinstance(layer, LRNLayer):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: LRN lowering needs shapes")
        n, c, h, w = bottom_shapes[0]
        scale = lrn_spec(c, n * h, w, layer.size, stage="scale", tag=layer.name)
        out = lrn_spec(c, n * h, w, layer.size, stage="output", tag=layer.name)
        return _serial_work(layer.name, phase, [scale, out])

    if isinstance(layer, InnerProductLayer):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: inner-product lowering needs shapes")
        batch = bottom_shapes[0][0]
        in_features = math.prod(bottom_shapes[0][1:])
        if phase == "forward":
            kernels = [
                sgemm_spec(layer.num_output, batch, in_features, tag=layer.name),
                gemmk_bias_spec(layer.num_output, batch, tag=layer.name),
            ]
        else:
            kernels = [
                sgemm_spec(layer.num_output, in_features, batch,
                           tag=f"{layer.name}/dW", accumulate=True),
                sgemm_spec(in_features, batch, layer.num_output,
                           tag=f"{layer.name}/dX"),
                gemmk_bias_spec(layer.num_output, 1, tag=f"{layer.name}/db"),
            ]
        return _serial_work(layer.name, phase, kernels)

    if isinstance(layer, DropoutLayer):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: dropout lowering needs shapes")
        count = math.prod(bottom_shapes[0])
        return _serial_work(layer.name, phase,
                            [eltwise_spec("dropout", count, tag=layer.name)])

    if isinstance(layer, EltwiseLayer):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: eltwise lowering needs shapes")
        count = math.prod(bottom_shapes[0])
        return _serial_work(
            layer.name, phase,
            [eltwise_spec(f"eltwise_{layer.operation}", count,
                          flops=float(len(bottom_shapes)),
                          bytes_per_elem=4.0 * (len(bottom_shapes) + 1),
                          tag=layer.name)],
        )

    if isinstance(layer, FlattenLayer):
        # reshape is metadata-only on the device: no kernels
        return None

    if isinstance(layer, ConcatLayer):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: concat lowering needs shapes")
        count = sum(math.prod(s) for s in bottom_shapes)
        return _serial_work(layer.name, phase,
                            [eltwise_spec("concat_copy", count, flops=0.0,
                                          tag=layer.name)])

    if isinstance(layer, SoftmaxWithLossLayer):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: loss lowering needs shapes")
        batch = bottom_shapes[0][0]
        classes = math.prod(bottom_shapes[0][1:])
        return _serial_work(layer.name, phase,
                            [softmax_spec(classes, batch, tag=layer.name)])

    if isinstance(layer, ContrastiveLossLayer):
        if bottom_shapes is None:
            raise NetworkError(f"{layer.name}: loss lowering needs shapes")
        count = math.prod(bottom_shapes[0])
        return _serial_work(layer.name, phase,
                            [eltwise_spec("contrastive", count, flops=4.0,
                                          tag=layer.name)])

    if isinstance(layer, AccuracyLayer):
        return None

    raise NetworkError(
        f"no lowering for layer type {type(layer).__name__} ({layer.name!r})"
    )


def lower_net(net: Net, phase: str) -> list[LayerWork]:
    """Lower every layer of a set-up net, in execution order for the phase.

    The backward list is returned in reverse layer order, the order the
    solver executes it.
    """
    works: list[LayerWork] = []
    for ld in net.layer_defs:
        shapes = [net.blob_shapes[b] for b in ld.bottoms]
        work = lower_layer(ld.layer, phase, shapes)
        if work is not None:
            works.append(work)
    if phase == "backward":
        works.reverse()
    return works


def conv_works(convs: Sequence[ConvConfig], phase: str = "forward",
               batch_override: Optional[int] = None) -> list[LayerWork]:
    """Shape-driven lowering of bare Table 5 rows (no net required)."""
    out = []
    for cfg in convs:
        if batch_override is not None:
            cfg = ConvConfig(cfg.name, batch_override, cfg.ci, cfg.hw,
                             cfg.co, cfg.f, cfg.s, cfg.p, cfg.net)
        if phase == "forward":
            out.append(lower_conv_forward(cfg))
        else:
            out.append(lower_conv_backward(cfg))
    return out
