"""Timing summaries and speedup helpers used by benches and examples."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence


def speedup(baseline_us: float, optimized_us: float) -> float:
    """``baseline / optimized`` — values > 1 mean the optimization won."""
    if optimized_us <= 0:
        raise ValueError("optimized time must be positive")
    return baseline_us / optimized_us


@dataclass(frozen=True)
class TimingSummary:
    """Mean/min/max over repeated iteration timings (µs)."""

    samples: tuple[float, ...]

    @classmethod
    def of(cls, samples: Sequence[float]) -> "TimingSummary":
        if not samples:
            raise ValueError("cannot summarize zero samples")
        return cls(tuple(float(s) for s in samples))

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), linearly interpolated.

        Uses the inclusive definition (min at q=0, max at q=100), matching
        ``numpy.percentile``'s default.

        >>> TimingSummary.of([10.0, 20.0, 30.0, 40.0]).percentile(50)
        25.0
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = q / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] + (ordered[hi] - ordered[lo]) * frac

    @property
    def p50(self) -> float:
        """Median latency (the 50th percentile)."""
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """Tail latency — the number SLO dashboards watch."""
        return self.percentile(99.0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{self.mean:.1f}us (min {self.minimum:.1f}, "
                f"max {self.maximum:.1f}, n={len(self.samples)})")


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for speedups)."""
    if not values:
        raise ValueError("cannot take the geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
