"""Kernel fusion for small kernels (the paper's second future-work item).

The paper: "kernel reordering and kernel fusion technologies may be helpful
to gain better training performance ..., especially for small kernels."
Small kernels lose to the host launch pipeline — a 4 µs kernel behind a
5.5 µs launch leaves the GPU idle no matter how many streams exist (the
mechanism behind the Fig. 9 degradations).  Fusing adjacent dependent
kernels in a chain removes launches entirely.

The pass is a greedy forward merge over each chain: consecutive kernels
whose estimated solo time is below ``threshold_us`` are combined into one
launch.  The fused kernel uses the geometry of its largest member (the
"carrier"), the summed arithmetic/memory work renormalized per thread, the
maximum register footprint, and the maximum shared memory (phases execute
sequentially inside the fused kernel, so footprints do not add).

This is a *model* of fusion cost/benefit, not a code generator — exactly
what is needed to evaluate the design question the paper raises.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.kernels.costmodel import kernel_solo_time_us
from repro.kernels.ir import KernelChain, LayerWork

#: Kernels faster than this (solo) are fusion candidates by default: a few
#: launch latencies' worth of work.
DEFAULT_THRESHOLD_US = 25.0


@dataclass(frozen=True)
class FusionReport:
    """What a fusion pass did to one work unit."""

    kernels_before: int
    kernels_after: int

    @property
    def launches_saved(self) -> int:
        return self.kernels_before - self.kernels_after

    @property
    def fused_anything(self) -> bool:
        return self.launches_saved > 0


def merge_specs(parts: Sequence[KernelSpec]) -> KernelSpec:
    """Combine dependent kernels into one launch (see module docstring)."""
    if len(parts) == 1:
        return parts[0]
    carrier = max(parts, key=lambda k: k.launch.total_threads)
    total_flops = sum(k.total_flops for k in parts)
    total_bytes = sum(k.total_bytes for k in parts)
    threads = carrier.launch.total_threads
    launch = LaunchConfig(
        grid=carrier.launch.grid,
        block=carrier.launch.block,
        shared_mem_static=max(k.launch.shared_mem_static for k in parts),
        shared_mem_dynamic=max(k.launch.shared_mem_dynamic for k in parts),
        registers_per_thread=max(
            k.launch.registers_per_thread for k in parts),
    )
    name = "fused_" + "_".join(dict.fromkeys(k.name for k in parts))
    return KernelSpec(
        name=name,
        launch=launch,
        flops_per_thread=total_flops / threads,
        bytes_per_thread=total_bytes / threads,
        tag=carrier.tag,
    )


def fuse_chain(chain: KernelChain, device: DeviceProperties,
               threshold_us: float = DEFAULT_THRESHOLD_US) -> KernelChain:
    """Greedily merge runs of small consecutive kernels in one chain."""
    out: list[KernelSpec] = []
    group: list[KernelSpec] = []

    def flush() -> None:
        if group:
            out.append(merge_specs(group))
            group.clear()

    for spec in chain:
        if kernel_solo_time_us(spec, device) < threshold_us:
            group.append(spec)
        else:
            flush()
            out.append(spec)
    flush()
    return KernelChain(tuple(out), label=chain.label)


def fuse_work(work: LayerWork, device: DeviceProperties,
              threshold_us: float = DEFAULT_THRESHOLD_US
              ) -> tuple[LayerWork, FusionReport]:
    """Apply the fusion pass to every chain of a layer work unit.

    Serial (whole-batch) kernels are left alone: they are launch-count
    cheap already, and reductions must stay separate for correctness.
    """
    before = work.num_kernels
    chains = tuple(
        fuse_chain(c, device, threshold_us) for c in work.parallel_chains
    )
    fused = LayerWork(
        layer=work.layer,
        phase=work.phase,
        parallel_chains=chains,
        serial_kernels=work.serial_kernels,
    )
    return fused, FusionReport(before, fused.num_kernels)


def make_fusion_transform(device: DeviceProperties,
                          threshold_us: float = DEFAULT_THRESHOLD_US):
    """A ``work -> work`` transform for the runtime scheduler."""

    def transform(work: LayerWork) -> LayerWork:
        fused, _ = fuse_work(work, device, threshold_us)
        return fused

    return transform
