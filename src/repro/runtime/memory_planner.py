"""Device-memory planning for lowered networks.

Caffe allocates parameters, activations (data + gradients) and the per-layer
``im2col`` column buffer on the device.  This planner sizes those
allocations for a built net, places them in the simulated device allocator,
and reports the footprint — used to check a network actually fits the
device (CaffeNet at batch 256 is famously close on 12 GB cards) and to
demonstrate the paper's claim that GLP4NN itself adds *no* device memory
(its tracker state is host-side, Eq. 10-11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.engine import GPU
from repro.gpusim.memory import Allocation
from repro.nn.layers import ConvolutionLayer
from repro.nn.net import Net

_F32 = 4


@dataclass
class MemoryPlan:
    """Breakdown of a net's device-memory footprint, in bytes."""

    params: int
    param_grads: int
    activations: int
    activation_grads: int
    col_buffer: int
    allocations: list[Allocation] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (self.params + self.param_grads + self.activations
                + self.activation_grads + self.col_buffer)


def plan_memory(net: Net) -> MemoryPlan:
    """Size every device allocation a Caffe-style runtime would make."""
    params = sum(p.data.nbytes for p, _, _ in net.unique_params())
    acts = sum(
        _F32 * _count(shape) for name, shape in net.blob_shapes.items()
    )
    # Caffe shares one column buffer sized for the largest conv layer
    # (per-sample, since the GPU path loops over the batch).
    col = 0
    for layer in net.layers:
        if isinstance(layer, ConvolutionLayer) and layer.config is not None:
            cfg = layer.config
            col = max(col, _F32 * cfg.g * cfg.k_gemm * cfg.out_spatial)
    return MemoryPlan(
        params=params,
        param_grads=params,
        activations=acts,
        activation_grads=acts,
        col_buffer=col,
    )


def _count(shape) -> int:
    n = 1
    for d in shape:
        n *= int(d)
    return n


def allocate_net(gpu: GPU, net: Net) -> MemoryPlan:
    """Reserve the plan on the device allocator (raises on OOM).

    Returns the plan with live allocation handles attached; free them with
    :func:`release_net`.
    """
    plan = plan_memory(net)
    allocator = gpu.allocator
    pieces = [
        ("params", plan.params),
        ("param_grads", plan.param_grads),
        ("activations", plan.activations),
        ("activation_grads", plan.activation_grads),
    ]
    if plan.col_buffer:
        pieces.append(("col_buffer", plan.col_buffer))
    for label, size in pieces:
        plan.allocations.append(
            allocator.malloc(size, label=f"{net.name}/{label}")
        )
    return plan


def release_net(gpu: GPU, plan: MemoryPlan) -> None:
    """Free every allocation made by :func:`allocate_net`."""
    for alloc in plan.allocations:
        gpu.allocator.free(alloc)
    plan.allocations.clear()
