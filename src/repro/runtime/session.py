"""Training sessions: numeric SGD + simulated GPU timing, together.

A :class:`TrainingSession` drives a real (NumPy) training loop through a
solver while metering the simulated device with the lowered kernel works of
each layer.  Because lowering is shape-driven and the shapes are fixed, the
works are lowered once and replayed per iteration — matching how the GPU
work of a Caffe iteration is identical from iteration to iteration.

This is the driver for the Fig. 7 speedup measurements (timing only) and
the Fig. 11 convergence experiment (numeric + timing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.errors import ReproError
from repro.nn.net import Net
from repro.nn.solver import Solver, SolverConfig
from repro.obs.metrics import observe
from repro.obs.spans import span
from repro.runtime.executor import Executor
from repro.runtime.lowering import lower_net


@dataclass(frozen=True)
class IterationTiming:
    """Simulated cost of one training iteration."""

    iteration: int
    loss: float
    sim_time_us: float
    forward_us: float
    backward_us: float


class TrainingSession:
    """Co-simulation of numeric training and GPU timing.

    Parameters
    ----------
    net:
        A built (set-up) network.
    executor:
        Where the lowered kernels run (naive / fixed / GLP4NN).
    solver_config:
        SGD hyperparameters.
    compute_numeric:
        When false, only the simulated timing runs — used for big networks
        (CaffeNet at N=256) whose NumPy pass would take minutes while their
        GPU-side shape stream is what the experiment needs.
    """

    def __init__(
        self,
        net: Net,
        executor: Executor,
        solver_config: Optional[SolverConfig] = None,
        compute_numeric: bool = True,
        include_h2d: bool = False,
    ) -> None:
        self.net = net
        self.executor = executor
        self.solver = Solver(net, solver_config) if compute_numeric else None
        self.compute_numeric = compute_numeric
        self.forward_works = lower_net(net, "forward")
        self.backward_works = lower_net(net, "backward")
        #: When set, each iteration starts with the host->device transfer of
        #: the input batch (as Caffe's data layer does); the copy runs on
        #: the default stream in both executors, so comparisons stay fair.
        self.include_h2d = include_h2d
        self._input_bytes = sum(
            4 * math.prod(net.blob_shapes[name]) for name in net.input_names
        )
        self.timings: list[IterationTiming] = []
        self._iteration = 0

    # ------------------------------------------------------------------
    def run_iteration(self, batch: Optional[dict[str, np.ndarray]] = None
                      ) -> IterationTiming:
        """One training iteration: numeric step (optional) + simulated GPU.

        ``batch`` is required when numeric training is on.
        """
        with span("session.iteration", cat="session",
                  iteration=self._iteration) as h:
            if self.compute_numeric:
                if batch is None:
                    raise ReproError("numeric training needs a batch")
                assert self.solver is not None
                loss = self.solver.step(batch)
            else:
                loss = float("nan")
            h2d = self._input_transfer()
            with span("session.forward", cat="session"):
                fwd = h2d + self.executor.run_pass(self.forward_works)
            with span("session.backward", cat="session"):
                bwd = self.executor.run_pass(self.backward_works)
            h.set(sim_time_us=fwd + bwd)
            if math.isfinite(loss):
                # NaN (timing-only sessions) is not valid JSON — skip it.
                h.set(loss=loss)
        observe("session.iteration_us", fwd + bwd)
        timing = IterationTiming(
            iteration=self._iteration,
            loss=loss,
            sim_time_us=fwd + bwd,
            forward_us=fwd,
            backward_us=bwd,
        )
        self.timings.append(timing)
        self._iteration += 1
        return timing

    def _input_transfer(self) -> float:
        """H2D copy of the input batch (0 when ``include_h2d`` is off)."""
        if not self.include_h2d:
            return 0.0
        gpu = self.executor.gpu
        start = gpu.host_time
        with span("session.h2d", cat="session",
                  nbytes=self._input_bytes):
            gpu.memcpy(self._input_bytes, "h2d")
            gpu.synchronize()
        return gpu.host_time - start

    def run_inference(self, batch: Optional[dict[str, np.ndarray]] = None
                      ) -> IterationTiming:
        """Forward-only pass (the paper covers "training or inference").

        Runs the net in test mode (dropout off) numerically when a batch is
        given, and meters only the forward kernel works on the simulator.
        """
        with span("session.inference", cat="session",
                  iteration=self._iteration):
            if self.compute_numeric and batch is not None:
                self.net.set_mode(False)
                try:
                    self.net.forward(batch)
                    loss = self.net.loss_value()
                finally:
                    self.net.set_mode(True)
            else:
                loss = float("nan")
            h2d = self._input_transfer()
            with span("session.forward", cat="session"):
                fwd = h2d + self.executor.run_pass(self.forward_works)
        observe("session.inference_us", fwd)
        timing = IterationTiming(
            iteration=self._iteration,
            loss=loss,
            sim_time_us=fwd,
            forward_us=fwd,
            backward_us=0.0,
        )
        self.timings.append(timing)
        self._iteration += 1
        return timing

    def run(self, batches: Iterable[Optional[dict[str, np.ndarray]]],
            iterations: int) -> list[IterationTiming]:
        """Run ``iterations`` steps pulling batches from ``batches``."""
        it = iter(batches)
        out = []
        for _ in range(iterations):
            out.append(self.run_iteration(next(it)))
        return out

    # ------------------------------------------------------------------
    def steady_state_time_us(self, skip: int = 1) -> float:
        """Mean per-iteration simulated time, excluding warm-up iterations.

        The first iteration pays the one-time profiling/analysis cost
        (``T_p + T_a``); the paper's Fig. 7 reports steady-state iteration
        speedups with that cost excluded (Table 6 reports it separately).
        """
        usable = self.timings[skip:]
        if not usable:
            raise ReproError("no steady-state iterations recorded")
        return sum(t.sim_time_us for t in usable) / len(usable)

    @property
    def losses(self) -> list[float]:
        return [t.loss for t in self.timings]

    # ------------------------------------------------------------------
    # Graceful-degradation surface
    # ------------------------------------------------------------------
    def degraded_layers(self) -> dict[str, str]:
        """Layer-phase key -> most recent degradation reason.

        Empty when every layer ran on its intended concurrent path.  A
        populated map means the scheduler fell back (serial dispatch,
        retried transients, unusable decisions) — the training numerics
        are unaffected by construction, only ``sim_time_us`` moves.
        """
        out: dict[str, str] = {}
        for r in self.executor.scheduler.runs:
            if r.degraded:
                out[r.key] = r.degrade_reason
        return out

    def total_retries(self) -> int:
        """Transient-failure retries spent across all recorded layer runs."""
        return self.executor.scheduler.total_retries()
