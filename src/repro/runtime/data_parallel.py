"""Data-parallel training across multiple simulated GPUs.

The distributed sketch of the paper's future work: the batch is split over
``k`` replicas, each replica runs its shard's forward/backward under its own
executor (naive or GLP4NN — the framework composes with data parallelism,
since it only reschedules kernels *within* a device), and gradients are
synchronized with a ring all-reduce.

Timing model per iteration::

    T = max_over_replicas(compute time of batch/k) + allreduce(grad bytes)

Replicas run identical shapes, so the max is the slowest device in a
heterogeneous machine.  Numeric training is not duplicated per replica:
data parallelism with summed gradients is mathematically identical to
large-batch SGD, which :mod:`repro.runtime.session` already covers — this
module answers the *timing/scaling* question.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.comm import AllReduceModel, PCIE3
from repro.errors import ReproError
from repro.kernels.ir import LayerWork
from repro.nn.config import ConvConfig
from repro.nn.net import Net
from repro.runtime.executor import Executor
from repro.runtime.lowering import conv_works


@dataclass(frozen=True)
class DataParallelIteration:
    """Timing breakdown of one data-parallel iteration."""

    compute_us: float          # slowest replica's forward+backward
    allreduce_us: float
    per_replica_us: tuple[float, ...]

    @property
    def total_us(self) -> float:
        return self.compute_us + self.allreduce_us


class DataParallelSession:
    """Simulates synchronous data-parallel training of conv workloads.

    Parameters
    ----------
    executors:
        One executor per replica (each owns its own GPU).
    convs:
        The network's convolution layers (Table 5 rows); the global batch
        of each is split evenly across replicas.
    grad_bytes:
        Gradient payload exchanged per iteration (4 bytes per learnable
        parameter).
    comm:
        All-reduce cost model.
    """

    def __init__(
        self,
        executors: Sequence[Executor],
        convs: Sequence[ConvConfig],
        grad_bytes: float,
        comm: AllReduceModel | None = None,
    ) -> None:
        if not executors:
            raise ReproError("need at least one replica")
        batch = convs[0].n
        if batch % len(executors):
            raise ReproError(
                f"global batch {batch} does not divide over "
                f"{len(executors)} replicas"
            )
        self.executors = list(executors)
        self.comm = comm or AllReduceModel(PCIE3)
        self.grad_bytes = float(grad_bytes)
        shard = batch // len(executors)
        self._fwd = conv_works(convs, "forward", batch_override=shard)
        self._bwd = conv_works(convs, "backward", batch_override=shard)
        self.iterations: list[DataParallelIteration] = []

    @classmethod
    def grad_bytes_of(cls, net: Net) -> float:
        """Gradient payload of a built network (float32)."""
        return 4.0 * net.num_learnable()

    def run_iteration(self) -> DataParallelIteration:
        per_replica = []
        for ex in self.executors:
            t = ex.run_pass(self._fwd) + ex.run_pass(self._bwd)
            per_replica.append(t)
        sync = self.comm.time_us(self.grad_bytes, len(self.executors))
        it = DataParallelIteration(
            compute_us=max(per_replica),
            allreduce_us=sync,
            per_replica_us=tuple(per_replica),
        )
        self.iterations.append(it)
        return it

    def steady_state_time_us(self, skip: int = 1) -> float:
        usable = self.iterations[skip:]
        if not usable:
            raise ReproError("no steady-state iterations recorded")
        return sum(t.total_us for t in usable) / len(usable)

    def scaling_efficiency(self, single_replica_us: float,
                           skip: int = 1) -> float:
        """Speedup over one replica divided by the replica count."""
        t = self.steady_state_time_us(skip=skip)
        return (single_replica_us / t) / len(self.executors)


class DataParallelExecutor(Executor):
    """Executor facade over synchronous data parallelism.

    Each layer work's per-sample chains are sharded round-robin across the
    replica executors (each owning its own GPU); whole-batch serial kernels
    are replicated, as every replica performs its own reduction.  After each
    backward layer the allreduce cost for ``grad_bytes`` is charged once.
    The reported elapsed time of a pass is the slowest replica's — the
    synchronous-SGD critical path.

    Numerically this path is the whole-batch session unchanged (summed
    shard gradients equal the large-batch gradient), so the differential
    harness uses it to pin down the timing/numerics separation.
    """

    def __init__(self, executors: Sequence[Executor],
                 grad_bytes: float = 0.0,
                 comm: AllReduceModel | None = None) -> None:
        if not executors:
            raise ReproError("need at least one replica")
        super().__init__(executors[0].gpu)
        self.replicas = list(executors)
        self.comm = comm or AllReduceModel(PCIE3)
        self.grad_bytes = float(grad_bytes)
        self.allreduce_us_total = 0.0

    @property
    def scheduler(self):
        return self.replicas[0].scheduler

    def _shard(self, work: LayerWork, index: int) -> LayerWork:
        chains = work.parallel_chains[index::len(self.replicas)]
        return replace(work, parallel_chains=chains)

    def run_pass(self, works: Iterable[LayerWork]) -> float:
        works = list(works)
        total = 0.0
        for w in works:
            if w.parallel_chains and \
                    len(w.parallel_chains) % len(self.replicas):
                raise ReproError(
                    f"{w.key}: {len(w.parallel_chains)} chains do not "
                    f"divide over {len(self.replicas)} replicas"
                )
            total += max(
                ex.run(self._shard(w, i)).elapsed_us
                for i, ex in enumerate(self.replicas)
            )
        if works and works[0].phase == "backward" and self.grad_bytes > 0:
            sync = self.comm.time_us(self.grad_bytes, len(self.replicas))
            self.allreduce_us_total += sync
            total += sync
        return total
