"""DAG-dependency kernel dispatch (the paper's first future-work item).

GLP4NN's released design handles *chain* dependencies (per-sample pipelines)
and synchronizes at layer boundaries.  The paper's future work proposes
supporting "complex kernel dependencies, such as the dataflow-like
dependency model in Tensorflow".  This module implements that: a
:class:`KernelGraph` of kernels with arbitrary acyclic dependencies is
dispatched over a stream pool, with cross-stream edges realized through
CUDA events (``record_event`` / ``wait_event``) instead of device-wide
barriers.

The scheduling heuristic is chain-affine list scheduling: a node prefers the
stream of its first predecessor (keeping pipelines on one stream, where
ordering is free), and only cross-stream edges pay for event
synchronization.  GoogLeNet's inception modules — four independent branches
joining at a concat — are the motivating shape; see
``benchmarks/test_ablation_graph.py``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import SchedulingError
from repro.gpusim.engine import GPU
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.stream import Event, Stream
from repro.kernels.ir import KernelChain, LayerWork


@dataclass
class KernelNode:
    """One kernel in the dependency graph."""

    node_id: int
    spec: KernelSpec
    deps: tuple[int, ...] = ()


class KernelGraph:
    """An acyclic graph of kernels with explicit dependencies.

    >>> g = KernelGraph("inception")
    >>> a = g.add(spec_a)
    >>> b = g.add(spec_b, deps=[a])
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: dict[int, KernelNode] = {}
        self._ids = itertools.count()

    def add(self, spec: KernelSpec, deps: Iterable[int] = ()) -> int:
        """Add a kernel depending on previously added nodes; returns its id."""
        deps = tuple(deps)
        for d in deps:
            if d not in self._nodes:
                raise SchedulingError(
                    f"graph {self.name!r}: dependency {d} does not exist "
                    "(dependencies must be added first, which also "
                    "guarantees acyclicity)"
                )
        node_id = next(self._ids)
        self._nodes[node_id] = KernelNode(node_id, spec, deps)
        return node_id

    def add_chain(self, specs: Sequence[KernelSpec],
                  deps: Iterable[int] = ()) -> list[int]:
        """Add a linear chain; the first kernel takes the external deps."""
        ids: list[int] = []
        prev: Optional[int] = None
        for spec in specs:
            node_deps = tuple(deps) if prev is None else (prev,)
            prev = self.add(spec, node_deps)
            ids.append(prev)
        return ids

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> list[KernelNode]:
        """Nodes in insertion (= topological) order."""
        return [self._nodes[i] for i in sorted(self._nodes)]

    def dependents(self) -> dict[int, list[int]]:
        out: dict[int, list[int]] = {n.node_id: [] for n in self.nodes}
        for n in self.nodes:
            for d in n.deps:
                out[d].append(n.node_id)
        return out

    def sinks(self) -> list[int]:
        """Nodes nothing depends on."""
        deps_of = self.dependents()
        return [i for i, ds in deps_of.items() if not ds]

    def as_layer_work(self, layer: str, phase: str = "forward") -> LayerWork:
        """Flatten to a single serial chain (topological order).

        Used for the profiling pass: running the graph serially respects
        every dependency and yields exactly the kernel set the analyzer
        needs.
        """
        return LayerWork(
            layer=layer, phase=phase,
            parallel_chains=(KernelChain(
                tuple(n.spec for n in self.nodes), label=self.name),),
        )

    # ------------------------------------------------------------------
    def assign_streams(self, num_streams: int) -> dict[int, int]:
        """Chain-affine list scheduling onto ``num_streams`` stream slots.

        A node inherits the stream of its first predecessor if it is that
        predecessor's first dependent (pipelines stay put); otherwise it
        takes the next slot round-robin.
        """
        if num_streams < 1:
            raise SchedulingError("need at least one stream")
        assignment: dict[int, int] = {}
        claimed: set[int] = set()   # predecessors whose stream was inherited
        rr = itertools.cycle(range(num_streams))
        for node in self.nodes:
            slot: Optional[int] = None
            for d in node.deps:
                if d not in claimed:
                    slot = assignment[d]
                    claimed.add(d)
                    break
            if slot is None:
                slot = next(rr)
            assignment[node.node_id] = slot
        return assignment


def dispatch_graph(
    gpu: GPU,
    graph: KernelGraph,
    streams: Sequence[Stream],
    synchronize: bool = True,
) -> float:
    """Execute ``graph`` on ``gpu`` over the given streams; return elapsed µs.

    Cross-stream dependency edges are realized with event record/wait pairs;
    same-stream edges ride the stream's FIFO order for free.
    """
    if not streams:
        raise SchedulingError("dispatch_graph needs at least one stream")
    start = gpu.host_time
    assignment = graph.assign_streams(len(streams))
    dependents = graph.dependents()
    events: dict[int, Event] = {}
    for node in graph.nodes:
        stream = streams[assignment[node.node_id]]
        for d in node.deps:
            if assignment[d] != assignment[node.node_id]:
                gpu.wait_event(events[d], stream=stream)
        gpu.launch(node.spec, stream=stream)
        # record an event only if some dependent lives on another stream
        if any(assignment[c] != assignment[node.node_id]
               for c in dependents[node.node_id]):
            ev = Event(f"{graph.name}/n{node.node_id}")
            gpu.record_event(ev, stream=stream)
            events[node.node_id] = ev
    if synchronize:
        gpu.synchronize()
    return gpu.host_time - start


class GraphScheduler:
    """Profile-and-dispatch workflow for kernel graphs.

    Mirrors :class:`~repro.core.runtime_scheduler.RuntimeScheduler` but for
    DAGs: the first execution runs the graph serially under the resource
    tracker, the analytical model sizes the pool from the profiled kernel
    set, and subsequent executions dispatch with event-based dependencies.
    """

    def __init__(self, framework, gpu: GPU) -> None:
        self.framework = framework
        self.gpu = gpu

    def run(self, graph: KernelGraph, key: Optional[str] = None) -> float:
        """Execute the graph; returns elapsed host µs."""
        key = key or graph.name
        work = graph.as_layer_work(key)
        tracker = self.framework.tracker
        profile = tracker.get(self.gpu, work.key)
        if profile is None:
            start = self.gpu.host_time
            profile = tracker.profile_layer(self.gpu, work)
            decision = self.framework.analyzer_for(self.gpu).decision_for(
                profile)
            self.gpu.host_time += decision.analysis_time_us
            return self.gpu.host_time - start
        decision = self.framework.analyzer_for(self.gpu).decision_for(profile)
        pool = self.framework.streams.pool(self.gpu).ensure(decision.c_out)
        return dispatch_graph(self.gpu, graph, pool)
