"""Persistence of concurrency decisions across process runs.

GLP4NN's profiling/analysis cost is one-time *per process*; a production
training job restarted from a checkpoint would pay it again.  This module
serializes a device's concurrency decisions (the maintainer cache) to JSON
so a later run can seed its analyzer and skip both the serial profiling
pass and the MILP solve.

Decisions are only portable between *identical* configurations, so each
entry is guarded by the device name and a fingerprint of the kernel bounds
it was derived from; stale entries are ignored on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.analytical_model import ConcurrencyDecision, KernelBound
from repro.core.framework import GLP4NN
from repro.errors import SchedulingError
from repro.gpusim.engine import GPU

FORMAT_VERSION = 1


def _bound_to_dict(b: KernelBound) -> dict:
    return {
        "name": b.name, "beta": b.beta, "tau": b.tau, "smem": b.smem,
        "launch_bound": b.launch_bound, "thread_bound": b.thread_bound,
        "smem_bound": b.smem_bound,
    }


def _bound_from_dict(d: dict) -> KernelBound:
    return KernelBound(**d)


def save_decisions(framework: GLP4NN, gpu: GPU,
                   path: Union[str, Path]) -> int:
    """Write ``gpu``'s cached decisions to ``path``; returns entry count."""
    maintainer = framework.analyzer_for(gpu).maintainer
    entries = []
    for key, d in maintainer.decisions().items():
        entries.append({
            "layer_key": key,
            "device": d.device,
            "counts": d.counts,
            "c_out": d.c_out,
            "occupancy_ratio": d.occupancy_ratio,
            "bounds": [_bound_to_dict(b) for b in d.bounds],
        })
    doc = {
        "format": FORMAT_VERSION,
        "device": gpu.props.name,
        "decisions": entries,
    }
    Path(path).write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return len(entries)


def load_decisions(framework: GLP4NN, gpu: GPU,
                   path: Union[str, Path]) -> int:
    """Seed ``gpu``'s maintainer from ``path``; returns entries loaded.

    Entries recorded for a different device are rejected outright; the
    kernel-bound fingerprints travel along so a future profile mismatch can
    be detected by callers comparing against fresh profiles.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("format") != FORMAT_VERSION:
        raise SchedulingError(
            f"decision cache {path}: unsupported format {doc.get('format')}"
        )
    if doc.get("device") != gpu.props.name:
        raise SchedulingError(
            f"decision cache {path} was recorded on {doc.get('device')!r}, "
            f"not {gpu.props.name!r}"
        )
    maintainer = framework.analyzer_for(gpu).maintainer
    loaded = 0
    for entry in doc["decisions"]:
        decision = ConcurrencyDecision(
            layer_key=entry["layer_key"],
            device=entry["device"],
            counts={k: int(v) for k, v in entry["counts"].items()},
            c_out=int(entry["c_out"]),
            occupancy_ratio=float(entry["occupancy_ratio"]),
            bounds=[_bound_from_dict(b) for b in entry["bounds"]],
            analysis_time_us=0.0,     # already paid in the recording run
        )
        maintainer.put(decision)
        loaded += 1
    return loaded
