"""Persistence of concurrency decisions across process runs.

GLP4NN's profiling/analysis cost is one-time *per process*; a production
training job restarted from a checkpoint would pay it again.  This module
serializes a device's concurrency decisions (the maintainer cache) to JSON
so a later run can seed its analyzer and skip both the serial profiling
pass and the MILP solve.

Decisions are only portable between *identical* configurations, so each
entry is guarded by the device name and a fingerprint over the kernel
bounds and counts it was derived from.  Two loading modes exist:

* :func:`load_decisions` — strict: any corruption raises
  :class:`~repro.errors.SchedulingError` (the historical behavior, for
  callers that prefer failing fast over silently re-profiling).
* :func:`load_decisions_safe` — resilient: truncated JSON, wrong format
  versions, device mismatches and tampered fingerprints are *quarantined*
  and reported, never raised.  A session that loses its cache simply pays
  the one-time profiling cost again — it must not crash.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.core.analytical_model import ConcurrencyDecision, KernelBound
from repro.core.framework import GLP4NN
from repro.errors import SchedulingError
from repro.faults.hooks import fault_poll
from repro.gpusim.engine import GPU

FORMAT_VERSION = 1


def _bound_to_dict(b: KernelBound) -> dict:
    return {
        "name": b.name, "beta": b.beta, "tau": b.tau, "smem": b.smem,
        "launch_bound": b.launch_bound, "thread_bound": b.thread_bound,
        "smem_bound": b.smem_bound,
    }


def _bound_from_dict(d: dict) -> KernelBound:
    return KernelBound(**d)


def _entry_fingerprint(entry: dict) -> str:
    """Digest over the decision payload (everything except the fingerprint).

    Canonical-JSON SHA-256, so any tampering with the counts, ``c_out`` or
    the kernel bounds an entry was derived from is detectable on load.
    """
    payload = {k: v for k, v in entry.items() if k != "fingerprint"}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class CacheLoadReport:
    """Outcome of a resilient decision-cache load."""

    path: str
    loaded: int = 0
    #: ``(layer_key_or_"*", reason)`` per rejected entry; ``"*"`` means the
    #: whole document was unusable.
    quarantined: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def describe(self) -> str:
        lines = [f"decision cache {self.path}: {self.loaded} entries loaded"]
        for key, reason in self.quarantined:
            lines.append(f"  quarantined {key}: {reason}")
        return "\n".join(lines)


def save_decisions(framework: GLP4NN, gpu: GPU,
                   path: Union[str, Path]) -> int:
    """Write ``gpu``'s cached decisions to ``path``; returns entry count."""
    maintainer = framework.analyzer_for(gpu).maintainer
    entries = []
    for key, d in maintainer.decisions().items():
        entry = {
            "layer_key": key,
            "device": d.device,
            "counts": d.counts,
            "c_out": d.c_out,
            "occupancy_ratio": d.occupancy_ratio,
            "bounds": [_bound_to_dict(b) for b in d.bounds],
        }
        entry["fingerprint"] = _entry_fingerprint(entry)
        entries.append(entry)
    doc = {
        "format": FORMAT_VERSION,
        "device": gpu.props.name,
        "decisions": entries,
    }
    Path(path).write_text(json.dumps(doc, indent=1), encoding="utf-8")
    return len(entries)


def _decision_from_entry(entry: dict) -> ConcurrencyDecision:
    return ConcurrencyDecision(
        layer_key=entry["layer_key"],
        device=entry["device"],
        counts={k: int(v) for k, v in entry["counts"].items()},
        c_out=int(entry["c_out"]),
        occupancy_ratio=float(entry["occupancy_ratio"]),
        bounds=[_bound_from_dict(b) for b in entry["bounds"]],
        analysis_time_us=0.0,     # already paid in the recording run
    )


def _entry_problem(entry: dict) -> Optional[str]:
    """Reason an entry is unusable, or ``None`` if it validates."""
    if not isinstance(entry, dict):
        return f"entry is not an object: {entry!r}"
    fingerprint = entry.get("fingerprint")
    if not fingerprint:
        return "missing kernel-bound fingerprint"
    if fingerprint != _entry_fingerprint(entry):
        return "fingerprint mismatch (tampered or stale entry)"
    try:
        _decision_from_entry(entry)
    except (KeyError, TypeError, ValueError) as e:
        return f"malformed entry: {e!r}"
    return None


def load_decisions(framework: GLP4NN, gpu: GPU,
                   path: Union[str, Path]) -> int:
    """Seed ``gpu``'s maintainer from ``path``; returns entries loaded.

    Strict mode: unsupported formats, device mismatches and tampered
    fingerprints raise :class:`~repro.errors.SchedulingError`.  Use
    :func:`load_decisions_safe` when a broken cache must not be fatal.
    """
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if doc.get("format") != FORMAT_VERSION:
        raise SchedulingError(
            f"decision cache {path}: unsupported format {doc.get('format')}"
        )
    if doc.get("device") != gpu.props.name:
        raise SchedulingError(
            f"decision cache {path} was recorded on {doc.get('device')!r}, "
            f"not {gpu.props.name!r}"
        )
    maintainer = framework.analyzer_for(gpu).maintainer
    loaded = 0
    for entry in doc["decisions"]:
        problem = _entry_problem(entry)
        if problem is not None:
            raise SchedulingError(
                f"decision cache {path}, entry "
                f"{entry.get('layer_key', '?')!r}: {problem}"
            )
        maintainer.put(_decision_from_entry(entry))
        loaded += 1
    return loaded


def load_decisions_safe(framework: GLP4NN, gpu: GPU,
                        path: Union[str, Path]) -> CacheLoadReport:
    """Resilient cache load: quarantine what cannot be trusted, keep going.

    Never raises on bad cache contents.  A quarantined entry simply means
    the corresponding layer re-profiles on first execution, exactly as if
    the cache had never existed — the graceful-degradation contract.
    """
    report = CacheLoadReport(path=str(path))
    # Fault-injection site: a fired fault models unreadable/corrupt cache
    # bytes — the whole document is quarantined.
    if fault_poll("cache_load", str(path)) is not None:
        report.quarantined.append(("*", "injected fault: cache unreadable"))
        return report
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as e:
        report.quarantined.append(("*", f"unreadable: {e}"))
        return report
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        report.quarantined.append(("*", f"corrupt JSON: {e}"))
        return report
    if not isinstance(doc, dict):
        report.quarantined.append(("*", "document is not an object"))
        return report
    if doc.get("format") != FORMAT_VERSION:
        report.quarantined.append(
            ("*", f"unsupported format {doc.get('format')!r}"))
        return report
    if doc.get("device") != gpu.props.name:
        report.quarantined.append(
            ("*", f"recorded on {doc.get('device')!r}, "
                  f"not {gpu.props.name!r}"))
        return report
    entries = doc.get("decisions")
    if not isinstance(entries, list):
        report.quarantined.append(("*", "'decisions' is not a list"))
        return report
    maintainer = framework.analyzer_for(gpu).maintainer
    for entry in entries:
        problem = _entry_problem(entry)
        key = entry.get("layer_key", "?") if isinstance(entry, dict) else "?"
        if problem is not None:
            report.quarantined.append((str(key), problem))
            continue
        maintainer.put(_decision_from_entry(entry))
        report.loaded += 1
    return report
