"""Kernel analyzer module: concurrency analyzer + concurrency maintainer.

Per the paper (Fig. 5/6), each GPU owns a private kernel analyzer.  The
*concurrency analyzer* turns a layer's kernel profiles into a
:class:`~repro.core.analytical_model.ConcurrencyDecision` by solving the
analytical model; the *concurrency maintainer* caches decisions per layer so
the (host-side) analysis happens exactly once per layer per device — the
one-time cost ``T_a`` of Table 6.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.analytical_model import AnalyticalModel, ConcurrencyDecision
from repro.core.resource_tracker import KernelProfile, LayerProfile
from repro.gpusim.device import DeviceProperties

AnalyzerFn = Callable[[str, Sequence[KernelProfile]], ConcurrencyDecision]


class ConcurrencyAnalyzer:
    """Wraps the analytical model for one device.

    The model implementation is pluggable (the paper notes the module "can
    be customized by developers"); pass ``analyze_fn`` to substitute e.g.
    the greedy ablation analyzer.
    """

    def __init__(self, device: DeviceProperties,
                 analyze_fn: Optional[AnalyzerFn] = None,
                 use_launch_bound: bool = True) -> None:
        self.device = device
        self._model = AnalyticalModel(device, use_launch_bound=use_launch_bound)
        self._analyze_fn = analyze_fn or self._model.solve

    def analyze(self, profile: LayerProfile) -> ConcurrencyDecision:
        return self._analyze_fn(profile.key, profile.kernels)


class ConcurrencyMaintainer:
    """Per-device cache of concurrency decisions, keyed by layer-phase."""

    def __init__(self, device_name: str) -> None:
        self.device_name = device_name
        self._decisions: dict[str, ConcurrencyDecision] = {}
        self.total_analysis_time_us = 0.0

    def get(self, key: str) -> Optional[ConcurrencyDecision]:
        return self._decisions.get(key)

    def put(self, decision: ConcurrencyDecision) -> None:
        self._decisions[decision.layer_key] = decision
        self.total_analysis_time_us += decision.analysis_time_us

    def invalidate(self, key: str) -> None:
        self._decisions.pop(key, None)

    def decisions(self) -> dict[str, ConcurrencyDecision]:
        return dict(self._decisions)

    def __len__(self) -> int:
        return len(self._decisions)


class KernelAnalyzer:
    """The full kernel-analyzer module of Fig. 5 for one device."""

    def __init__(self, device: DeviceProperties,
                 analyze_fn: Optional[AnalyzerFn] = None,
                 use_launch_bound: bool = True) -> None:
        self.analyzer = ConcurrencyAnalyzer(
            device, analyze_fn=analyze_fn, use_launch_bound=use_launch_bound
        )
        self.maintainer = ConcurrencyMaintainer(device.name)

    def decision_for(self, profile: LayerProfile) -> ConcurrencyDecision:
        """Cached analysis: solve the model on first sight of a layer."""
        cached = self.maintainer.get(profile.key)
        if cached is not None:
            return cached
        decision = self.analyzer.analyze(profile)
        self.maintainer.put(decision)
        return decision
