"""The GLP4NN facade: module wiring per the paper's Fig. 5.

Sharing structure: *"Each GPU device is assigned with a private kernel
analyzer and runtime scheduler, and all GPUs in the same machine share a
public resource tracker and stream manager."*
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.kernel_analyzer import AnalyzerFn, KernelAnalyzer
from repro.core.resource_tracker import ResourceTracker
from repro.core.runtime_scheduler import (
    DegradePolicy,
    DispatchPolicy,
    LayerRun,
    RuntimeScheduler,
)
from repro.core.stream_manager import StreamManager
from repro.errors import DeviceError
from repro.gpusim.engine import GPU
from repro.kernels.ir import LayerWork


class GLP4NN:
    """The light-weight parallelization framework.

    Parameters
    ----------
    gpus:
        Devices to manage (the paper supports multiple GPUs per machine).
    policy:
        Dispatch policy; :attr:`DispatchPolicy.MODEL` is GLP4NN proper.
    analyze_fn:
        Optional custom analytical model (the analyzer is user-customizable
        by design).
    use_launch_bound:
        Ablation switch for the Eq. 7 launch-pipeline term.

    Example
    -------
    >>> from repro.gpusim import GPU, get_device
    >>> from repro.runtime.lowering import lower_conv_forward
    >>> from repro.nn.zoo.table5 import CIFAR10_CONVS
    >>> gpu = GPU(get_device("P100"))
    >>> glp = GLP4NN([gpu])
    >>> work = lower_conv_forward(CIFAR10_CONVS[2])
    >>> first = glp.run_layer(gpu, work)   # profiling pass
    >>> first.profiled
    True
    >>> second = glp.run_layer(gpu, work)  # concurrent dispatch
    >>> second.streams_used >= 1
    True
    """

    def __init__(
        self,
        gpus: Sequence[GPU],
        policy: DispatchPolicy = DispatchPolicy.MODEL,
        analyze_fn: Optional[AnalyzerFn] = None,
        use_launch_bound: bool = True,
        fixed_streams: int = 1,
        work_transform=None,
        degrade_policy: Optional[DegradePolicy] = None,
    ) -> None:
        if not gpus:
            raise DeviceError("GLP4NN needs at least one GPU")
        # Shared modules (one per machine).
        self.tracker = ResourceTracker()
        self.streams = StreamManager()
        # Private modules (one per device).
        self._analyzers: dict[int, KernelAnalyzer] = {}
        self._schedulers: dict[int, RuntimeScheduler] = {}
        for gpu in gpus:
            analyzer = KernelAnalyzer(
                gpu.props, analyze_fn=analyze_fn,
                use_launch_bound=use_launch_bound,
            )
            self._analyzers[id(gpu)] = analyzer
            self._schedulers[id(gpu)] = RuntimeScheduler(
                gpu, self.tracker, analyzer, self.streams,
                policy=policy, fixed_streams=fixed_streams,
                work_transform=work_transform,
                degrade=degrade_policy,
            )
        self.gpus = list(gpus)

    # ------------------------------------------------------------------
    def scheduler_for(self, gpu: GPU) -> RuntimeScheduler:
        try:
            return self._schedulers[id(gpu)]
        except KeyError:
            raise DeviceError(
                f"GPU {gpu.props.name} is not managed by this GLP4NN instance"
            ) from None

    def analyzer_for(self, gpu: GPU) -> KernelAnalyzer:
        try:
            return self._analyzers[id(gpu)]
        except KeyError:
            raise DeviceError(
                f"GPU {gpu.props.name} is not managed by this GLP4NN instance"
            ) from None

    def run_layer(self, gpu: GPU, work: LayerWork) -> LayerRun:
        """Execute one layer-phase on ``gpu`` under the framework."""
        return self.scheduler_for(gpu).run_layer(work)

    def warm_up(self, gpu: GPU, works: Iterable[LayerWork]) -> None:
        """Profile + analyze a whole network ahead of time (one pass)."""
        for work in works:
            self.run_layer(gpu, work)

    # ------------------------------------------------------------------
    def decisions(self, gpu: GPU) -> dict[str, "object"]:
        """All cached concurrency decisions for ``gpu`` (Fig. 8's data)."""
        return self.analyzer_for(gpu).maintainer.decisions()

    def save_decisions(self, gpu: GPU, path) -> int:
        """Persist ``gpu``'s concurrency decisions to a JSON file.

        A later process can :meth:`load_decisions` and skip both the
        profiling pass and the analysis for every cached layer.
        """
        from repro.core.persistence import save_decisions
        return save_decisions(self, gpu, path)

    def load_decisions(self, gpu: GPU, path) -> int:
        """Seed ``gpu``'s analyzer from a persisted decision cache.

        Strict: corruption raises.  Sessions that must survive a broken
        cache should use :meth:`load_decisions_safe` instead.
        """
        from repro.core.persistence import load_decisions
        return load_decisions(self, gpu, path)

    def load_decisions_safe(self, gpu: GPU, path):
        """Resilient cache load: quarantine bad entries, never raise.

        Returns a :class:`~repro.core.persistence.CacheLoadReport`; every
        quarantined layer simply re-profiles on first execution.
        """
        from repro.core.persistence import load_decisions_safe
        return load_decisions_safe(self, gpu, path)
