"""GLP4NN overhead accounting (Section 3.3.2, Eqs. 10-12).

Space (Eq. 10-11)::

    mem_total = mem_tt + mem_K + mem_cupti

all in host memory, released after analysis — training's device memory is
untouched.  Time (Eq. 12)::

    T_total = T_p + T_a + T_s

with ``T_s ~ 0`` for the static round-robin policy.  The paper's Table 6
reports these one-time costs per network/device and shows
``T_total / training_time < 0.1%``; :class:`OverheadModel` aggregates the
same quantities from a live framework instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.framework import GLP4NN
from repro.gpusim.engine import GPU


@dataclass(frozen=True)
class OverheadReport:
    """One network/device row of the paper's Table 6 + Fig. 10."""

    network: str
    device: str
    t_p_us: float            # profiling time (resource tracker)
    t_a_us: float            # analysis time (kernel analyzer / MILP)
    t_s_us: float            # scheduling time (static policy: ~0)
    mem_tt: int              # timestamp bytes (Eq. 11)
    mem_k: int               # kernel-config bytes (Eq. 11)
    mem_cupti: int           # CUPTI runtime bytes
    kernels_profiled: int

    @property
    def t_total_us(self) -> float:
        """Eq. 12."""
        return self.t_p_us + self.t_a_us + self.t_s_us

    @property
    def mem_total(self) -> int:
        """Eq. 10."""
        return self.mem_tt + self.mem_k + self.mem_cupti

    def ratio_of(self, training_time_us: float) -> float:
        """``T_total`` as a fraction of a full training run."""
        if training_time_us <= 0:
            raise ValueError("training time must be positive")
        return self.t_total_us / training_time_us


class OverheadModel:
    """Builds :class:`OverheadReport` s from a live framework instance."""

    def __init__(self, framework: GLP4NN) -> None:
        self.framework = framework

    def report(self, gpu: GPU, network: str = "") -> OverheadReport:
        """Aggregate one device's profiling + analysis overheads."""
        profiles = self.framework.tracker.profiles_for_device(gpu.props.name)
        t_p = sum(p.profiling_time_us for p in profiles)
        kernels = sum(
            p.report.num_kernels if p.report else sum(
                k.instances for k in p.kernels
            )
            for p in profiles
        )
        mem_tt = sum(p.report.mem_tt for p in profiles if p.report)
        mem_k = sum(p.report.mem_k for p in profiles if p.report)
        # The CUPTI runtime is attached once, not per layer: its footprint
        # is the maximum over sessions, not the sum.
        mem_cupti = max(
            (p.report.mem_cupti for p in profiles if p.report), default=0
        )
        maintainer = self.framework.analyzer_for(gpu).maintainer
        return OverheadReport(
            network=network,
            device=gpu.props.name,
            t_p_us=t_p,
            t_a_us=maintainer.total_analysis_time_us,
            t_s_us=0.0,
            mem_tt=mem_tt,
            mem_k=mem_k,
            mem_cupti=mem_cupti,
            kernels_profiled=kernels,
        )
