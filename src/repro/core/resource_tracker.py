"""Resource tracker: compact kernel profiler + kernel parser.

The tracker answers the paper's first challenge — collecting kernel
execution configurations *on the fly*, attributed to the right network
layer, with low memory and time overhead.  It runs a layer's kernels once,
serially, under the simulated CUPTI; the :class:`KernelParser` then merges
the activity records by kernel signature into :class:`KernelProfile` s,
which are exactly the *profiling input* column of the paper's Table 2
(``#beta_Ki``, ``tau_Ki``, ``sm_Ki``, registers, and the measured ``T_Ki``).

One tracker serves every GPU in the machine (Fig. 5); profiles are cached
per ``(device, layer-phase)``.

.. note::
   Cache keys are the layer names produced by the lowering.  When one
   framework instance serves several *networks* whose layers share names
   (every net has a ``conv1``), either give the layers distinct names or
   use one framework instance per network, as the benchmark harness does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cupti import ActivityRecord, CuptiProfiler, ProfilingReport
from repro.errors import SchedulingError
from repro.gpusim.engine import GPU
from repro.gpusim.kernel import Dim3, dim3_size
from repro.kernels.ir import LayerWork
from repro.obs.metrics import counter_inc, observe
from repro.obs.spans import span


@dataclass(frozen=True)
class KernelProfile:
    """Aggregated runtime configuration of one kernel ``K_i``.

    ``duration_us`` is the mean measured ``T_Ki`` over all instances seen
    during profiling (e.g. the per-sample replicas of ``im2col``).
    """

    name: str
    grid: Dim3
    block: Dim3
    registers_per_thread: int
    shared_mem_per_block: int
    duration_us: float
    instances: int

    @property
    def num_blocks(self) -> int:
        """``#beta_Ki`` — thread blocks per launch."""
        return dim3_size(self.grid)

    @property
    def threads_per_block(self) -> int:
        """``tau_Ki``."""
        return dim3_size(self.block)

    @property
    def signature(self) -> tuple:
        return (self.name, self.grid, self.block, self.shared_mem_per_block,
                self.registers_per_thread)


@dataclass
class LayerProfile:
    """All kernel profiles of one layer-phase on one device."""

    key: str
    device: str
    kernels: list[KernelProfile]
    profiling_time_us: float
    report: Optional[ProfilingReport] = None

    @property
    def total_kernel_time_us(self) -> float:
        """Serial execution time of one full pass over the profiled work."""
        return sum(k.duration_us * k.instances for k in self.kernels)


class KernelParser:
    """Merges raw CUPTI activity records into per-kernel profiles."""

    @staticmethod
    def parse(records: list[ActivityRecord]) -> list[KernelProfile]:
        groups: dict[tuple, list[ActivityRecord]] = {}
        order: list[tuple] = []
        for r in records:
            key = (r.name, r.grid, r.block, r.shared_memory,
                   r.registers_per_thread)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(r)
        profiles = []
        for key in order:
            recs = groups[key]
            mean_us = sum(r.duration_us for r in recs) / len(recs)
            r0 = recs[0]
            profiles.append(KernelProfile(
                name=r0.name,
                grid=r0.grid,
                block=r0.block,
                registers_per_thread=r0.registers_per_thread,
                shared_mem_per_block=r0.shared_memory,
                duration_us=mean_us,
                instances=len(recs),
            ))
        return profiles


class ResourceTracker:
    """Shared profiling front-end: run-once-serially, parse, cache.

    The profiling run itself executes the layer's real kernels (the results
    are used — profiling does not waste an iteration), only serially on the
    default stream and with CUPTI's per-kernel host overhead charged, which
    is what makes ``T_p`` proportional to the kernel count.
    """

    def __init__(self) -> None:
        self._profiles: dict[tuple[str, str], LayerProfile] = {}
        self.total_profiling_time_us = 0.0
        self.peak_mem_total = 0
        self.layers_profiled = 0

    # ------------------------------------------------------------------
    def get(self, gpu: GPU, key: str) -> Optional[LayerProfile]:
        return self._profiles.get((gpu.props.name, key))

    def has(self, gpu: GPU, key: str) -> bool:
        return (gpu.props.name, key) in self._profiles

    def profile_layer(self, gpu: GPU, work: LayerWork) -> LayerProfile:
        """Execute ``work`` serially under CUPTI and cache the profile."""
        cache_key = (gpu.props.name, work.key)
        if cache_key in self._profiles:
            return self._profiles[cache_key]
        with span("profile.layer", cat="profile", layer=work.key,
                  device=gpu.props.name) as h:
            profiler = CuptiProfiler(gpu)
            profiler.start()
            try:
                for chain in work.parallel_chains:
                    for spec in chain:
                        gpu.launch(spec)      # default stream, in order
                for spec in work.serial_kernels:
                    gpu.launch(spec)
                gpu.synchronize()
            finally:
                report = profiler.stop()
            with span("profile.parse", cat="profile", layer=work.key):
                kernels = KernelParser.parse(report.records)
            if not kernels:
                raise SchedulingError(
                    f"profiling {work.key!r} produced no kernel records"
                )
            h.set(kernels=len(kernels), records=len(report.records))
        counter_inc("profile.layers")
        observe("profile.time_us", report.profiling_time_us)
        profile = LayerProfile(
            key=work.key,
            device=gpu.props.name,
            kernels=kernels,
            profiling_time_us=report.profiling_time_us,
            report=report,
        )
        self._profiles[cache_key] = profile
        self.total_profiling_time_us += report.profiling_time_us
        self.peak_mem_total = max(self.peak_mem_total, report.mem_total)
        self.layers_profiled += 1
        return profile

    # ------------------------------------------------------------------
    def profiles_for_device(self, device: str) -> list[LayerProfile]:
        return [p for (d, _), p in self._profiles.items() if d == device]

    def invalidate(self, gpu: GPU, key: str) -> None:
        """Drop a cached profile (e.g. after a batch-size change)."""
        self._profiles.pop((gpu.props.name, key), None)

    def clear(self) -> None:
        self._profiles.clear()
        self.total_profiling_time_us = 0.0
        self.peak_mem_total = 0
        self.layers_profiled = 0
