"""The analytical model of Section 3.2 (Eqs. 1-9).

Given the profiled kernel set ``K = {K_1 .. K_N}`` of a layer and the
device properties, choose the number of concurrent instances ``#K_i`` of
each kernel so as to maximize SM occupancy:

    maximize    sum_i  tau_Ki * beta_Ki * #K_i                      (Eqs. 1-3)
    subject to  sum_i  sm_Ki  * beta_Ki * #K_i <= sm_max            (Eq. 4)
                sum_i  tau_Ki * beta_Ki * #K_i <= tau_max           (Eq. 5)
                sum_i           beta_Ki * #K_i <= rho_max           (block slots)
                1 <= sum_i #K_i <= C                                (Eq. 6)
                1 <= #K_i <= ub_i                                   (Eq. 7)

with ``beta_Ki = floor(#beta_Ki / #SM)`` clamped below at 1 (Eq. 8 — the
clamp handles grids smaller than the SM count, where the paper's floor
would degenerate to zero) and the per-kernel bound

    ub_i = min( ceil(T_Ki / T_launch),
                (tau_max * #SM) / (tau_Ki * #beta_Ki),
                (sm_max  * #SM) / (sm_Ki  * #beta_Ki) )             (Eq. 7)

The launch-pipeline term ``ceil(T_Ki / T_launch)`` is the reason GLP4NN
does *not* over-parallelize sub-millisecond layers: a single host thread
cannot put a second copy of a 4 µs kernel in flight before the first
finishes.  Registers are deliberately absent — the paper treats them as a
*soft* constraint (spills go to local memory).

The resulting MILP is solved with :mod:`repro.milp` (the paper uses GLPK);
``C_out = sum_i #K_i`` (Eq. 9) sizes the stream pool.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SchedulingError
from repro.gpusim.device import DeviceProperties
from repro.milp import Model, SolveStatus
from repro.core.resource_tracker import KernelProfile
from repro.obs.metrics import counter_inc, observe


@dataclass(frozen=True)
class KernelBound:
    """Per-kernel quantities entering the model (for reporting/tests)."""

    name: str
    beta: int              # blocks per SM contributed per instance (Eq. 8)
    tau: int               # threads per block
    smem: int              # shared memory per block
    launch_bound: int      # ceil(T_Ki / T_launch)
    thread_bound: int
    smem_bound: int

    @property
    def upper(self) -> int:
        """``ub_i`` of Eq. 7."""
        return max(1, min(self.launch_bound, self.thread_bound,
                          self.smem_bound))


@dataclass
class ConcurrencyDecision:
    """Output of the analyzer for one layer on one device."""

    layer_key: str
    device: str
    counts: dict[str, int]          # kernel name -> #K_i
    c_out: int                      # Eq. 9: stream-pool size
    occupancy_ratio: float          # achieved OR_SM of Eq. 1
    bounds: list[KernelBound] = field(default_factory=list)
    analysis_time_us: float = 0.0   # nominal deterministic T_a
    solver_nodes: int = 0
    solver_iterations: int = 0

    def count_for(self, kernel_name: str) -> int:
        return self.counts.get(kernel_name, 1)


class AnalyticalModel:
    """Builds and solves the Eq. 1-9 MILP for one device.

    Parameters
    ----------
    device:
        Target GPU properties (``#SM``, ``tau_max``, ``sm_max``,
        ``rho_max``, ``C``, ``T_launch``).
    use_launch_bound:
        Ablation switch: drop the ``ceil(T_Ki/T_launch)`` term of Eq. 7
        (the over-parallelization failure mode the bound exists to prevent).
    """

    def __init__(self, device: DeviceProperties,
                 use_launch_bound: bool = True,
                 hard_registers: bool = False) -> None:
        self.device = device
        self.use_launch_bound = use_launch_bound
        #: The paper treats registers as a *soft* constraint (spills go to
        #: local memory).  Setting ``hard_registers`` adds the register
        #: file as a fourth Eq. 4/5-style budget — an ablation of that
        #: modelling choice.
        self.hard_registers = hard_registers

    # ------------------------------------------------------------------
    def kernel_bound(self, prof: KernelProfile) -> KernelBound:
        dev = self.device
        beta = max(1, prof.num_blocks // dev.sm_count)   # Eq. 8, clamped
        # A kernel cannot place more blocks per SM than the occupancy limit
        # allows, however large its grid is (it just runs in waves): cap
        # beta at the residency fit so saturating kernels are costed at one
        # SM's worth, not their whole grid.
        fit = dev.max_blocks_per_sm
        fit = min(fit, dev.max_threads_per_sm // prof.threads_per_block)
        if prof.shared_mem_per_block > 0:
            fit = min(fit, dev.shared_mem_per_sm // prof.shared_mem_per_block)
        beta = min(beta, max(1, fit))
        if self.use_launch_bound:
            launch_bound = max(
                1, math.ceil(prof.duration_us / dev.launch_latency_us)
            )
        else:
            launch_bound = dev.max_concurrent_kernels
        thread_bound = max(1, (dev.max_threads_per_sm * dev.sm_count)
                           // (prof.threads_per_block * prof.num_blocks))
        if prof.shared_mem_per_block > 0:
            smem_bound = max(1, (dev.shared_mem_per_sm * dev.sm_count)
                             // (prof.shared_mem_per_block * prof.num_blocks))
        else:
            smem_bound = dev.max_concurrent_kernels
        return KernelBound(
            name=prof.name,
            beta=beta,
            tau=prof.threads_per_block,
            smem=prof.shared_mem_per_block,
            launch_bound=launch_bound,
            thread_bound=thread_bound,
            smem_bound=smem_bound,
        )

    def solve(self, layer_key: str,
              profiles: Sequence[KernelProfile]) -> ConcurrencyDecision:
        """Run the MILP; returns the concurrency decision for the layer."""
        if not profiles:
            raise SchedulingError(f"no kernel profiles for {layer_key!r}")
        dev = self.device
        bounds = [self.kernel_bound(p) for p in profiles]

        model = Model(f"glp4nn[{layer_key}@{dev.name}]")
        xs = []
        for i, b in enumerate(bounds):
            # Eq. 6 bounds only the *sum* below by 1; an individual #K_i
            # may be 0, meaning that kernel gets no dedicated concurrency
            # (it still executes — serialized within its chain's stream).
            xs.append(model.int_var(f"k{i}_{b.name}", lo=0, hi=b.upper))

        # Eq. 4: shared memory per SM
        model.add_constr(
            sum(b.smem * b.beta * x for b, x in zip(bounds, xs))
            <= dev.shared_mem_per_sm,
            name="smem_per_sm",
        )
        # Eq. 5: threads per SM
        model.add_constr(
            sum(b.tau * b.beta * x for b, x in zip(bounds, xs))
            <= dev.max_threads_per_sm,
            name="threads_per_sm",
        )
        # resident block slots per SM (rho_max of Table 2)
        model.add_constr(
            sum(b.beta * x for b, x in zip(bounds, xs))
            <= dev.max_blocks_per_sm,
            name="blocks_per_sm",
        )
        # Eq. 6: 1 <= sum #K_i <= C (device concurrency degree)
        model.add_constr(sum(xs) <= dev.max_concurrent_kernels, name="degree")
        model.add_constr(sum(xs) >= 1, name="degree_lo")
        if self.hard_registers:
            model.add_constr(
                sum(p.registers_per_thread * b.tau * b.beta * x
                    for p, b, x in zip(profiles, bounds, xs))
                <= dev.registers_per_sm,
                name="registers_per_sm",
            )

        # Objective (Eqs. 1-3): maximize active threads per SM.  The tiny
        # per-instance bonus breaks the frequent ties between "one fat
        # kernel" and "several lean kernels" solutions toward the latter —
        # more streams means more cross-kernel pipeline overlap at equal
        # nominal occupancy.
        model.maximize(
            sum(b.tau * b.beta * x for b, x in zip(bounds, xs))
            + 1e-3 * sum(xs)
        )

        sol = model.solve()
        # Nominal deterministic T_a: a fixed setup charge plus per-unit
        # solver work, so analysis cost is a pure function of the solve
        # (a wall-clock read here would leak host time into simulated
        # runs and break replayability — see docs/static_analysis.md).
        t_a = (20.0 + 0.4 * sol.simplex_iterations
               + 4.0 * sol.nodes_explored)
        counter_inc("milp.solves")
        observe("milp.nodes", sol.nodes_explored)
        observe("milp.iterations", sol.simplex_iterations)

        if not sol.status.ok:
            if sol.status is SolveStatus.INFEASIBLE:
                counter_inc("milp.infeasible")
                # Even one instance of every kernel overflows an SM — fall
                # back to fully serial execution (one stream).
                counts = {b.name: 1 for b in bounds}
                return ConcurrencyDecision(
                    layer_key=layer_key,
                    device=dev.name,
                    counts=counts,
                    c_out=1,
                    occupancy_ratio=0.0,
                    bounds=bounds,
                    analysis_time_us=t_a,
                )
            raise SchedulingError(
                f"analytical model for {layer_key!r}: solver status {sol.status}"
            )

        counts: dict[str, int] = {}
        active_threads = 0.0
        for b, x in zip(bounds, xs):
            n = int(sol[x])
            counts[b.name] = counts.get(b.name, 0) + n
            active_threads += b.tau * b.beta * n
        c_out = max(1, sum(int(sol[x]) for x in xs))   # Eq. 9
        occupancy = min(1.0, active_threads / dev.max_threads_per_sm)
        return ConcurrencyDecision(
            layer_key=layer_key,
            device=dev.name,
            counts=counts,
            c_out=c_out,
            occupancy_ratio=occupancy,
            bounds=bounds,
            analysis_time_us=t_a,
            solver_nodes=sol.nodes_explored,
            solver_iterations=sol.simplex_iterations,
        )
