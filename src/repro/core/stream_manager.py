"""Stream manager: the concurrent stream pool + default stream.

The paper's third design point: launch kernels concurrently *without*
consuming host threads or processes (its critique of the Hyper-Q/MPS and
OpenMP-based alternatives).  A pool of persistent CUDA streams per device is
created once, grown on demand, and handed out round-robin; the legacy
default stream provides layer-boundary synchronization for free because of
its barrier semantics.

One stream manager is shared by all GPUs in the machine (Fig. 5).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import SchedulingError
from repro.faults.hooks import fault_check
from repro.gpusim.engine import GPU
from repro.gpusim.stream import Stream


def round_robin_slots(num_chains: int, pool_size: int) -> tuple[int, ...]:
    """The canonical GLP4NN chain→stream assignment: chain ``i`` on slot
    ``i % pool_size`` (Section 3.1's round-robin).

    Shared by the runtime dispatcher
    (:meth:`repro.core.runtime_scheduler.RuntimeScheduler._dispatch`), the
    schedule fuzzer's identity plan and the static hazard analyzer
    (:mod:`repro.analyze`), so the plan the analyzer certifies is — by
    construction — the plan the dispatcher issues.
    """
    if pool_size < 1:
        raise SchedulingError(
            f"stream pool size must be >= 1, got {pool_size}")
    return tuple(i % pool_size for i in range(num_chains))


class StreamPool:
    """A lazily-grown pool of persistent streams on one device."""

    def __init__(self, gpu: GPU) -> None:
        self.gpu = gpu
        self._streams: list[Stream] = []
        self.high_water = 0

    def ensure(self, size: int) -> list[Stream]:
        """Return the first ``size`` pool streams, creating as needed.

        Streams are never destroyed — creation is a one-time cost, and the
        paper's pool design exists precisely to amortize it.
        """
        if size < 1:
            raise SchedulingError(f"stream pool size must be >= 1, got {size}")
        cap = self.gpu.props.max_concurrent_kernels
        if size > cap:
            raise SchedulingError(
                f"pool of {size} exceeds device concurrency degree {cap}"
            )
        # Fault-injection site: a fired fault means the pool could not be
        # obtained; the scheduler falls back to serial dispatch.
        fault_check("stream_create", self.gpu.props.name)
        while len(self._streams) < size:
            self._streams.append(
                self.gpu.create_stream(name=f"pool{len(self._streams)}")
            )
        self.high_water = max(self.high_water, size)
        return self._streams[:size]

    @property
    def size(self) -> int:
        return len(self._streams)

    @property
    def default(self) -> Stream:
        """The synchronization stream (CUDA legacy default stream)."""
        return self.gpu.default_stream

    def round_robin(self, size: int) -> Iterator[Stream]:
        """Endless round-robin iterator over a pool of ``size`` streams."""
        streams = self.ensure(size)
        i = 0
        while True:
            yield streams[i % size]
            i += 1


class StreamManager:
    """Machine-wide registry of per-device stream pools."""

    def __init__(self) -> None:
        self._pools: dict[int, StreamPool] = {}

    def pool(self, gpu: GPU) -> StreamPool:
        # Keyed by device *identity*, not model name: two same-model GPUs
        # in one machine must not share (or clobber) one pool.
        key = id(gpu)
        existing = self._pools.get(key)
        if existing is None or existing.gpu is not gpu:
            # A recycled id (old GPU collected, new one allocated at the
            # same address) invalidates old handles.
            existing = StreamPool(gpu)
            self._pools[key] = existing
        return existing

    def __len__(self) -> int:
        return len(self._pools)
