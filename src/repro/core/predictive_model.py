"""An alternative analyzer: pick the pool size that minimizes predicted time.

The paper designs the kernel analyzer to be customizable ("the analytical
model to be utilized can be customized by developers").  The default model
(Eqs. 1-9) maximizes *occupancy*; this module provides a second model that
directly minimizes *predicted layer time* with a closed-form pipeline
estimate, then returns the argmin pool size.

For a layer of ``m`` chains (samples), per-chain kernel times ``t_j`` and
``c`` streams, the layer time is bounded below by

* the host launch pipeline: ``n_launches * T_launch`` (+ stream-switch
  costs, which grow with ``c``), and
* chain execution serialized per stream: ``ceil(m / c) * sum_j t_j``,
  valid while the device is not resource-saturated; beyond the occupancy
  limit extra streams stop helping, which the prediction captures by
  capping ``c`` at the Eq. 4/5 residency budget.

The predictor evaluates ``T(c)`` for every feasible ``c`` and returns the
smallest ``c`` within 2 % of the optimum — preferring lean pools, unlike
the occupancy model's tie-break toward wide ones.  The ablation bench
compares the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.analytical_model import AnalyticalModel, ConcurrencyDecision
from repro.core.resource_tracker import KernelProfile
from repro.errors import SchedulingError
from repro.gpusim.device import DeviceProperties


@dataclass(frozen=True)
class TimePrediction:
    """Predicted layer time for one candidate pool size."""

    streams: int
    launch_us: float
    execute_us: float

    @property
    def total_us(self) -> float:
        return max(self.launch_us, self.execute_us)


class PredictiveModel:
    """Argmin-over-predicted-time analyzer (drop-in ``analyze_fn``)."""

    def __init__(self, device: DeviceProperties, tolerance: float = 0.02
                 ) -> None:
        self.device = device
        self.tolerance = tolerance
        self._occupancy_model = AnalyticalModel(device)

    # ------------------------------------------------------------------
    def _max_concurrent_chains(self, profiles: Sequence[KernelProfile]) -> int:
        """How many chains fit the per-SM residency budget at once.

        One chain has (at any instant) one kernel resident; the widest
        kernel of the chain is the conservative footprint.
        """
        dev = self.device
        worst_threads = max(
            self._occupancy_model.kernel_bound(p).beta * p.threads_per_block
            for p in profiles
        )
        worst_smem = max(
            self._occupancy_model.kernel_bound(p).beta
            * p.shared_mem_per_block
            for p in profiles
        )
        cap = dev.max_concurrent_kernels
        cap = min(cap, max(1, dev.max_threads_per_sm // max(1, worst_threads)))
        if worst_smem > 0:
            cap = min(cap, max(1, dev.shared_mem_per_sm // worst_smem))
        return cap

    def predict(self, profiles: Sequence[KernelProfile], streams: int
                ) -> TimePrediction:
        """Closed-form layer-time estimate for a given pool size."""
        dev = self.device
        chains = max(p.instances for p in profiles)
        kernels_per_chain = sum(
            p.instances for p in profiles) / max(1, chains)
        chain_time = sum(p.duration_us * p.instances for p in profiles) \
            / max(1, chains)
        n_launches = chains * kernels_per_chain
        switch = dev.stream_switch_us if streams > 1 else 0.0
        launch = n_launches * (dev.launch_latency_us + switch)
        execute = math.ceil(chains / streams) * chain_time
        return TimePrediction(streams=streams, launch_us=launch,
                              execute_us=execute)

    # ------------------------------------------------------------------
    def solve(self, layer_key: str,
              profiles: Sequence[KernelProfile]) -> ConcurrencyDecision:
        if not profiles:
            raise SchedulingError(f"no kernel profiles for {layer_key!r}")
        cap = self._max_concurrent_chains(profiles)
        predictions = [self.predict(profiles, c) for c in range(1, cap + 1)]
        best = min(predictions, key=lambda p: p.total_us)
        # lean preference: smallest pool within tolerance of the optimum
        chosen = next(
            p for p in predictions
            if p.total_us <= best.total_us * (1.0 + self.tolerance)
        )
        # Nominal deterministic T_a: fixed setup plus one closed-form
        # evaluation per candidate pool size (not wall clock, which
        # would make simulated runs non-replayable).
        t_a = 5.0 + 1.5 * len(predictions)
        return ConcurrencyDecision(
            layer_key=layer_key,
            device=self.device.name,
            counts={p.name: chosen.streams for p in profiles},
            c_out=chosen.streams,
            occupancy_ratio=float("nan"),
            bounds=[self._occupancy_model.kernel_bound(p) for p in profiles],
            analysis_time_us=t_a,
        )


def predictive_analyze_fn(device: DeviceProperties):
    """Factory returning an ``analyze_fn`` for :class:`~repro.core.GLP4NN`."""
    model = PredictiveModel(device)
    return model.solve
