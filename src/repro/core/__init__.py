"""GLP4NN — the paper's contribution.

The framework's four modules (paper Fig. 5), with the sharing structure the
paper prescribes — every GPU gets a private kernel analyzer and runtime
scheduler, while one resource tracker and one stream manager are shared by
all GPUs in the machine:

* :mod:`repro.core.resource_tracker` — the compact CUPTI-based *kernel
  profiler* plus the *kernel parser* that aggregates activity records into
  per-kernel profiles (grid, block, registers, shared memory, ``T_Ki``).
* :mod:`repro.core.analytical_model` — Eqs. 1-9: the occupancy-maximizing
  MILP that yields the per-kernel concurrency ``#K_i`` and the stream-pool
  size ``C_out``.
* :mod:`repro.core.kernel_analyzer` — *concurrency analyzer* (model +
  solver) and *concurrency maintainer* (per-layer decision cache).
* :mod:`repro.core.stream_manager` — the pool of persistent CUDA streams
  plus the default stream used for synchronization.
* :mod:`repro.core.runtime_scheduler` — profiling workflow + round-robin
  dispatch of per-sample kernel chains over the pool.
* :mod:`repro.core.framework` — the :class:`GLP4NN` facade wiring it all.
* :mod:`repro.core.cost` — the space/time overhead model of Section 3.3.2
  (Eqs. 10-12), which feeds Fig. 10 and Table 6.

Typical use::

    from repro.core import GLP4NN
    from repro.gpusim import GPU, get_device

    gpu = GPU(get_device("P100"))
    glp = GLP4NN([gpu])
    glp.run_layer(gpu, layer_work)   # profiles on first call, then
                                     # dispatches concurrently
"""

from repro.core.resource_tracker import (
    KernelProfile,
    LayerProfile,
    KernelParser,
    ResourceTracker,
)
from repro.core.analytical_model import (
    AnalyticalModel,
    ConcurrencyDecision,
    KernelBound,
)
from repro.core.kernel_analyzer import ConcurrencyAnalyzer, ConcurrencyMaintainer, KernelAnalyzer
from repro.core.predictive_model import PredictiveModel, predictive_analyze_fn
from repro.core.stream_manager import StreamPool, StreamManager
from repro.core.runtime_scheduler import (
    DegradePolicy,
    DispatchPolicy,
    LayerRun,
    RuntimeScheduler,
)
from repro.core.framework import GLP4NN
from repro.core.cost import OverheadModel, OverheadReport
from repro.core.persistence import (
    CacheLoadReport,
    load_decisions,
    load_decisions_safe,
    save_decisions,
)

__all__ = [
    "KernelProfile",
    "LayerProfile",
    "KernelParser",
    "ResourceTracker",
    "AnalyticalModel",
    "ConcurrencyDecision",
    "KernelBound",
    "ConcurrencyAnalyzer",
    "ConcurrencyMaintainer",
    "KernelAnalyzer",
    "PredictiveModel",
    "predictive_analyze_fn",
    "StreamPool",
    "StreamManager",
    "RuntimeScheduler",
    "DispatchPolicy",
    "DegradePolicy",
    "LayerRun",
    "GLP4NN",
    "OverheadModel",
    "OverheadReport",
    "save_decisions",
    "load_decisions",
    "load_decisions_safe",
    "CacheLoadReport",
]
