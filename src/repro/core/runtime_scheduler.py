"""Runtime scheduler: profiling workflow + round-robin dispatch.

Implements the paper's Fig. 6 workflow for each layer execution:

1. *Have this layer's kernels been profiled on this device?*  If not, run
   them once serially under the resource tracker (the run's results are
   used — nothing is wasted), feed the parsed profiles to the kernel
   analyzer, and initialize the stream pool with the resulting ``C_out``.
2. Otherwise, dispatch the layer's independent per-sample kernel chains
   **round-robin** over the ``C_out`` pool streams ("we take a round-robin
   scheduling policy for simplicity"), run whole-batch serial kernels on
   the default stream (whose legacy barrier semantics give the inter-layer
   synchronization the training algorithm requires), and synchronize.

Alternative dispatch policies (single stream, fixed-size pool, all-streams)
are provided for the motivation experiments (Figs. 2-4) and ablations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.kernel_analyzer import KernelAnalyzer
from repro.core.analytical_model import ConcurrencyDecision
from repro.core.resource_tracker import ResourceTracker
from repro.core.stream_manager import StreamManager
from repro.errors import SchedulingError
from repro.gpusim.engine import GPU
from repro.kernels.ir import LayerWork


class DispatchPolicy(enum.Enum):
    """How parallel chains map onto streams."""

    MODEL = "model"            # pool sized by the analytical model (GLP4NN)
    SINGLE = "single"          # everything on the default stream (naive Caffe)
    FIXED = "fixed"            # fixed user-chosen pool size (stream sweeps)
    MAX = "max"                # device concurrency degree (ablation)


@dataclass
class LayerRun:
    """Timing record of one layer execution."""

    key: str
    device: str
    elapsed_us: float
    streams_used: int
    profiled: bool
    decision: Optional[ConcurrencyDecision] = None


class RuntimeScheduler:
    """Per-device scheduler (Fig. 5 gives each GPU a private one)."""

    def __init__(
        self,
        gpu: GPU,
        tracker: ResourceTracker,
        analyzer: KernelAnalyzer,
        streams: StreamManager,
        policy: DispatchPolicy = DispatchPolicy.MODEL,
        fixed_streams: int = 1,
        work_transform=None,
    ) -> None:
        self.gpu = gpu
        self.tracker = tracker
        self.analyzer = analyzer
        self.streams = streams
        self.policy = policy
        self.fixed_streams = fixed_streams
        #: Optional ``LayerWork -> LayerWork`` rewrite applied before both
        #: profiling and dispatch (e.g. the kernel-fusion pass).
        self.work_transform = work_transform
        self.runs: list[LayerRun] = []

    # ------------------------------------------------------------------
    def run_layer(self, work: LayerWork) -> LayerRun:
        """Execute one layer-phase; profile-and-analyze on first sight."""
        if self.work_transform is not None:
            work = self.work_transform(work)
        start = self.gpu.host_time
        profiled = False
        decision: Optional[ConcurrencyDecision] = None

        if self.policy is DispatchPolicy.MODEL:
            cached = self.analyzer.maintainer.get(work.key)
            if cached is not None:
                # Decision already known (this run, or loaded from a
                # persisted cache): dispatch straight away, no profiling.
                self._dispatch(work, cached.c_out)
                run = LayerRun(
                    key=work.key,
                    device=self.gpu.props.name,
                    elapsed_us=self.gpu.host_time - start,
                    streams_used=cached.c_out,
                    profiled=False,
                    decision=cached,
                )
                self.runs.append(run)
                return run
            profile = self.tracker.get(self.gpu, work.key)
            if profile is None:
                # First execution: serial run under the tracker.  The
                # computation itself is performed, so the iteration is not
                # wasted — only the one-time T_p/T_a overhead is paid.
                profile = self.tracker.profile_layer(self.gpu, work)
                decision = self.analyzer.decision_for(profile)
                # Charge the (measured) analysis time to the host timeline:
                # the naive implementation analyzes synchronously.
                self.gpu.host_time += decision.analysis_time_us
                profiled = True
                run = LayerRun(
                    key=work.key,
                    device=self.gpu.props.name,
                    elapsed_us=self.gpu.host_time - start,
                    streams_used=1,
                    profiled=True,
                    decision=decision,
                )
                self.runs.append(run)
                return run
            decision = self.analyzer.decision_for(profile)
            pool_size = decision.c_out
        elif self.policy is DispatchPolicy.SINGLE:
            pool_size = 1
        elif self.policy is DispatchPolicy.FIXED:
            pool_size = self.fixed_streams
        elif self.policy is DispatchPolicy.MAX:
            pool_size = self.gpu.props.max_concurrent_kernels
        else:  # pragma: no cover - defensive
            raise SchedulingError(f"unknown policy {self.policy}")

        self._dispatch(work, pool_size)
        run = LayerRun(
            key=work.key,
            device=self.gpu.props.name,
            elapsed_us=self.gpu.host_time - start,
            streams_used=pool_size,
            profiled=profiled,
            decision=decision,
        )
        self.runs.append(run)
        return run

    # ------------------------------------------------------------------
    def _dispatch(self, work: LayerWork, pool_size: int) -> None:
        gpu = self.gpu
        if pool_size <= 1:
            for chain in work.parallel_chains:
                for spec in chain:
                    gpu.launch(spec)
            for spec in work.serial_kernels:
                gpu.launch(spec)
            gpu.synchronize()
            return
        pool = self.streams.pool(gpu).ensure(pool_size)
        for i, chain in enumerate(work.parallel_chains):
            stream = pool[i % pool_size]       # round-robin (Section 3.1)
            for spec in chain:
                gpu.launch(spec, stream=stream)
        # Whole-batch work goes to the legacy default stream, which waits
        # for all pool streams — the layer's reduction barrier for free.
        for spec in work.serial_kernels:
            gpu.launch(spec)
        gpu.synchronize()

    # ------------------------------------------------------------------
    def total_time_us(self) -> float:
        return sum(r.elapsed_us for r in self.runs)

    def reset_runs(self) -> None:
        self.runs.clear()
