"""Runtime scheduler: profiling workflow + round-robin dispatch.

Implements the paper's Fig. 6 workflow for each layer execution:

1. *Have this layer's kernels been profiled on this device?*  If not, run
   them once serially under the resource tracker (the run's results are
   used — nothing is wasted), feed the parsed profiles to the kernel
   analyzer, and initialize the stream pool with the resulting ``C_out``.
2. Otherwise, dispatch the layer's independent per-sample kernel chains
   **round-robin** over the ``C_out`` pool streams ("we take a round-robin
   scheduling policy for simplicity"), run whole-batch serial kernels on
   the default stream (whose legacy barrier semantics give the inter-layer
   synchronization the training algorithm requires), and synchronize.

Alternative dispatch policies (single stream, fixed-size pool, all-streams)
are provided for the motivation experiments (Figs. 2-4) and ablations.

Graceful degradation
--------------------
Concurrency is an *optimization*, never a correctness requirement, so every
failure on the concurrent path has a convergence-invariant fallback:

* transient launch/sync failures are retried with simulated-clock backoff
  (bounded by :class:`DegradePolicy`; exhaustion raises
  :class:`~repro.errors.DegradedError` — the sync watchdog);
* a layer whose stream pool or concurrency decision cannot be obtained
  (stream-creation failure, dropped profiler records, MILP timeout) falls
  back to serial dispatch on the default stream — unmodified-Caffe
  semantics — with the reason recorded on its :class:`LayerRun`;
* an infeasible analyzer output is clamped to ``C_out = 1`` by the
  analytical model itself.

The numerics never pass through any of this (the simulator only meters
time), so degraded and healthy runs train bit-identically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.core.kernel_analyzer import KernelAnalyzer
from repro.core.analytical_model import ConcurrencyDecision
from repro.core.resource_tracker import ResourceTracker
from repro.core.stream_manager import StreamManager, round_robin_slots
from repro.errors import (
    DegradedError,
    FaultInjected,
    SchedulingError,
    SolverError,
    TransientError,
)
from repro.gpusim.engine import GPU
from repro.gpusim.stream import Stream
from repro.kernels.ir import LayerWork
from repro.obs.metrics import counter_inc, observe
from repro.obs.spans import instant, span

_T = TypeVar("_T")


class DispatchPolicy(enum.Enum):
    """How parallel chains map onto streams."""

    MODEL = "model"            # pool sized by the analytical model (GLP4NN)
    SINGLE = "single"          # everything on the default stream (naive Caffe)
    FIXED = "fixed"            # fixed user-chosen pool size (stream sweeps)
    MAX = "max"                # device concurrency degree (ablation)


@dataclass(frozen=True)
class DegradePolicy:
    """Bounded-retry budget for transient failures.

    Backoff is charged to the *simulated* host clock (never wall clock), so
    retried runs stay deterministic: the n-th retry of a given call always
    lands at the same simulated time.
    """

    max_retries: int = 3
    backoff_us: float = 50.0
    backoff_factor: float = 2.0

    def delay_us(self, attempt: int) -> float:
        """Backoff charged before retry number ``attempt`` (1-based)."""
        return self.backoff_us * self.backoff_factor ** (attempt - 1)


@dataclass
class LayerRun:
    """Timing record of one layer execution."""

    key: str
    device: str
    elapsed_us: float
    streams_used: int
    profiled: bool
    decision: Optional[ConcurrencyDecision] = None
    #: True when this execution fell back to serial dispatch (or ran with
    #: no usable decision) because of a failure on the concurrent path.
    degraded: bool = False
    #: Human-readable cause of the degradation ("" when not degraded).
    degrade_reason: str = ""
    #: Transient-failure retries spent during this execution.
    retries: int = 0


class RuntimeScheduler:
    """Per-device scheduler (Fig. 5 gives each GPU a private one)."""

    def __init__(
        self,
        gpu: GPU,
        tracker: ResourceTracker,
        analyzer: KernelAnalyzer,
        streams: StreamManager,
        policy: DispatchPolicy = DispatchPolicy.MODEL,
        fixed_streams: int = 1,
        work_transform=None,
        degrade: Optional[DegradePolicy] = None,
    ) -> None:
        self.gpu = gpu
        self.tracker = tracker
        self.analyzer = analyzer
        self.streams = streams
        self.policy = policy
        self.fixed_streams = fixed_streams
        #: Optional ``LayerWork -> LayerWork`` rewrite applied before both
        #: profiling and dispatch (e.g. the kernel-fusion pass).
        self.work_transform = work_transform
        self.degrade = degrade or DegradePolicy()
        self.runs: list[LayerRun] = []

    # ------------------------------------------------------------------
    def run_layer(self, work: LayerWork) -> LayerRun:
        """Execute one layer-phase; profile-and-analyze on first sight."""
        if self.work_transform is not None:
            work = self.work_transform(work)
        with span("runtime.layer", cat="runtime", layer=work.key) as h:
            run = self._run_layer(work)
            h.set(streams=run.streams_used, profiled=run.profiled,
                  degraded=run.degraded, retries=run.retries)
        counter_inc("runtime.layers")
        observe("runtime.layer_us", run.elapsed_us)
        if run.retries:
            counter_inc("runtime.retries", run.retries)
        if run.degraded:
            counter_inc("runtime.degraded")
        return run

    def _run_layer(self, work: LayerWork) -> LayerRun:
        start = self.gpu.host_time
        decision: Optional[ConcurrencyDecision] = None
        degraded = False
        reason = ""
        retries = 0

        if self.policy is DispatchPolicy.MODEL:
            cached = self.analyzer.maintainer.get(work.key)
            if cached is not None:
                # Decision already known (this run, or loaded from a
                # persisted cache): dispatch straight away, no profiling.
                decision = cached
                pool_size = cached.c_out
            else:
                profile = self.tracker.get(self.gpu, work.key)
                if profile is None:
                    # First execution: serial profiling run (Fig. 6 left).
                    return self._profile_first(work, start)
                try:
                    with span("milp.solve", cat="milp", layer=work.key) as m:
                        decision = self.analyzer.decision_for(profile)
                        m.set(c_out=decision.c_out)
                    pool_size = decision.c_out
                except (SolverError, SchedulingError, FaultInjected) as e:
                    # Decision unobtainable (e.g. solver timeout): run the
                    # layer serially this iteration; nothing is cached, so
                    # a later iteration retries the analysis.
                    degraded, reason = True, f"analyzer unavailable: {e}"
                    pool_size = 1
        elif self.policy is DispatchPolicy.SINGLE:
            pool_size = 1
        elif self.policy is DispatchPolicy.FIXED:
            pool_size = self.fixed_streams
        elif self.policy is DispatchPolicy.MAX:
            pool_size = self.gpu.props.max_concurrent_kernels
        else:  # pragma: no cover - defensive
            raise SchedulingError(f"unknown policy {self.policy}")

        streams_used, d_retries, d_reason = self._dispatch(work, pool_size)
        retries += d_retries
        if d_reason:
            degraded, reason = True, d_reason
        run = LayerRun(
            key=work.key,
            device=self.gpu.props.name,
            elapsed_us=self.gpu.host_time - start,
            streams_used=streams_used,
            profiled=False,
            decision=decision,
            degraded=degraded,
            degrade_reason=reason,
            retries=retries,
        )
        self.runs.append(run)
        return run

    # ------------------------------------------------------------------
    def _profile_first(self, work: LayerWork, start: float) -> LayerRun:
        """First execution of a layer: serial run under the tracker.

        The computation itself is performed, so the iteration is not
        wasted — only the one-time ``T_p``/``T_a`` overhead is paid.  On
        profiling or analysis failure the layer still completes serially
        (the profiling pass *is* a serial execution) and the failure is
        recorded; nothing is cached, so a later iteration tries again.
        """
        retries = 0
        try:
            profile, attempts = self._with_retry(
                lambda: self.tracker.profile_layer(self.gpu, work),
                f"profiling {work.key!r}",
            )
            retries += attempts
        except DegradedError:
            raise
        except (SchedulingError, FaultInjected) as e:
            # Profiling produced no usable records (or was rejected
            # outright).  Re-dispatch serially so the layer's work is
            # guaranteed complete this iteration, whatever state the
            # failed profiling attempt left behind.
            _, d_retries, _ = self._dispatch(work, 1)
            run = LayerRun(
                key=work.key,
                device=self.gpu.props.name,
                elapsed_us=self.gpu.host_time - start,
                streams_used=1,
                profiled=False,
                decision=None,
                degraded=True,
                degrade_reason=f"profiling unavailable: {e}",
                retries=retries + d_retries,
            )
            self.runs.append(run)
            return run

        try:
            # Charge the (measured) analysis time to the host timeline
            # inside the span: the naive implementation analyzes
            # synchronously, so the span width is T_a on the host clock.
            with span("milp.solve", cat="milp", layer=work.key) as m:
                decision = self.analyzer.decision_for(profile)
                self.gpu.host_time += decision.analysis_time_us
                m.set(c_out=decision.c_out,
                      nodes=decision.solver_nodes,
                      iterations=decision.solver_iterations)
        except (SolverError, SchedulingError, FaultInjected) as e:
            run = LayerRun(
                key=work.key,
                device=self.gpu.props.name,
                elapsed_us=self.gpu.host_time - start,
                streams_used=1,
                profiled=True,
                decision=None,
                degraded=True,
                degrade_reason=f"analyzer unavailable: {e}",
                retries=retries,
            )
            self.runs.append(run)
            return run
        run = LayerRun(
            key=work.key,
            device=self.gpu.props.name,
            elapsed_us=self.gpu.host_time - start,
            streams_used=1,
            profiled=True,
            decision=decision,
            retries=retries,
        )
        self.runs.append(run)
        return run

    # ------------------------------------------------------------------
    def _with_retry(self, fn: Callable[[], _T], what: str
                    ) -> tuple[_T, int]:
        """Run ``fn``, retrying transient failures with simulated backoff.

        Returns ``(result, retries_used)``; raises
        :class:`~repro.errors.DegradedError` once the budget is exhausted.
        """
        policy = self.degrade
        last: Optional[TransientError] = None
        for attempt in range(policy.max_retries + 1):
            try:
                return fn(), attempt
            except TransientError as e:
                last = e
                instant("runtime.retry", cat="runtime", what=what,
                        attempt=attempt + 1)
                counter_inc("runtime.transient_faults")
                if attempt < policy.max_retries:
                    self.gpu.host_time += policy.delay_us(attempt + 1)
        raise DegradedError(
            f"{what}: transient failure persisted through "
            f"{policy.max_retries} retries ({last})"
        ) from last

    def _launch_with_retry(self, spec, stream: Optional[Stream]) -> int:
        _, attempts = self._with_retry(
            lambda: self.gpu.launch(spec, stream=stream),
            f"launch of {spec.name!r}",
        )
        return attempts

    def _sync_with_retry(self) -> int:
        """The sync watchdog: bounded retries, then DegradedError."""
        _, attempts = self._with_retry(self.gpu.synchronize, "synchronize")
        return attempts

    # ------------------------------------------------------------------
    def _dispatch(self, work: LayerWork, pool_size: int
                  ) -> tuple[int, int, str]:
        """Issue the layer's kernels; returns (streams, retries, reason).

        ``reason`` is non-empty when the requested pool could not be
        obtained and the layer fell back to serial dispatch.
        """
        gpu = self.gpu
        retries = 0
        reason = ""
        pool: Optional[list[Stream]] = None
        if pool_size > 1:
            try:
                pool = self.streams.pool(gpu).ensure(pool_size)
            except FaultInjected as e:
                pool_size = 1
                reason = f"stream pool unavailable: {e}"
        if pool_size <= 1 or pool is None:
            with span("runtime.dispatch", cat="runtime", layer=work.key,
                      streams=1):
                for chain in work.parallel_chains:
                    for spec in chain:
                        retries += self._launch_with_retry(spec, None)
                for spec in work.serial_kernels:
                    retries += self._launch_with_retry(spec, None)
            with span("runtime.sync", cat="runtime", layer=work.key):
                retries += self._sync_with_retry()
            return 1, retries, reason
        with span("runtime.dispatch", cat="runtime", layer=work.key,
                  streams=pool_size):
            slots = round_robin_slots(len(work.parallel_chains), pool_size)
            for i, chain in enumerate(work.parallel_chains):
                stream = pool[slots[i]]   # round-robin (Section 3.1)
                for spec in chain:
                    retries += self._launch_with_retry(spec, stream)
            # Whole-batch work goes to the legacy default stream, which
            # waits for all pool streams — the layer's reduction barrier
            # for free.
            for spec in work.serial_kernels:
                retries += self._launch_with_retry(spec, None)
        with span("runtime.sync", cat="runtime", layer=work.key):
            retries += self._sync_with_retry()
        return pool_size, retries, reason

    # ------------------------------------------------------------------
    def degraded_runs(self) -> list[LayerRun]:
        """Every recorded run that fell back (for reports/tests)."""
        return [r for r in self.runs if r.degraded]

    def total_retries(self) -> int:
        return sum(r.retries for r in self.runs)

    def total_time_us(self) -> float:
        return sum(r.elapsed_us for r in self.runs)

    def reset_runs(self) -> None:
        self.runs.clear()
