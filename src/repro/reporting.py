"""Shared report serialization for the verify/analyze CLIs.

Every report object in this repo exposes the same two views — a
human-readable ``render()`` and a machine-readable ``to_dict()`` /
``to_json()`` — so the ``--format json|text`` plumbing lives once, here,
instead of per-subcommand.
"""

from __future__ import annotations

import argparse

FORMATS = ("text", "json")


def add_format_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="report format: human-readable text or machine-readable JSON")


def emit(report, fmt: str) -> str:
    """Serialize ``report`` in the requested format."""
    if fmt == "json":
        return report.to_json()
    return report.render()
