"""Network container: topological execution of named layers over blobs.

Mirrors Caffe's ``Net``: layers are listed in topological order (each
layer's bottoms must be net inputs or tops of earlier layers), parameters
can be shared across layers through ``param_key`` (how the Siamese twins are
tied), and the backward pass accumulates gradients for blobs consumed by
multiple layers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import NetworkError
from repro.nn.blob import Blob
from repro.nn.layer import Layer, LayerDef


class Net:
    """A feed-forward DAG of layers.

    Parameters
    ----------
    name:
        Network name (``"cifar10"``, ``"caffenet"``, ...).
    layer_defs:
        Layers with their blob wiring, in topological order.
    input_shapes:
        Shapes of the externally provided blobs (data, labels).
    seed:
        Seed of the parameter-initialization generator.  Two nets built with
        the same definitions and seed have bit-identical parameters — the
        basis of the convergence-invariance experiment.
    """

    def __init__(
        self,
        name: str,
        layer_defs: Sequence[LayerDef],
        input_shapes: dict[str, tuple[int, ...]],
        seed: int = 0,
    ) -> None:
        self.name = name
        self.layer_defs = list(layer_defs)
        self.input_names = list(input_shapes)
        self._rng = np.random.default_rng(seed)

        shapes: dict[str, tuple[int, ...]] = {
            k: tuple(v) for k, v in input_shapes.items()
        }
        owners: dict[str, Layer] = {}
        for ld in self.layer_defs:
            for b in ld.bottoms:
                if b not in shapes:
                    raise NetworkError(
                        f"layer {ld.name!r}: bottom {b!r} not produced yet "
                        "(layers must be topologically ordered)"
                    )
            for t in ld.tops:
                if t in ld.bottoms:
                    raise NetworkError(
                        f"layer {ld.name!r}: in-place blobs are not supported "
                        f"(top {t!r} duplicates a bottom)"
                    )
                if t in shapes:
                    raise NetworkError(
                        f"layer {ld.name!r}: top {t!r} already exists"
                    )
            bottom_shapes = [shapes[b] for b in ld.bottoms]
            top_shapes = ld.layer.setup(bottom_shapes, self._rng)
            if len(top_shapes) != len(ld.tops):
                raise NetworkError(
                    f"layer {ld.name!r}: produced {len(top_shapes)} tops, "
                    f"definition names {len(ld.tops)}"
                )
            for t, s in zip(ld.tops, top_shapes):
                shapes[t] = tuple(s)
            if ld.param_key:
                owner = owners.get(ld.param_key)
                if owner is None:
                    owners[ld.param_key] = ld.layer
                else:
                    if [p.shape for p in owner.params] != [
                        p.shape for p in ld.layer.params
                    ]:
                        raise NetworkError(
                            f"param sharing {ld.param_key!r}: shape mismatch"
                        )
                    ld.layer.params = owner.params
        self.blob_shapes = shapes
        self.blobs: dict[str, np.ndarray] = {}
        self.blob_diffs: dict[str, np.ndarray] = {}
        self._train = True

    # ------------------------------------------------------------------
    @property
    def layers(self) -> list[Layer]:
        return [ld.layer for ld in self.layer_defs]

    def layer(self, name: str) -> Layer:
        for ld in self.layer_defs:
            if ld.name == name:
                return ld.layer
        raise NetworkError(f"no layer named {name!r} in net {self.name!r}")

    def set_mode(self, train: bool) -> None:
        """Switch between train and test phase (affects dropout)."""
        self._train = train
        for lyr in self.layers:
            if hasattr(lyr, "train_mode"):
                lyr.train_mode = train

    def unique_params(self) -> list[tuple[Blob, float, float]]:
        """All parameter blobs with their lr/decay multipliers, deduplicated.

        Shared blobs (Siamese twins) appear once, so the solver applies each
        update exactly once even though gradients accumulated from both
        branches.
        """
        seen: set[int] = set()
        out: list[tuple[Blob, float, float]] = []
        for lyr in self.layers:
            for p, lm, dm in zip(lyr.params, lyr.lr_mult, lyr.decay_mult):
                if id(p) not in seen:
                    seen.add(id(p))
                    out.append((p, lm, dm))
        return out

    def num_learnable(self) -> int:
        return sum(p.count for p, _, _ in self.unique_params())

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all unique parameter tensors, keyed by blob name."""
        return {p.name: p.data.copy() for p, _, _ in self.unique_params()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore parameters from :meth:`state_dict` (strict matching)."""
        params = {p.name: p for p, _, _ in self.unique_params()}
        missing = set(params) - set(state)
        extra = set(state) - set(params)
        if missing or extra:
            raise NetworkError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(extra)}"
            )
        for name, arr in state.items():
            blob = params[name]
            if arr.shape != blob.shape:
                raise NetworkError(
                    f"param {name!r}: shape {arr.shape} != {blob.shape}"
                )
            blob.data[...] = arr

    # ------------------------------------------------------------------
    def forward(self, inputs: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Run the forward pass; returns the full blob dictionary."""
        missing = [k for k in self.input_names if k not in inputs]
        if missing:
            raise NetworkError(f"missing net inputs: {missing}")
        blobs: dict[str, np.ndarray] = {}
        for k in self.input_names:
            arr = np.asarray(inputs[k], dtype=np.float32)
            if arr.shape != self.blob_shapes[k]:
                raise NetworkError(
                    f"input {k!r}: shape {arr.shape} != declared "
                    f"{self.blob_shapes[k]}"
                )
            blobs[k] = arr
        for ld in self.layer_defs:
            bottoms = [blobs[b] for b in ld.bottoms]
            tops = ld.layer.forward(bottoms)
            for t, arr in zip(ld.tops, tops):
                blobs[t] = arr
        self.blobs = blobs
        return blobs

    def backward(self, loss_weights: Optional[dict[str, float]] = None) -> None:
        """Run the backward pass from loss layers; fills ``param.diff``.

        ``loss_weights`` maps loss-top blob names to weights (default 1.0
        for every loss layer's top).
        """
        if not self.blobs:
            raise NetworkError("backward called before forward")
        for lyr in self.layers:
            lyr.zero_param_diffs()
        diffs: dict[str, np.ndarray] = {}
        for ld in self.layer_defs:
            if ld.layer.is_loss:
                w = 1.0
                if loss_weights and ld.tops[0] in loss_weights:
                    w = loss_weights[ld.tops[0]]
                diffs[ld.tops[0]] = np.array([w], dtype=np.float32)
        if not diffs:
            raise NetworkError(f"net {self.name!r} has no loss layer")

        for ld in reversed(self.layer_defs):
            top_diffs = []
            any_grad = False
            for t in ld.tops:
                d = diffs.get(t)
                if d is None:
                    d = np.zeros(self.blobs[t].shape, dtype=np.float32)
                else:
                    any_grad = True
                top_diffs.append(d)
            if not any_grad and not ld.layer.is_loss:
                continue  # dead branch (e.g. accuracy at train time)
            bottoms = [self.blobs[b] for b in ld.bottoms]
            tops = [self.blobs[t] for t in ld.tops]
            bottom_diffs = ld.layer.backward(top_diffs, bottoms, tops)
            for b, d in zip(ld.bottoms, bottom_diffs):
                if d is None:
                    continue
                if b in diffs:
                    diffs[b] = diffs[b] + d
                else:
                    diffs[b] = d
        self.blob_diffs = diffs

    def loss_value(self) -> float:
        """Sum of all loss tops from the last forward pass."""
        total = 0.0
        found = False
        for ld in self.layer_defs:
            if ld.layer.is_loss:
                total += float(self.blobs[ld.tops[0]][0])
                found = True
        if not found:
            raise NetworkError(f"net {self.name!r} has no loss layer")
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Net({self.name!r}, {len(self.layer_defs)} layers)"
