"""A Caffe-like neural-network framework in NumPy.

This is the substrate GLP4NN integrates with (the paper modifies Caffe into
"GLP4NN-Caffe").  It follows Caffe's architecture: named :class:`Blob` s
flow between :class:`Layer` s arranged in a :class:`Net`, trained by an SGD
:class:`Solver` with Caffe's learning-rate policies.  The numerical results
are completely independent of how the lowered kernels are scheduled on the
simulated GPU — that separation is what makes GLP4NN convergence-invariant,
and the Fig. 11 experiment demonstrates it with real training runs.

Layer coverage matches what the paper's four networks need: convolution
(im2col + GEMM, per-sample like Caffe's GPU path), max/average pooling,
ReLU, LRN, inner product, dropout, concat, softmax-with-loss, contrastive
loss (for the Siamese network), and accuracy.

>>> from repro.nn import Net, LayerDef
>>> from repro.nn.layers import ConvolutionLayer, ReLULayer
"""

from repro.nn.blob import Blob
from repro.nn.config import ConvConfig, PoolConfig, conv_out_dim
from repro.nn.filler import (
    constant_filler,
    gaussian_filler,
    xavier_filler,
    make_filler,
)
from repro.nn.im2col import im2col, col2im
from repro.nn.layer import Layer, LayerDef
from repro.nn.net import Net
from repro.nn.solver import Solver, SolverConfig
from repro.nn.trainer import Trainer, TrainEvent

__all__ = [
    "Blob",
    "ConvConfig",
    "PoolConfig",
    "conv_out_dim",
    "constant_filler",
    "gaussian_filler",
    "xavier_filler",
    "make_filler",
    "im2col",
    "col2im",
    "Layer",
    "LayerDef",
    "Net",
    "Solver",
    "SolverConfig",
    "Trainer",
    "TrainEvent",
]
