"""Layer configuration records.

:class:`ConvConfig` carries exactly the columns of the paper's Table 5
("Layers of DNNs used in this paper"): batch size ``N``, input depth
``C_i``, spatial size ``H``/``W``, output depth ``C_o``, filter size
``F_h``/``F_w``, stride ``S`` and padding ``P``.  Both the numeric layers
and the shape-driven lowering in :mod:`repro.runtime.lowering` consume these
records, so timing experiments can run without allocating any tensor data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError


def conv_out_dim(size: int, filt: int, stride: int, pad: int) -> int:
    """Caffe's convolution output-dimension formula."""
    out = (size + 2 * pad - filt) // stride + 1
    if out < 1:
        raise NetworkError(
            f"convolution output collapsed: size={size} filt={filt} "
            f"stride={stride} pad={pad}"
        )
    return out


def pool_out_dim(size: int, filt: int, stride: int, pad: int = 0) -> int:
    """Caffe's pooling output-dimension formula (ceil mode)."""
    out = -(-(size + 2 * pad - filt) // stride) + 1
    return max(out, 1)


@dataclass(frozen=True)
class ConvConfig:
    """One convolution layer exactly as a row of the paper's Table 5.

    ``g`` is Caffe's ``group`` parameter (the dual-GPU AlexNet artifact);
    Table 5 describes all layers ungrouped (``g = 1``), but the library
    supports grouping for fidelity with the original prototxts.
    """

    name: str
    n: int           # batch size N
    ci: int          # input channels C_i
    hw: int          # input height = width (the paper's nets are square)
    co: int          # output channels C_o
    f: int           # filter height = width F_h = F_w
    s: int = 1       # stride S
    p: int = 0       # padding P
    net: str = ""    # owning network name
    g: int = 1       # channel groups

    def __post_init__(self) -> None:
        if min(self.n, self.ci, self.hw, self.co, self.f, self.s, self.g) < 1 \
                or self.p < 0:
            raise NetworkError(f"invalid conv config: {self}")
        if self.ci % self.g or self.co % self.g:
            raise NetworkError(
                f"{self.name}: channels ({self.ci}->{self.co}) not divisible "
                f"by group {self.g}"
            )

    @property
    def out_hw(self) -> int:
        return conv_out_dim(self.hw, self.f, self.s, self.p)

    @property
    def out_spatial(self) -> int:
        """Output pixels per channel (``H' * W'``)."""
        return self.out_hw * self.out_hw

    @property
    def k_gemm(self) -> int:
        """GEMM reduction dimension: ``(C_i / g) * F_h * F_w``."""
        return (self.ci // self.g) * self.f * self.f

    @property
    def co_gemm(self) -> int:
        """GEMM output rows per group: ``C_o / g``."""
        return self.co // self.g

    @property
    def flops_per_sample(self) -> float:
        """Multiply-add flops of one sample's forward convolution."""
        return 2.0 * self.g * self.co_gemm * self.out_spatial * self.k_gemm

    def describe(self) -> str:
        return (
            f"{self.net or '?'}/{self.name}: N={self.n} {self.ci}x{self.hw}x"
            f"{self.hw} -> {self.co}x{self.out_hw}x{self.out_hw} "
            f"(f={self.f}, s={self.s}, p={self.p})"
        )


@dataclass(frozen=True)
class PoolConfig:
    """A pooling layer: channels, input spatial size, window, stride."""

    name: str
    n: int
    c: int
    hw: int
    f: int
    s: int
    op: str = "max"          # "max" or "ave"
    net: str = ""

    @property
    def out_hw(self) -> int:
        return pool_out_dim(self.hw, self.f, self.s)
