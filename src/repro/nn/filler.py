"""Weight initializers ("fillers" in Caffe terminology).

All fillers are deterministic given a ``numpy.random.Generator``; the solver
owns the generator, so a fixed seed reproduces the exact parameter
trajectory — the property the Fig. 11 convergence experiment relies on.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import NetworkError

Filler = Callable[[np.ndarray, np.random.Generator], None]


def constant_filler(value: float = 0.0) -> Filler:
    """Fill with a constant (Caffe's default bias filler)."""

    def fill(arr: np.ndarray, rng: np.random.Generator) -> None:
        arr.fill(value)

    return fill


def gaussian_filler(std: float = 0.01, mean: float = 0.0) -> Filler:
    """Gaussian initialization (CaffeNet / GoogLeNet style)."""

    def fill(arr: np.ndarray, rng: np.random.Generator) -> None:
        arr[...] = rng.normal(mean, std, size=arr.shape).astype(arr.dtype)

    return fill


def xavier_filler() -> Filler:
    """Caffe's 'xavier': uniform in ``[-s, s]`` with ``s = sqrt(3/fan_in)``.

    ``fan_in`` is ``count / shape[0]`` exactly as in Caffe's implementation.
    """

    def fill(arr: np.ndarray, rng: np.random.Generator) -> None:
        fan_in = arr.size / arr.shape[0]
        scale = math.sqrt(3.0 / fan_in)
        arr[...] = rng.uniform(-scale, scale, size=arr.shape).astype(arr.dtype)

    return fill


def make_filler(kind: str, **kwargs) -> Filler:
    """Factory by Caffe prototxt name: constant / gaussian / xavier."""
    if kind == "constant":
        return constant_filler(**kwargs)
    if kind == "gaussian":
        return gaussian_filler(**kwargs)
    if kind == "xavier":
        return xavier_filler(**kwargs)
    raise NetworkError(f"unknown filler type {kind!r}")
