"""CaffeNet (the AlexNet variant shipped with Caffe).

Convolution layers follow Table 5 exactly.  Grouped convolution (the
reference prototxt's ``group: 2`` on conv2/4/5, a dual-GPU artifact of the
original AlexNet) is off by default — Table 5 describes the layers
ungrouped — but can be restored with ``grouped=True``.

    data(3x227x227) -> conv1(96,11,s4) -> relu -> pool(3,2) -> lrn
                    -> conv2(256,5,p2) -> relu -> pool(3,2) -> lrn
                    -> conv3(384,3,p1) -> relu
                    -> conv4(384,3,p1) -> relu
                    -> conv5(256,3,p1) -> relu -> pool(3,2)
                    -> fc6 -> relu -> dropout -> fc7 -> relu -> dropout
                    -> fc8(classes) -> softmax loss

``fc_dim`` scales the fully-connected width (4096 in the original) so tests
can build a light variant; the convolutional shapes never change.
"""

from __future__ import annotations

from repro.nn.filler import constant_filler, gaussian_filler
from repro.nn.layer import LayerDef
from repro.nn.layers import (
    AccuracyLayer,
    ConvolutionLayer,
    DropoutLayer,
    InnerProductLayer,
    LRNLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.nn.net import Net


def build_caffenet(batch: int = 256, classes: int = 1000, fc_dim: int = 4096,
                   seed: int = 0, with_accuracy: bool = False,
                   grouped: bool = False) -> Net:
    """Build CaffeNet with the paper's batch size (N=256) by default.

    ``grouped=True`` restores the reference prototxt's ``group: 2`` on
    conv2/conv4/conv5 (the dual-GPU AlexNet layout); the default matches
    Table 5, which describes the layers ungrouped.

    .. warning::
       At the default scale the parameters alone occupy hundreds of
       megabytes and a numeric forward pass at N=256 is very slow on a CPU;
       the timing experiments therefore run shape-only through
       :mod:`repro.runtime.lowering`.  For numeric tests use a small
       ``batch`` and ``fc_dim``.
    """
    g = gaussian_filler
    one = constant_filler(1.0)
    grp = 2 if grouped else 1
    defs = [
        LayerDef(ConvolutionLayer("conv1", 96, 11, stride=4,
                                  weight_filler=g(0.01)),
                 ["data"], ["conv1"]),
        LayerDef(ReLULayer("relu1"), ["conv1"], ["relu1"]),
        LayerDef(PoolingLayer("pool1", 3, 2, op="max"), ["relu1"], ["pool1"]),
        LayerDef(LRNLayer("norm1", local_size=5, alpha=1e-4, beta=0.75),
                 ["pool1"], ["norm1"]),
        LayerDef(ConvolutionLayer("conv2", 256, 5, pad=2, group=grp,
                                  weight_filler=g(0.01), bias_filler=one),
                 ["norm1"], ["conv2"]),
        LayerDef(ReLULayer("relu2"), ["conv2"], ["relu2"]),
        LayerDef(PoolingLayer("pool2", 3, 2, op="max"), ["relu2"], ["pool2"]),
        LayerDef(LRNLayer("norm2", local_size=5, alpha=1e-4, beta=0.75),
                 ["pool2"], ["norm2"]),
        LayerDef(ConvolutionLayer("conv3", 384, 3, pad=1,
                                  weight_filler=g(0.01)),
                 ["norm2"], ["conv3"]),
        LayerDef(ReLULayer("relu3"), ["conv3"], ["relu3"]),
        LayerDef(ConvolutionLayer("conv4", 384, 3, pad=1, group=grp,
                                  weight_filler=g(0.01), bias_filler=one),
                 ["relu3"], ["conv4"]),
        LayerDef(ReLULayer("relu4"), ["conv4"], ["relu4"]),
        LayerDef(ConvolutionLayer("conv5", 256, 3, pad=1, group=grp,
                                  weight_filler=g(0.01), bias_filler=one),
                 ["relu4"], ["conv5"]),
        LayerDef(ReLULayer("relu5"), ["conv5"], ["relu5"]),
        LayerDef(PoolingLayer("pool5", 3, 2, op="max"), ["relu5"], ["pool5"]),
        LayerDef(InnerProductLayer("fc6", fc_dim, weight_filler=g(0.005),
                                   bias_filler=one),
                 ["pool5"], ["fc6"]),
        LayerDef(ReLULayer("relu6"), ["fc6"], ["relu6"]),
        LayerDef(DropoutLayer("drop6", 0.5), ["relu6"], ["drop6"]),
        LayerDef(InnerProductLayer("fc7", fc_dim, weight_filler=g(0.005),
                                   bias_filler=one),
                 ["drop6"], ["fc7"]),
        LayerDef(ReLULayer("relu7"), ["fc7"], ["relu7"]),
        LayerDef(DropoutLayer("drop7", 0.5), ["relu7"], ["drop7"]),
        LayerDef(InnerProductLayer("fc8", classes, weight_filler=g(0.01)),
                 ["drop7"], ["fc8"]),
        LayerDef(SoftmaxWithLossLayer("loss"), ["fc8", "label"], ["loss"]),
    ]
    if with_accuracy:
        defs.append(LayerDef(AccuracyLayer("accuracy"), ["fc8", "label"],
                             ["accuracy"]))
    return Net(
        "caffenet",
        defs,
        input_shapes={"data": (batch, 3, 227, 227), "label": (batch,)},
        seed=seed,
    )
