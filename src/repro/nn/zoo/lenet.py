"""LeNet (Caffe's ``lenet`` MNIST example).

Not part of the paper's Table 5 evaluation set, but it is the single branch
of the Siamese network and the canonical Caffe MNIST model, so the zoo
ships it for examples and tests.

    data(1x28x28) -> conv1(20,5) -> maxpool(2,2)
                  -> conv2(50,5) -> maxpool(2,2)
                  -> ip1(500) -> relu -> ip2(classes) -> softmax loss
"""

from __future__ import annotations

from repro.nn.filler import gaussian_filler
from repro.nn.layer import LayerDef
from repro.nn.layers import (
    AccuracyLayer,
    ConvolutionLayer,
    InnerProductLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.nn.net import Net


def build_lenet(batch: int = 64, classes: int = 10, seed: int = 0,
                with_accuracy: bool = True) -> Net:
    """Build LeNet with Caffe's MNIST batch size (64) by default."""
    g = gaussian_filler
    defs = [
        LayerDef(ConvolutionLayer("conv1", 20, 5, weight_filler=g(0.01)),
                 ["data"], ["conv1"]),
        LayerDef(PoolingLayer("pool1", 2, 2, op="max"), ["conv1"], ["pool1"]),
        LayerDef(ConvolutionLayer("conv2", 50, 5, weight_filler=g(0.01)),
                 ["pool1"], ["conv2"]),
        LayerDef(PoolingLayer("pool2", 2, 2, op="max"), ["conv2"], ["pool2"]),
        LayerDef(InnerProductLayer("ip1", 500, weight_filler=g(0.01)),
                 ["pool2"], ["ip1"]),
        LayerDef(ReLULayer("relu1"), ["ip1"], ["relu1"]),
        LayerDef(InnerProductLayer("ip2", classes, weight_filler=g(0.01)),
                 ["relu1"], ["ip2"]),
        LayerDef(SoftmaxWithLossLayer("loss"), ["ip2", "label"], ["loss"]),
    ]
    if with_accuracy:
        defs.append(LayerDef(AccuracyLayer("accuracy"), ["ip2", "label"],
                             ["accuracy"]))
    return Net(
        "lenet",
        defs,
        input_shapes={"data": (batch, 1, 28, 28), "label": (batch,)},
        seed=seed,
    )
