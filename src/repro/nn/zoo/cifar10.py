"""The CIFAR10-quick network (Caffe's ``cifar10_quick`` example).

Architecture (conv layers exactly as Table 5):

    data(3x32x32) -> conv1(32,5,p2) -> maxpool(3,2) -> relu
                  -> conv2(32,5,p2) -> relu -> avepool(3,2)
                  -> conv3(64,5,p2) -> relu -> avepool(3,2)
                  -> ip1(64) -> ip2(10) -> softmax loss (+ accuracy)
"""

from __future__ import annotations

from repro.nn.filler import constant_filler, gaussian_filler
from repro.nn.layer import LayerDef
from repro.nn.layers import (
    AccuracyLayer,
    ConvolutionLayer,
    InnerProductLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.nn.net import Net


def build_cifar10(batch: int = 100, classes: int = 10, seed: int = 0,
                  with_accuracy: bool = True) -> Net:
    """Build CIFAR10-quick with the paper's batch size (N=100) by default."""
    g = gaussian_filler
    defs = [
        LayerDef(ConvolutionLayer("conv1", 32, 5, pad=2,
                                  weight_filler=g(1e-4)),
                 ["data"], ["conv1"]),
        LayerDef(PoolingLayer("pool1", 3, 2, op="max"), ["conv1"], ["pool1"]),
        LayerDef(ReLULayer("relu1"), ["pool1"], ["relu1"]),
        LayerDef(ConvolutionLayer("conv2", 32, 5, pad=2,
                                  weight_filler=g(0.01)),
                 ["relu1"], ["conv2"]),
        LayerDef(ReLULayer("relu2"), ["conv2"], ["relu2"]),
        LayerDef(PoolingLayer("pool2", 3, 2, op="ave"), ["relu2"], ["pool2"]),
        LayerDef(ConvolutionLayer("conv3", 64, 5, pad=2,
                                  weight_filler=g(0.01)),
                 ["pool2"], ["conv3"]),
        LayerDef(ReLULayer("relu3"), ["conv3"], ["relu3"]),
        LayerDef(PoolingLayer("pool3", 3, 2, op="ave"), ["relu3"], ["pool3"]),
        LayerDef(InnerProductLayer("ip1", 64, weight_filler=g(0.1)),
                 ["pool3"], ["ip1"]),
        LayerDef(InnerProductLayer("ip2", classes, weight_filler=g(0.1)),
                 ["ip1"], ["ip2"]),
        LayerDef(SoftmaxWithLossLayer("loss"), ["ip2", "label"], ["loss"]),
    ]
    if with_accuracy:
        defs.append(LayerDef(AccuracyLayer("accuracy"), ["ip2", "label"],
                             ["accuracy"]))
    return Net(
        "cifar10",
        defs,
        input_shapes={"data": (batch, 3, 32, 32), "label": (batch,)},
        seed=seed,
    )
