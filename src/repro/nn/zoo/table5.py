"""Paper Table 5, verbatim: every convolution layer the evaluation uses.

These records drive the shape-only timing experiments (Figs. 2, 4, 7, 8, 9)
without allocating tensor data; the numeric zoo nets are built from the same
numbers, and the test suite cross-checks the two against each other.
"""

from __future__ import annotations

from repro.nn.config import ConvConfig

CIFAR10_CONVS: tuple[ConvConfig, ...] = (
    ConvConfig("conv1", n=100, ci=3, hw=32, co=32, f=5, s=1, p=2, net="CIFAR10"),
    ConvConfig("conv2", n=100, ci=32, hw=16, co=32, f=5, s=1, p=2, net="CIFAR10"),
    ConvConfig("conv3", n=100, ci=32, hw=8, co=64, f=5, s=1, p=2, net="CIFAR10"),
)

SIAMESE_CONVS: tuple[ConvConfig, ...] = (
    ConvConfig("conv1", n=64, ci=1, hw=28, co=20, f=5, s=1, p=0, net="Siamese"),
    ConvConfig("conv2", n=64, ci=20, hw=12, co=50, f=5, s=1, p=0, net="Siamese"),
    ConvConfig("conv1_p", n=64, ci=1, hw=28, co=20, f=5, s=1, p=0, net="Siamese"),
    ConvConfig("conv2_p", n=64, ci=20, hw=12, co=50, f=5, s=1, p=0, net="Siamese"),
)

CAFFENET_CONVS: tuple[ConvConfig, ...] = (
    ConvConfig("conv1", n=256, ci=3, hw=227, co=96, f=11, s=4, p=0, net="CaffeNet"),
    ConvConfig("conv2", n=256, ci=96, hw=27, co=256, f=5, s=1, p=2, net="CaffeNet"),
    ConvConfig("conv3", n=256, ci=256, hw=13, co=384, f=3, s=1, p=1, net="CaffeNet"),
    ConvConfig("conv4", n=256, ci=384, hw=13, co=384, f=3, s=1, p=1, net="CaffeNet"),
    ConvConfig("conv5", n=256, ci=384, hw=13, co=256, f=3, s=1, p=1, net="CaffeNet"),
)

#: The six GoogLeNet convolution units the paper selects "for convenience"
#: out of the 59; the shapes identify them as the inception 5a/5b units.
GOOGLENET_CONVS: tuple[ConvConfig, ...] = (
    ConvConfig("conv_1", n=32, ci=160, hw=7, co=320, f=3, s=1, p=1, net="GoogLeNet"),
    ConvConfig("conv_2", n=32, ci=832, hw=7, co=32, f=1, s=1, p=0, net="GoogLeNet"),
    ConvConfig("conv_3", n=32, ci=832, hw=7, co=384, f=1, s=1, p=0, net="GoogLeNet"),
    ConvConfig("conv_4", n=32, ci=192, hw=7, co=384, f=3, s=1, p=1, net="GoogLeNet"),
    ConvConfig("conv_5", n=32, ci=832, hw=7, co=192, f=1, s=1, p=0, net="GoogLeNet"),
    ConvConfig("conv_6", n=32, ci=832, hw=7, co=48, f=1, s=1, p=0, net="GoogLeNet"),
)

#: Network name -> conv layer configs (Table 5 grouping).
TABLE5: dict[str, tuple[ConvConfig, ...]] = {
    "CIFAR10": CIFAR10_CONVS,
    "Siamese": SIAMESE_CONVS,
    "CaffeNet": CAFFENET_CONVS,
    "GoogLeNet": GOOGLENET_CONVS,
}

#: Evaluation order used throughout the paper's figures.
NETWORK_ORDER = ("CIFAR10", "Siamese", "CaffeNet", "GoogLeNet")
