"""GoogLeNet tail: the inception 5a/5b modules containing Table 5's units.

GoogLeNet has 59 convolutional units across 22 layers; the paper selects six
"for convenience".  Their shapes (832/160/192-channel inputs at 7x7 spatial
size) identify them as the inception_5a/5b region, so the runnable zoo net
is that tail: two full inception modules over a 7x7x832 feature map, global
average pooling, dropout and the classifier — every Table 5 unit appears
with its exact geometry:

* ``conv_1`` = 5a's 3x3 (160 -> 320),   * ``conv_4`` = 5b's 3x3 (192 -> 384)
* ``conv_2`` = 5a's pool-proj-sized 1x1 (832 -> 32; 5a's 5x5 reduce)
* ``conv_3`` = 5b's 1x1 branch (832 -> 384)
* ``conv_5`` = 5b's 3x3 reduce (832 -> 192)
* ``conv_6`` = 5b's 5x5 reduce (832 -> 48)
"""

from __future__ import annotations

from repro.nn.filler import gaussian_filler
from repro.nn.layer import LayerDef
from repro.nn.layers import (
    AccuracyLayer,
    ConcatLayer,
    ConvolutionLayer,
    DropoutLayer,
    InnerProductLayer,
    PoolingLayer,
    ReLULayer,
    SoftmaxWithLossLayer,
)
from repro.nn.net import Net


def _inception(name: str, bottom: str, n1x1: int, n3x3r: int, n3x3: int,
               n5x5r: int, n5x5: int, npool: int,
               table5_names: dict[str, str]) -> tuple[list[LayerDef], str]:
    """One inception module; ``table5_names`` renames selected units so the
    net's layers line up with Table 5's ``conv_1``..``conv_6`` labels."""
    g = gaussian_filler
    nm = lambda unit: table5_names.get(unit, f"{name}/{unit}")
    defs = [
        # 1x1 branch
        LayerDef(ConvolutionLayer(nm("1x1"), n1x1, 1, weight_filler=g(0.03)),
                 [bottom], [f"{name}/b1"]),
        LayerDef(ReLULayer(f"{name}/relu_1x1"), [f"{name}/b1"], [f"{name}/b1r"]),
        # 3x3 branch
        LayerDef(ConvolutionLayer(nm("3x3_reduce"), n3x3r, 1,
                                  weight_filler=g(0.09)),
                 [bottom], [f"{name}/b3r"]),
        LayerDef(ReLULayer(f"{name}/relu_3x3r"), [f"{name}/b3r"],
                 [f"{name}/b3rr"]),
        LayerDef(ConvolutionLayer(nm("3x3"), n3x3, 3, pad=1,
                                  weight_filler=g(0.03)),
                 [f"{name}/b3rr"], [f"{name}/b3"]),
        LayerDef(ReLULayer(f"{name}/relu_3x3"), [f"{name}/b3"], [f"{name}/b3out"]),
        # 5x5 branch
        LayerDef(ConvolutionLayer(nm("5x5_reduce"), n5x5r, 1,
                                  weight_filler=g(0.2)),
                 [bottom], [f"{name}/b5r"]),
        LayerDef(ReLULayer(f"{name}/relu_5x5r"), [f"{name}/b5r"],
                 [f"{name}/b5rr"]),
        LayerDef(ConvolutionLayer(f"{name}/5x5", n5x5, 5, pad=2,
                                  weight_filler=g(0.03)),
                 [f"{name}/b5rr"], [f"{name}/b5"]),
        LayerDef(ReLULayer(f"{name}/relu_5x5"), [f"{name}/b5"], [f"{name}/b5out"]),
        # pool branch
        LayerDef(PoolingLayer(f"{name}/pool", 3, 1, op="max", pad=1),
                 [bottom], [f"{name}/bp"]),
        LayerDef(ConvolutionLayer(f"{name}/pool_proj", npool, 1,
                                  weight_filler=g(0.1)),
                 [f"{name}/bp"], [f"{name}/bpp"]),
        LayerDef(ReLULayer(f"{name}/relu_pool"), [f"{name}/bpp"],
                 [f"{name}/bpout"]),
        LayerDef(ConcatLayer(f"{name}/output"),
                 [f"{name}/b1r", f"{name}/b3out", f"{name}/b5out",
                  f"{name}/bpout"],
                 [f"{name}/out"]),
    ]
    return defs, f"{name}/out"


def build_googlenet(batch: int = 32, classes: int = 1000, seed: int = 0,
                    with_accuracy: bool = False) -> Net:
    """Build the inception-5a/5b tail with the paper's batch size (N=32).

    The input is the 832-channel 7x7 feature map the full GoogLeNet stem
    produces at this depth.
    """
    # note: pooling at stride 1 keeps 7x7; 3x3 maxpool pads via ceil mode.
    defs_5a, out_5a = _inception(
        "inception_5a", "data",
        n1x1=256, n3x3r=160, n3x3=320, n5x5r=32, n5x5=128, npool=128,
        table5_names={"3x3": "conv_1", "5x5_reduce": "conv_2"},
    )
    defs_5b, out_5b = _inception(
        "inception_5b", out_5a,
        n1x1=384, n3x3r=192, n3x3=384, n5x5r=48, n5x5=128, npool=128,
        table5_names={"1x1": "conv_3", "3x3": "conv_4",
                      "3x3_reduce": "conv_5", "5x5_reduce": "conv_6"},
    )
    g = gaussian_filler
    defs = defs_5a + defs_5b + [
        LayerDef(PoolingLayer("pool5", 7, 1, op="ave"), [out_5b], ["pool5"]),
        LayerDef(DropoutLayer("drop", 0.4), ["pool5"], ["drop"]),
        LayerDef(InnerProductLayer("classifier", classes,
                                   weight_filler=g(0.01)),
                 ["drop"], ["classifier"]),
        LayerDef(SoftmaxWithLossLayer("loss"), ["classifier", "label"],
                 ["loss"]),
    ]
    if with_accuracy:
        defs.append(LayerDef(AccuracyLayer("accuracy"),
                             ["classifier", "label"], ["accuracy"]))
    return Net(
        "googlenet",
        defs,
        input_shapes={"data": (batch, 832, 7, 7), "label": (batch,)},
        seed=seed,
    )
