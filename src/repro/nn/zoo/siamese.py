"""The Siamese network (Caffe's ``mnist_siamese`` example).

Two LeNet-style branches with *shared* parameters process an image pair;
a contrastive loss pulls features of same-class pairs together.  The twin
branch layers (``conv1_p`` etc.) are listed in Table 5 as separate layers —
they run separately on the GPU — but share weight blobs through the net's
``param_key`` mechanism, exactly like Caffe's named params.

    branch: conv1(20,5) -> maxpool(2,2) -> conv2(50,5) -> maxpool(2,2)
            -> ip1(500) -> relu -> ip2(10) -> feat(2)
"""

from __future__ import annotations

from repro.nn.layer import LayerDef
from repro.nn.layers import (
    ContrastiveLossLayer,
    ConvolutionLayer,
    InnerProductLayer,
    PoolingLayer,
    ReLULayer,
)
from repro.nn.filler import gaussian_filler
from repro.nn.net import Net


def _branch(suffix: str) -> list[LayerDef]:
    """One LeNet branch; ``param_key`` ties the twins' weights together."""
    s = suffix
    g = gaussian_filler
    return [
        LayerDef(ConvolutionLayer(f"conv1{s}", 20, 5, weight_filler=g(0.01)),
                 [f"data{s}"], [f"conv1{s}"], param_key="conv1_w"),
        LayerDef(PoolingLayer(f"pool1{s}", 2, 2, op="max"),
                 [f"conv1{s}"], [f"pool1{s}"]),
        LayerDef(ConvolutionLayer(f"conv2{s}", 50, 5, weight_filler=g(0.01)),
                 [f"pool1{s}"], [f"conv2{s}"], param_key="conv2_w"),
        LayerDef(PoolingLayer(f"pool2{s}", 2, 2, op="max"),
                 [f"conv2{s}"], [f"pool2{s}"]),
        LayerDef(InnerProductLayer(f"ip1{s}", 500, weight_filler=g(0.01)),
                 [f"pool2{s}"], [f"ip1{s}"], param_key="ip1_w"),
        LayerDef(ReLULayer(f"relu1{s}"), [f"ip1{s}"], [f"relu1{s}"]),
        LayerDef(InnerProductLayer(f"ip2{s}", 10, weight_filler=g(0.01)),
                 [f"relu1{s}"], [f"ip2{s}"], param_key="ip2_w"),
        LayerDef(InnerProductLayer(f"feat{s}", 2, weight_filler=g(0.01)),
                 [f"ip2{s}"], [f"feat{s}"], param_key="feat_w"),
    ]


def build_siamese(batch: int = 64, seed: int = 0, margin: float = 1.0) -> Net:
    """Build the Siamese pair network with the paper's batch size (N=64)."""
    defs = _branch("") + _branch("_p") + [
        LayerDef(ContrastiveLossLayer("loss", margin=margin),
                 ["feat", "feat_p", "sim"], ["loss"]),
    ]
    return Net(
        "siamese",
        defs,
        input_shapes={
            "data": (batch, 1, 28, 28),
            "data_p": (batch, 1, 28, 28),
            "sim": (batch,),
        },
        seed=seed,
    )
