"""The paper's four evaluation networks and their Table 5 configurations.

``NETWORKS`` maps the paper's network names to builders and metadata so the
benchmark harness can iterate "for each network x for each GPU" the way the
evaluation section does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.nn.config import ConvConfig
from repro.nn.net import Net
from repro.nn.zoo.cifar10 import build_cifar10
from repro.nn.zoo.siamese import build_siamese
from repro.nn.zoo.caffenet import build_caffenet
from repro.nn.zoo.googlenet import build_googlenet
from repro.nn.zoo.lenet import build_lenet
from repro.nn.zoo.table5 import (
    TABLE5,
    NETWORK_ORDER,
    CIFAR10_CONVS,
    SIAMESE_CONVS,
    CAFFENET_CONVS,
    GOOGLENET_CONVS,
)


@dataclass(frozen=True)
class NetworkEntry:
    """One evaluation network: builder + Table 5 convs + dataset binding."""

    name: str
    build: Callable[..., Net]
    convs: tuple[ConvConfig, ...]
    batch: int
    dataset: str


NETWORKS: dict[str, NetworkEntry] = {
    "CIFAR10": NetworkEntry("CIFAR10", build_cifar10, CIFAR10_CONVS,
                            batch=100, dataset="cifar10"),
    "Siamese": NetworkEntry("Siamese", build_siamese, SIAMESE_CONVS,
                            batch=64, dataset="mnist"),
    "CaffeNet": NetworkEntry("CaffeNet", build_caffenet, CAFFENET_CONVS,
                             batch=256, dataset="imagenet"),
    "GoogLeNet": NetworkEntry("GoogLeNet", build_googlenet, GOOGLENET_CONVS,
                              batch=32, dataset="imagenet"),
}

__all__ = [
    "NetworkEntry",
    "NETWORKS",
    "NETWORK_ORDER",
    "TABLE5",
    "build_cifar10",
    "build_siamese",
    "build_caffenet",
    "build_googlenet",
    "build_lenet",
    "CIFAR10_CONVS",
    "SIAMESE_CONVS",
    "CAFFENET_CONVS",
    "GOOGLENET_CONVS",
]
