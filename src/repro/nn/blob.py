"""Blobs: named tensors with paired gradient storage, as in Caffe."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import NetworkError


class Blob:
    """A tensor (``data``) plus its gradient (``diff``), float32.

    Caffe's central data structure: layer inputs/outputs and parameters are
    all blobs.  ``diff`` is lazily allocated, zeroed by ``zero_diff`` at the
    start of each backward pass.
    """

    __slots__ = ("name", "data", "_diff")

    def __init__(self, shape: Sequence[int] | np.ndarray, name: str = "") -> None:
        if isinstance(shape, np.ndarray):
            self.data = np.ascontiguousarray(shape, dtype=np.float32)
        else:
            if any(int(d) <= 0 for d in shape):
                raise NetworkError(f"blob {name!r}: non-positive shape {shape}")
            self.data = np.zeros(tuple(int(d) for d in shape), dtype=np.float32)
        self.name = name
        self._diff: Optional[np.ndarray] = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def count(self) -> int:
        return self.data.size

    @property
    def diff(self) -> np.ndarray:
        if self._diff is None:
            self._diff = np.zeros_like(self.data)
        return self._diff

    @diff.setter
    def diff(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=np.float32)
        if value.shape != self.data.shape:
            raise NetworkError(
                f"blob {self.name!r}: diff shape {value.shape} != data "
                f"shape {self.data.shape}"
            )
        self._diff = value

    def zero_diff(self) -> None:
        if self._diff is not None:
            self._diff.fill(0.0)

    @property
    def nbytes(self) -> int:
        """Device bytes the blob (data + diff) would occupy."""
        return 2 * self.data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Blob({self.name!r}, shape={self.shape})"
