"""Base layer interface and net-level layer definitions.

The API follows Caffe: a layer is configured once against the shapes of its
bottom blobs (``setup``), then repeatedly runs ``forward`` and ``backward``.
Parameters are :class:`~repro.nn.blob.Blob` s owned by the layer; gradient
accumulation into ``param.diff`` happens inside ``backward``.

Layers may expose a *lowering* (:meth:`Layer.lower`) that describes the GPU
kernels their computation turns into; the integration layer uses it to meter
the simulated device.  Layers without a lowering are executed as a single
opaque batch kernel by the fallback in :mod:`repro.runtime.lowering`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.errors import NetworkError
from repro.nn.blob import Blob


class Layer:
    """Abstract layer. Subclasses implement setup/forward/backward."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.params: list[Blob] = []
        #: Per-parameter learning-rate multipliers (Caffe's ``lr_mult``);
        #: conventionally ``[1, 2]`` for weight/bias.
        self.lr_mult: list[float] = []
        #: Per-parameter weight-decay multipliers (Caffe's ``decay_mult``).
        self.decay_mult: list[float] = []
        self._setup_done = False

    # -- shape negotiation ------------------------------------------------
    def setup(self, bottom_shapes: Sequence[tuple[int, ...]],
              rng: np.random.Generator) -> list[tuple[int, ...]]:
        """Validate bottoms, create parameters, return top shapes."""
        if self._setup_done:
            raise NetworkError(f"layer {self.name!r} set up twice")
        tops = self._setup(list(bottom_shapes), rng)
        if len(self.lr_mult) != len(self.params):
            self.lr_mult = [1.0] * len(self.params)
        if len(self.decay_mult) != len(self.params):
            self.decay_mult = [1.0] * len(self.params)
        self._setup_done = True
        return tops

    def _setup(self, bottom_shapes: list[tuple[int, ...]],
               rng: np.random.Generator) -> list[tuple[int, ...]]:
        raise NotImplementedError

    # -- compute -----------------------------------------------------------
    def forward(self, bottoms: list[np.ndarray]) -> list[np.ndarray]:
        raise NotImplementedError

    def backward(
        self,
        top_diffs: list[np.ndarray],
        bottoms: list[np.ndarray],
        tops: list[np.ndarray],
    ) -> list[Optional[np.ndarray]]:
        """Return bottom gradients; accumulate parameter grads into diffs.

        A ``None`` entry means the layer does not propagate to that bottom
        (e.g. the label input of a loss layer).
        """
        raise NotImplementedError

    # -- properties ----------------------------------------------------------
    @property
    def has_params(self) -> bool:
        return bool(self.params)

    @property
    def is_loss(self) -> bool:
        """Loss layers terminate the backward pass with a seed gradient."""
        return False

    @property
    def phase_train_only(self) -> bool:
        """Layers skipped at test time (dropout)."""
        return False

    def zero_param_diffs(self) -> None:
        for p in self.params:
            p.zero_diff()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


@dataclass
class LayerDef:
    """Wiring of one layer into a net (Caffe prototxt's layer stanza)."""

    layer: Layer
    bottoms: list[str] = field(default_factory=list)
    tops: list[str] = field(default_factory=list)
    #: Optional parameter-sharing key: layers with the same non-empty
    #: ``param_key`` share parameter blobs (Caffe's named params — how the
    #: Siamese network ties its twin branches together).
    param_key: str = ""

    @property
    def name(self) -> str:
        return self.layer.name
