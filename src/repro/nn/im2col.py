"""Vectorized im2col / col2im.

The GPU path of Caffe's convolution lowers each sample to an ``im2col``
(patch extraction into a matrix) followed by an SGEMM; the NumPy framework
does the same math with stride tricks so that the numeric layers and the
lowered kernel chains compute literally the same operation.

``im2col`` output layout matches Caffe: ``(C*F_h*F_w, out_h*out_w)`` per
sample, channel-major.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NetworkError
from repro.nn.config import conv_out_dim


def im2col(x: np.ndarray, f: int, stride: int, pad: int) -> np.ndarray:
    """Patch matrix of a batch: ``(N, C*f*f, out_h*out_w)``.

    Parameters
    ----------
    x:
        Input batch, shape ``(N, C, H, W)``.
    f, stride, pad:
        Square filter size, stride and zero padding.
    """
    if x.ndim != 4:
        raise NetworkError(f"im2col expects NCHW, got shape {x.shape}")
    n, c, h, w = x.shape
    out_h = conv_out_dim(h, f, stride, pad)
    out_w = conv_out_dim(w, f, stride, pad)
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    s = x.strides
    # windows: (N, C, out_h, out_w, f, f)
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, f, f),
        strides=(s[0], s[1], s[2] * stride, s[3] * stride, s[2], s[3]),
        writeable=False,
    )
    # -> (N, C, f, f, out_h, out_w) -> (N, C*f*f, out_h*out_w)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * f * f, out_h * out_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray, shape: tuple[int, int, int, int], f: int, stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add patches back to image space.

    ``cols`` has shape ``(N, C*f*f, out_h*out_w)``; returns ``(N, C, H, W)``.
    """
    n, c, h, w = shape
    out_h = conv_out_dim(h, f, stride, pad)
    out_w = conv_out_dim(w, f, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    img = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, f, f, out_h, out_w)
    for ky in range(f):
        y_end = ky + stride * out_h
        for kx in range(f):
            x_end = kx + stride * out_w
            img[:, :, ky:y_end:stride, kx:x_end:stride] += cols6[:, :, ky, kx]
    if pad:
        img = img[:, :, pad:pad + h, pad:pad + w]
    return img
