"""Caffe-style training orchestration: test intervals, snapshots, display.

Caffe's solver prototxt drives a loop of train steps punctuated by test
phases (``test_interval`` / ``test_iter``), periodic snapshots and display
lines.  :class:`Trainer` reproduces that loop over this package's
:class:`~repro.nn.solver.Solver` and data loaders, so examples and
experiments read like Caffe training logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.data.loader import BatchLoader
from repro.errors import ReproError
from repro.nn.solver import Solver


@dataclass
class TrainEvent:
    """One display/test record emitted during training."""

    iteration: int
    train_loss: float
    test_accuracy: Optional[float] = None
    test_loss: Optional[float] = None


class Trainer:
    """Run a solver against train/test loaders, Caffe-style.

    Parameters
    ----------
    solver:
        The SGD driver (owns the net).
    train_loader / test_loader:
        Batch sources.  The test loader is optional; without it test
        phases are skipped.
    test_interval / test_iter:
        Every ``test_interval`` training iterations, average the accuracy
        blob over ``test_iter`` test batches (Caffe's semantics).
    snapshot_interval:
        Take a solver snapshot every N iterations (kept in memory;
        persist with your own serializer if needed).
    accuracy_blob / loss_blob:
        Names of the metric blobs in the net.
    """

    def __init__(
        self,
        solver: Solver,
        train_loader: BatchLoader,
        test_loader: Optional[BatchLoader] = None,
        test_interval: int = 0,
        test_iter: int = 1,
        snapshot_interval: int = 0,
        accuracy_blob: str = "accuracy",
        loss_blob: str = "loss",
        display: Optional[Callable[[TrainEvent], None]] = None,
    ) -> None:
        if test_interval and test_loader is None:
            raise ReproError("test_interval set but no test loader given")
        if test_interval < 0 or test_iter < 1 or snapshot_interval < 0:
            raise ReproError("invalid trainer intervals")
        self.solver = solver
        self.train_loader = train_loader
        self.test_loader = test_loader
        self.test_interval = test_interval
        self.test_iter = test_iter
        self.snapshot_interval = snapshot_interval
        self.accuracy_blob = accuracy_blob
        self.loss_blob = loss_blob
        self.display = display
        self.events: list[TrainEvent] = []
        self.snapshots: list[dict] = []

    # ------------------------------------------------------------------
    def test_phase(self) -> tuple[float, float]:
        """Average (accuracy, loss) over ``test_iter`` test batches."""
        assert self.test_loader is not None
        net = self.solver.net
        net.set_mode(False)
        try:
            acc = loss = 0.0
            for _ in range(self.test_iter):
                blobs = net.forward(self.test_loader.next_batch())
                acc += float(blobs[self.accuracy_blob][0])
                loss += float(blobs[self.loss_blob][0])
            return acc / self.test_iter, loss / self.test_iter
        finally:
            net.set_mode(True)

    def run(self, iterations: int) -> list[TrainEvent]:
        """Train for ``iterations`` steps; returns the emitted events."""
        out: list[TrainEvent] = []
        for _ in range(iterations):
            loss = self.solver.step(self.train_loader.next_batch())
            it = self.solver.iteration
            event: Optional[TrainEvent] = None
            if self.test_interval and it % self.test_interval == 0:
                acc, test_loss = self.test_phase()
                event = TrainEvent(it, loss, test_accuracy=acc,
                                   test_loss=test_loss)
            if self.snapshot_interval and it % self.snapshot_interval == 0:
                self.snapshots.append(self.solver.snapshot())
                if event is None:
                    event = TrainEvent(it, loss)
            if event is not None:
                self.events.append(event)
                out.append(event)
                if self.display is not None:
                    self.display(event)
        return out

    # ------------------------------------------------------------------
    @property
    def best_accuracy(self) -> float:
        accs = [e.test_accuracy for e in self.events
                if e.test_accuracy is not None]
        if not accs:
            raise ReproError("no test phases have run")
        return max(accs)
