"""SGD solver with Caffe's learning-rate policies and momentum update.

The update rule is Caffe's::

    v = momentum * v + local_lr * (grad + weight_decay * decay_mult * w)
    w = w - v

with ``local_lr = lr(iter) * lr_mult``.  Learning-rate policies: ``fixed``,
``step``, ``inv`` and ``exp`` (the ones the paper's networks use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import NetworkError
from repro.nn.net import Net


@dataclass(frozen=True)
class SolverConfig:
    """Hyperparameters, named as in a Caffe solver prototxt."""

    base_lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 0.0005
    lr_policy: str = "fixed"
    gamma: float = 0.1
    power: float = 0.75
    stepsize: int = 1000

    def learning_rate(self, iteration: int) -> float:
        if self.lr_policy == "fixed":
            return self.base_lr
        if self.lr_policy == "step":
            return self.base_lr * self.gamma ** (iteration // self.stepsize)
        if self.lr_policy == "inv":
            return self.base_lr * (1.0 + self.gamma * iteration) ** (-self.power)
        if self.lr_policy == "exp":
            return self.base_lr * self.gamma ** iteration
        raise NetworkError(f"unknown lr_policy {self.lr_policy!r}")


class Solver:
    """Batch SGD driver over a :class:`~repro.nn.net.Net`.

    ``step`` runs one forward/backward/update iteration on a provided batch.
    The solver never touches scheduling — whether the lowered kernels ran on
    one stream or thirty-two, the numeric gradients are identical, which is
    the convergence-invariance property Section 3.3.1 proves.
    """

    def __init__(self, net: Net, config: Optional[SolverConfig] = None) -> None:
        self.net = net
        self.config = config or SolverConfig()
        self.iteration = 0
        self._momentum: dict[int, np.ndarray] = {}
        self.loss_history: list[float] = []

    def step(self, inputs: dict[str, np.ndarray]) -> float:
        """One training iteration; returns the batch loss."""
        cfg = self.config
        self.net.forward(inputs)
        self.net.backward()
        lr = cfg.learning_rate(self.iteration)
        for blob, lr_mult, decay_mult in self.net.unique_params():
            grad = blob.diff + cfg.weight_decay * decay_mult * blob.data
            v = self._momentum.get(id(blob))
            if v is None:
                v = np.zeros_like(blob.data)
                self._momentum[id(blob)] = v
            v *= cfg.momentum
            v += lr * lr_mult * grad
            blob.data -= v
        loss = self.net.loss_value()
        self.loss_history.append(loss)
        self.iteration += 1
        return loss

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Checkpoint: parameters + momentum + iteration (Caffe snapshots).

        Momentum buffers are keyed by parameter blob *name* so the snapshot
        can be restored into a freshly built identical network.
        """
        by_id = {id(p): p.name for p, _, _ in self.net.unique_params()}
        return {
            "iteration": self.iteration,
            "params": self.net.state_dict(),
            "momentum": {
                by_id[key]: v.copy() for key, v in self._momentum.items()
            },
            "loss_history": list(self.loss_history),
        }

    def restore(self, snapshot: dict) -> None:
        """Resume from :meth:`snapshot`; continues bit-exactly."""
        self.net.load_state_dict(snapshot["params"])
        self.iteration = int(snapshot["iteration"])
        self.loss_history = list(snapshot["loss_history"])
        by_name = {p.name: p for p, _, _ in self.net.unique_params()}
        self._momentum = {}
        for name, v in snapshot["momentum"].items():
            if name not in by_name:
                raise NetworkError(f"momentum for unknown param {name!r}")
            self._momentum[id(by_name[name])] = v.copy()

    def evaluate(self, inputs: dict[str, np.ndarray],
                 metric_blob: str) -> float:
        """Forward in test mode and read a scalar metric blob (accuracy)."""
        self.net.set_mode(False)
        try:
            blobs = self.net.forward(inputs)
            return float(blobs[metric_blob][0])
        finally:
            self.net.set_mode(True)
