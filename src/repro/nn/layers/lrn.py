"""Cross-channel local response normalization (CaffeNet / GoogLeNet).

Caffe's ACROSS_CHANNELS mode:

    scale_c = k + (alpha / size) * sum_{c' in window(c)} x_{c'}^2
    y_c     = x_c * scale_c^{-beta}

with a channel window of ``size`` centred on ``c``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import Layer


class LRNLayer(Layer):
    def __init__(self, name: str, local_size: int = 5, alpha: float = 1e-4,
                 beta: float = 0.75, k: float = 1.0) -> None:
        super().__init__(name)
        if local_size % 2 == 0:
            raise NetworkError(f"{self.name}: LRN local_size must be odd")
        self.size = int(local_size)
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.k = float(k)
        self._scale: Optional[np.ndarray] = None

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 1 or len(bottom_shapes[0]) != 4:
            raise NetworkError(f"{self.name}: LRN takes one NCHW bottom")
        return [tuple(bottom_shapes[0])]

    def _window_sum(self, arr: np.ndarray) -> np.ndarray:
        """Sliding-window sum over the channel axis via a cumulative sum."""
        c = arr.shape[1]
        half = self.size // 2
        cs = np.concatenate(
            [np.zeros_like(arr[:, :1]), np.cumsum(arr, axis=1)], axis=1
        )
        hi = np.minimum(np.arange(c) + half + 1, c)
        lo = np.maximum(np.arange(c) - half, 0)
        return cs[:, hi] - cs[:, lo]

    def forward(self, bottoms):
        (x,) = bottoms
        sq = x * x
        scale = self.k + (self.alpha / self.size) * self._window_sum(sq)
        self._scale = scale
        return [(x * np.power(scale, -self.beta)).astype(np.float32)]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (x,) = bottoms
        (y,) = tops
        scale = self._scale
        assert scale is not None
        # dx_c = dout_c * scale_c^{-beta}
        #        - (2 alpha beta / size) * x_c * sum_{c' in win} dout_c' y_c' / scale_c'
        ratio = dout * y / scale
        acc = self._window_sum(ratio)
        dx = dout * np.power(scale, -self.beta) \
            - (2.0 * self.alpha * self.beta / self.size) * x * acc
        return [dx.astype(np.float32)]
