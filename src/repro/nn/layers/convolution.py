"""Convolution layer: Caffe's im2col + GEMM formulation.

The forward path is (per sample) exactly the three kernels of the paper's
workflow example: ``im2col`` builds the ``(C_i*F*F, H'*W')`` patch matrix,
``sgemm`` multiplies it with the ``(C_o, C_i*F*F)`` weights, and the small
``gemmk`` kernel broadcasts the bias.  The NumPy implementation batches the
same math; the lowering (:mod:`repro.runtime.lowering`) emits the per-sample
kernel chains that GLP4NN parallelizes at batch level.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NetworkError
from repro.nn.blob import Blob
from repro.nn.config import ConvConfig, conv_out_dim
from repro.nn.filler import Filler, constant_filler, xavier_filler
from repro.nn.im2col import col2im, im2col
from repro.nn.layer import Layer


class ConvolutionLayer(Layer):
    """2-D convolution with square filters (all of Table 5 is square)."""

    def __init__(
        self,
        name: str,
        num_output: int,
        kernel_size: int,
        stride: int = 1,
        pad: int = 0,
        group: int = 1,
        weight_filler: Optional[Filler] = None,
        bias_filler: Optional[Filler] = None,
    ) -> None:
        super().__init__(name)
        self.co = int(num_output)
        self.f = int(kernel_size)
        self.s = int(stride)
        self.p = int(pad)
        self.group = int(group)
        if self.group < 1 or self.co % self.group:
            raise NetworkError(
                f"{name}: num_output {num_output} not divisible by "
                f"group {group}"
            )
        self._weight_filler = weight_filler or xavier_filler()
        self._bias_filler = bias_filler or constant_filler(0.0)
        self._cols: Optional[np.ndarray] = None
        self.config: Optional[ConvConfig] = None

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 1:
            raise NetworkError(f"{self.name}: convolution takes one bottom")
        n, ci, h, w = bottom_shapes[0]
        if h != w:
            raise NetworkError(f"{self.name}: only square inputs supported")
        if ci % self.group:
            raise NetworkError(
                f"{self.name}: input channels {ci} not divisible by "
                f"group {self.group}"
            )
        out_hw = conv_out_dim(h, self.f, self.s, self.p)
        k = (ci // self.group) * self.f * self.f
        weight = Blob((self.co, k), name=f"{self.name}/weight")
        bias = Blob((self.co,), name=f"{self.name}/bias")
        self._weight_filler(weight.data, rng)
        self._bias_filler(bias.data, rng)
        self.params = [weight, bias]
        self.lr_mult = [1.0, 2.0]
        self.decay_mult = [1.0, 0.0]
        self.config = ConvConfig(
            name=self.name, n=n, ci=ci, hw=h, co=self.co, f=self.f,
            s=self.s, p=self.p, g=self.group,
        )
        return [(n, self.co, out_hw, out_hw)]

    def forward(self, bottoms):
        (x,) = bottoms
        cfg = self.config
        assert cfg is not None
        cols = im2col(x, self.f, self.s, self.p)     # (N, ci*f*f, P)
        self._cols = cols
        weight, bias = self.params
        n = x.shape[0]
        if self.group == 1:
            out = np.matmul(weight.data, cols)       # (N, co, P)
        else:
            g = self.group
            k = cfg.k_gemm
            co_g = cfg.co_gemm
            parts = []
            for gi in range(g):
                w_g = weight.data[gi * co_g:(gi + 1) * co_g]
                c_g = cols[:, gi * k:(gi + 1) * k]
                parts.append(np.matmul(w_g, c_g))
            out = np.concatenate(parts, axis=1)
        out += bias.data[None, :, None]
        return [out.reshape(n, self.co, cfg.out_hw, cfg.out_hw)]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (x,) = bottoms
        cfg = self.config
        assert cfg is not None and self._cols is not None
        n = x.shape[0]
        dout2 = dout.reshape(n, self.co, -1)               # (N, co, P)
        weight, bias = self.params
        bias.diff += dout2.sum(axis=(0, 2))
        if self.group == 1:
            # dW = sum_n dout_n @ cols_n^T
            weight.diff += np.einsum("ncp,nkp->ck", dout2, self._cols,
                                     optimize=True)
            dcols = np.matmul(weight.data.T, dout2)        # (N, K, P)
        else:
            g = self.group
            k = cfg.k_gemm
            co_g = cfg.co_gemm
            dcols = np.empty_like(self._cols)
            for gi in range(g):
                d_g = dout2[:, gi * co_g:(gi + 1) * co_g]
                c_g = self._cols[:, gi * k:(gi + 1) * k]
                weight.diff[gi * co_g:(gi + 1) * co_g] += np.einsum(
                    "ncp,nkp->ck", d_g, c_g, optimize=True)
                w_g = weight.data[gi * co_g:(gi + 1) * co_g]
                dcols[:, gi * k:(gi + 1) * k] = np.matmul(w_g.T, d_g)
        dx = col2im(dcols, x.shape, self.f, self.s, self.p)
        return [dx.astype(np.float32)]
