"""Fully-connected (inner product) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NetworkError
from repro.nn.blob import Blob
from repro.nn.filler import Filler, constant_filler, xavier_filler
from repro.nn.layer import Layer


class InnerProductLayer(Layer):
    """``y = x @ W^T + b`` over the flattened trailing dimensions."""

    def __init__(
        self,
        name: str,
        num_output: int,
        weight_filler: Optional[Filler] = None,
        bias_filler: Optional[Filler] = None,
    ) -> None:
        super().__init__(name)
        self.num_output = int(num_output)
        self._weight_filler = weight_filler or xavier_filler()
        self._bias_filler = bias_filler or constant_filler(0.0)
        self._in_features = 0

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 1:
            raise NetworkError(f"{self.name}: inner product takes one bottom")
        shape = bottom_shapes[0]
        n = shape[0]
        self._in_features = int(np.prod(shape[1:]))
        weight = Blob((self.num_output, self._in_features),
                      name=f"{self.name}/weight")
        bias = Blob((self.num_output,), name=f"{self.name}/bias")
        self._weight_filler(weight.data, rng)
        self._bias_filler(bias.data, rng)
        self.params = [weight, bias]
        self.lr_mult = [1.0, 2.0]
        self.decay_mult = [1.0, 0.0]
        return [(n, self.num_output)]

    def forward(self, bottoms):
        (x,) = bottoms
        flat = x.reshape(x.shape[0], -1)
        weight, bias = self.params
        return [flat @ weight.data.T + bias.data[None, :]]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (x,) = bottoms
        flat = x.reshape(x.shape[0], -1)
        weight, bias = self.params
        weight.diff += dout.T @ flat
        bias.diff += dout.sum(axis=0)
        dx = dout @ weight.data
        return [dx.reshape(x.shape).astype(np.float32)]
