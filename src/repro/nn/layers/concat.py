"""Channel-axis concatenation (GoogLeNet inception outputs)."""

from __future__ import annotations

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import Layer


class ConcatLayer(Layer):
    """Concatenate bottoms along ``axis`` (default: channels)."""

    def __init__(self, name: str, axis: int = 1) -> None:
        super().__init__(name)
        self.axis = int(axis)
        self._splits: list[int] = []

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) < 1:
            raise NetworkError(f"{self.name}: concat needs at least one bottom")
        ref = list(bottom_shapes[0])
        total = 0
        self._splits = []
        for shape in bottom_shapes:
            s = list(shape)
            if len(s) != len(ref):
                raise NetworkError(f"{self.name}: rank mismatch in concat")
            for d in range(len(ref)):
                if d != self.axis and s[d] != ref[d]:
                    raise NetworkError(
                        f"{self.name}: non-concat dim {d} differs "
                        f"({s[d]} vs {ref[d]})"
                    )
            total += s[self.axis]
            self._splits.append(s[self.axis])
        ref[self.axis] = total
        return [tuple(ref)]

    def forward(self, bottoms):
        return [np.concatenate(bottoms, axis=self.axis)]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        outs = []
        offset = 0
        for width in self._splits:
            idx = [slice(None)] * dout.ndim
            idx[self.axis] = slice(offset, offset + width)
            outs.append(np.ascontiguousarray(dout[tuple(idx)]))
            offset += width
        return outs
