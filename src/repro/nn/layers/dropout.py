"""Dropout (inverted scaling, as in Caffe)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import Layer


class DropoutLayer(Layer):
    """Zeroes activations with probability ``ratio`` during training.

    The mask generator is owned by the layer and seeded at setup from the
    net's generator, so training runs are reproducible.
    """

    def __init__(self, name: str, ratio: float = 0.5) -> None:
        super().__init__(name)
        if not 0.0 <= ratio < 1.0:
            raise NetworkError(f"{self.name}: dropout ratio must be in [0, 1)")
        self.ratio = float(ratio)
        self.train_mode = True
        self._mask: Optional[np.ndarray] = None
        self._rng: Optional[np.random.Generator] = None

    @property
    def phase_train_only(self) -> bool:
        return True

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 1:
            raise NetworkError(f"{self.name}: dropout takes one bottom")
        self._rng = np.random.default_rng(rng.integers(2**63))
        return [tuple(bottom_shapes[0])]

    def forward(self, bottoms):
        (x,) = bottoms
        if not self.train_mode or self.ratio == 0.0:
            self._mask = None
            return [x.copy()]
        assert self._rng is not None
        keep = 1.0 - self.ratio
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        self._mask = mask
        return [x * mask]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        if self._mask is None:
            return [dout.copy()]
        return [dout * self._mask]
