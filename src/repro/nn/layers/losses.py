"""Loss layers: softmax-with-loss and contrastive loss.

Loss layers return a scalar (shape ``(1,)``) top and seed the backward pass.
Bottom 1 is always the label/similarity input, which receives no gradient
(``None``), matching Caffe's ``propagate_down`` behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import Layer


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row softmax."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


class SoftmaxWithLossLayer(Layer):
    """Multinomial logistic loss over softmax probabilities."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._prob: Optional[np.ndarray] = None

    @property
    def is_loss(self) -> bool:
        return True

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 2:
            raise NetworkError(f"{self.name}: needs (logits, labels) bottoms")
        n = bottom_shapes[0][0]
        if bottom_shapes[1][0] != n:
            raise NetworkError(f"{self.name}: batch size mismatch with labels")
        return [(1,)]

    def forward(self, bottoms):
        logits, labels = bottoms
        flat = logits.reshape(logits.shape[0], -1)
        prob = softmax(flat)
        self._prob = prob
        idx = labels.astype(np.int64).ravel()
        picked = prob[np.arange(flat.shape[0]), idx]
        loss = -np.mean(np.log(np.maximum(picked, 1e-30)))
        return [np.array([loss], dtype=np.float32)]

    def backward(self, top_diffs, bottoms, tops):
        (dloss,) = top_diffs
        logits, labels = bottoms
        assert self._prob is not None
        n = logits.shape[0]
        grad = self._prob.copy()
        idx = labels.astype(np.int64).ravel()
        grad[np.arange(n), idx] -= 1.0
        grad *= float(dloss[0]) / n
        return [grad.reshape(logits.shape).astype(np.float32), None]


class ContrastiveLossLayer(Layer):
    """Hadsell-Chopra-LeCun contrastive loss (Caffe's Siamese example).

    Bottoms: two feature batches and a similarity label ``y`` (1 = similar).

        L = 1/(2N) * sum_n [ y_n d_n^2 + (1-y_n) max(margin - d_n, 0)^2 ]
    """

    def __init__(self, name: str, margin: float = 1.0) -> None:
        super().__init__(name)
        self.margin = float(margin)
        self._diff: Optional[np.ndarray] = None
        self._dist: Optional[np.ndarray] = None

    @property
    def is_loss(self) -> bool:
        return True

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 3:
            raise NetworkError(
                f"{self.name}: needs (feat_a, feat_b, similarity) bottoms"
            )
        if bottom_shapes[0] != bottom_shapes[1]:
            raise NetworkError(f"{self.name}: feature shape mismatch")
        return [(1,)]

    def forward(self, bottoms):
        a, b, y = bottoms
        diff = (a - b).reshape(a.shape[0], -1)
        dist = np.sqrt(np.maximum((diff * diff).sum(axis=1), 1e-12))
        self._diff, self._dist = diff, dist
        y = y.ravel().astype(np.float32)
        sim_term = y * dist * dist
        gap = np.maximum(self.margin - dist, 0.0)
        dis_term = (1.0 - y) * gap * gap
        loss = (sim_term + dis_term).mean() / 2.0
        return [np.array([loss], dtype=np.float32)]

    def backward(self, top_diffs, bottoms, tops):
        (dloss,) = top_diffs
        a, b, y = bottoms
        assert self._diff is not None and self._dist is not None
        n = a.shape[0]
        y = y.ravel().astype(np.float32)
        dist = self._dist
        # d/d(diff): similar pairs pull together, dissimilar push apart
        # inside the margin.
        sim_grad = y[:, None] * self._diff
        gap = np.maximum(self.margin - dist, 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            unit = np.where(dist[:, None] > 0, self._diff / dist[:, None], 0.0)
        dis_grad = -((1.0 - y) * gap)[:, None] * unit
        grad = (sim_grad + dis_grad) * (float(dloss[0]) / n)
        da = grad.reshape(a.shape).astype(np.float32)
        return [da, -da, None]
