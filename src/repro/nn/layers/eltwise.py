"""Elementwise combination and reshape layers (Caffe's Eltwise / Flatten).

Not needed by the paper's four networks, but part of Caffe's standard layer
catalogue (residual architectures are Eltwise-SUM joins), so the framework
ships them — and they exercise the net's multi-bottom gradient plumbing.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import Layer


class EltwiseLayer(Layer):
    """Combine equal-shaped bottoms elementwise: ``sum``, ``prod`` or ``max``.

    ``coeffs`` scales each bottom in SUM mode (Caffe's ``coeff`` repeated
    field); defaults to all ones.
    """

    def __init__(self, name: str, operation: str = "sum",
                 coeffs: Optional[Sequence[float]] = None) -> None:
        super().__init__(name)
        if operation not in ("sum", "prod", "max"):
            raise NetworkError(f"{name}: unknown eltwise op {operation!r}")
        if coeffs is not None and operation != "sum":
            raise NetworkError(f"{name}: coeffs only apply to SUM")
        self.operation = operation
        self.coeffs = list(coeffs) if coeffs is not None else None
        self._argmax: Optional[np.ndarray] = None

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) < 2:
            raise NetworkError(f"{self.name}: eltwise needs >= 2 bottoms")
        ref = tuple(bottom_shapes[0])
        for s in bottom_shapes[1:]:
            if tuple(s) != ref:
                raise NetworkError(
                    f"{self.name}: bottom shapes differ ({s} vs {ref})"
                )
        if self.coeffs is not None and len(self.coeffs) != len(bottom_shapes):
            raise NetworkError(f"{self.name}: need one coeff per bottom")
        if self.coeffs is None and self.operation == "sum":
            self.coeffs = [1.0] * len(bottom_shapes)
        return [ref]

    def forward(self, bottoms):
        if self.operation == "sum":
            out = np.zeros_like(bottoms[0])
            for c, b in zip(self.coeffs, bottoms):
                out += np.float32(c) * b
            return [out]
        if self.operation == "prod":
            out = bottoms[0].copy()
            for b in bottoms[1:]:
                out *= b
            return [out]
        stacked = np.stack(bottoms)
        self._argmax = stacked.argmax(axis=0)
        return [stacked.max(axis=0)]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        if self.operation == "sum":
            return [np.float32(c) * dout for c in self.coeffs]
        if self.operation == "prod":
            (y,) = tops
            grads = []
            for i, b in enumerate(bottoms):
                with np.errstate(divide="ignore", invalid="ignore"):
                    others = np.where(b != 0, y / b, 0.0)
                # recompute exactly when the shortcut divides by zero
                if np.any(b == 0):
                    others = np.ones_like(b)
                    for j, o in enumerate(bottoms):
                        if j != i:
                            others *= o
                grads.append((dout * others).astype(np.float32))
            return grads
        assert self._argmax is not None
        return [
            np.where(self._argmax == i, dout, 0.0).astype(np.float32)
            for i in range(len(bottoms))
        ]


class FlattenLayer(Layer):
    """Flatten trailing dimensions into one (Caffe's Flatten)."""

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 1:
            raise NetworkError(f"{self.name}: flatten takes one bottom")
        shape = bottom_shapes[0]
        return [(shape[0], int(math.prod(shape[1:])))]

    def forward(self, bottoms):
        (x,) = bottoms
        return [np.ascontiguousarray(x.reshape(x.shape[0], -1))]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (x,) = bottoms
        return [dout.reshape(x.shape)]
