"""Max / average pooling with Caffe's ceil-mode output size and padding."""

from __future__ import annotations

from itertools import product
from typing import Optional

import numpy as np

from repro.errors import NetworkError
from repro.nn.config import PoolConfig, pool_out_dim
from repro.nn.layer import Layer

_NEG_INF = np.float32(-np.inf)


class PoolingLayer(Layer):
    """Square-window pooling. ``op`` is ``"max"`` or ``"ave"``.

    Caffe sizes the output with a ceiling division, so the last window may
    hang over the (padded) input edge; max pooling treats out-of-bounds
    positions as ``-inf`` and average pooling divides by the number of
    *valid* (in-bounds) elements.
    """

    def __init__(self, name: str, kernel_size: int, stride: int,
                 op: str = "max", pad: int = 0) -> None:
        super().__init__(name)
        if op not in ("max", "ave"):
            raise NetworkError(f"{self.name}: unknown pooling op {op!r}")
        if pad < 0 or pad >= kernel_size:
            raise NetworkError(f"{self.name}: invalid pooling pad {pad}")
        self.f = int(kernel_size)
        self.s = int(stride)
        self.p = int(pad)
        self.op = op
        self._argmax: Optional[np.ndarray] = None
        self._valid_counts: Optional[np.ndarray] = None
        self.config: Optional[PoolConfig] = None

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 1:
            raise NetworkError(f"{self.name}: pooling takes one bottom")
        n, c, h, w = bottom_shapes[0]
        if h != w:
            raise NetworkError(f"{self.name}: only square inputs supported")
        out = pool_out_dim(h, self.f, self.s, self.p)
        self.config = PoolConfig(name=self.name, n=n, c=c, hw=h, f=self.f,
                                 s=self.s, op=self.op)
        self._out = out
        return [(n, c, out, out)]

    # ------------------------------------------------------------------
    def _geometry(self) -> tuple[int, int, int]:
        """(output size, leading pad, trailing pad incl. ceil overhang)."""
        cfg = self.config
        assert cfg is not None
        oh = self._out
        need = (oh - 1) * self.s + self.f
        trail = max(0, need - cfg.hw - self.p)
        return oh, self.p, trail

    def _pad_input(self, x: np.ndarray, fill: float) -> np.ndarray:
        _, lead, trail = self._geometry()
        if lead or trail:
            return np.pad(x, ((0, 0), (0, 0), (lead, trail), (lead, trail)),
                          mode="constant", constant_values=fill)
        return x

    def _offset_validity(self, ky: int, kx: int, oh: int) -> np.ndarray:
        """Which output positions see an in-bounds input at offset (ky, kx)."""
        cfg = self.config
        assert cfg is not None
        h = cfg.hw
        ys = ky + self.s * np.arange(oh) - self.p
        xs = kx + self.s * np.arange(oh) - self.p
        return ((ys[:, None] >= 0) & (ys[:, None] < h)
                & (xs[None, :] >= 0) & (xs[None, :] < h))

    # ------------------------------------------------------------------
    def forward(self, bottoms):
        (x,) = bottoms
        oh, _, _ = self._geometry()
        if self.op == "max":
            xp = self._pad_input(x, -np.inf)
            best = np.full(x.shape[:2] + (oh, oh), _NEG_INF, dtype=np.float32)
            argmax = np.zeros(best.shape, dtype=np.int16)
            for idx, (ky, kx) in enumerate(product(range(self.f), repeat=2)):
                win = xp[:, :, ky:ky + self.s * oh:self.s,
                         kx:kx + self.s * oh:self.s]
                better = win > best
                np.copyto(best, win, where=better)
                argmax[better] = idx
            self._argmax = argmax
            return [best]
        # average
        xp = self._pad_input(x, 0.0)
        acc = np.zeros(x.shape[:2] + (oh, oh), dtype=np.float32)
        counts = np.zeros((oh, oh), dtype=np.float32)
        for ky, kx in product(range(self.f), repeat=2):
            acc += xp[:, :, ky:ky + self.s * oh:self.s,
                      kx:kx + self.s * oh:self.s]
            counts += self._offset_validity(ky, kx, oh)
        self._valid_counts = counts
        return [acc / counts[None, None]]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (x,) = bottoms
        cfg = self.config
        assert cfg is not None
        oh, lead, trail = self._geometry()
        hp = cfg.hw + lead + trail
        dx_p = np.zeros((x.shape[0], x.shape[1], hp, hp), dtype=np.float32)
        if self.op == "max":
            assert self._argmax is not None
            for idx, (ky, kx) in enumerate(product(range(self.f), repeat=2)):
                mask = self._argmax == idx
                view = dx_p[:, :, ky:ky + self.s * oh:self.s,
                            kx:kx + self.s * oh:self.s]
                view += np.where(mask, dout, 0.0)
        else:
            assert self._valid_counts is not None
            scaled = dout / self._valid_counts[None, None]
            for ky, kx in product(range(self.f), repeat=2):
                valid = self._offset_validity(ky, kx, oh)
                view = dx_p[:, :, ky:ky + self.s * oh:self.s,
                            kx:kx + self.s * oh:self.s]
                view += np.where(valid[None, None], scaled, 0.0)
        dx = dx_p[:, :, lead:lead + cfg.hw, lead:lead + cfg.hw]
        return [np.ascontiguousarray(dx)]
