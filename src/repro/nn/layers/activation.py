"""Elementwise activation layers (in-place-safe, like Caffe's)."""

from __future__ import annotations

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import Layer


class _Elementwise(Layer):
    """Shared plumbing for one-bottom/one-top elementwise layers."""

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 1:
            raise NetworkError(f"{self.name}: takes exactly one bottom")
        return [tuple(bottom_shapes[0])]


class ReLULayer(_Elementwise):
    """Rectified linear unit, with Caffe's optional leaky ``negative_slope``."""

    def __init__(self, name: str, negative_slope: float = 0.0) -> None:
        super().__init__(name)
        self.negative_slope = float(negative_slope)

    def forward(self, bottoms):
        (x,) = bottoms
        if self.negative_slope:
            return [np.where(x > 0, x, self.negative_slope * x).astype(np.float32)]
        return [np.maximum(x, 0.0)]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (x,) = bottoms
        grad = np.where(x > 0, 1.0, self.negative_slope).astype(np.float32)
        return [dout * grad]


class SigmoidLayer(_Elementwise):
    """Logistic sigmoid."""

    def forward(self, bottoms):
        (x,) = bottoms
        # numerically stable split by sign
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        return [out]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (y,) = tops
        return [dout * y * (1.0 - y)]


class TanHLayer(_Elementwise):
    """Hyperbolic tangent."""

    def forward(self, bottoms):
        (x,) = bottoms
        return [np.tanh(x)]

    def backward(self, top_diffs, bottoms, tops):
        (dout,) = top_diffs
        (y,) = tops
        return [dout * (1.0 - y * y)]
