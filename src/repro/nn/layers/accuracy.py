"""Top-k classification accuracy (evaluation-only layer)."""

from __future__ import annotations

import numpy as np

from repro.errors import NetworkError
from repro.nn.layer import Layer


class AccuracyLayer(Layer):
    """Fraction of samples whose label is in the top-``k`` predictions."""

    def __init__(self, name: str, top_k: int = 1) -> None:
        super().__init__(name)
        self.top_k = int(top_k)

    def _setup(self, bottom_shapes, rng):
        if len(bottom_shapes) != 2:
            raise NetworkError(f"{self.name}: needs (scores, labels) bottoms")
        return [(1,)]

    def forward(self, bottoms):
        scores, labels = bottoms
        flat = scores.reshape(scores.shape[0], -1)
        idx = labels.astype(np.int64).ravel()
        if self.top_k == 1:
            correct = flat.argmax(axis=1) == idx
        else:
            top = np.argpartition(-flat, self.top_k - 1, axis=1)[:, :self.top_k]
            correct = (top == idx[:, None]).any(axis=1)
        return [np.array([correct.mean()], dtype=np.float32)]

    def backward(self, top_diffs, bottoms, tops):
        return [None, None]
