"""Layer catalog: the layer types needed by the paper's four networks."""

from repro.nn.layers.convolution import ConvolutionLayer
from repro.nn.layers.pooling import PoolingLayer
from repro.nn.layers.activation import ReLULayer, SigmoidLayer, TanHLayer
from repro.nn.layers.inner_product import InnerProductLayer
from repro.nn.layers.lrn import LRNLayer
from repro.nn.layers.dropout import DropoutLayer
from repro.nn.layers.concat import ConcatLayer
from repro.nn.layers.eltwise import EltwiseLayer, FlattenLayer
from repro.nn.layers.losses import SoftmaxWithLossLayer, ContrastiveLossLayer
from repro.nn.layers.accuracy import AccuracyLayer

__all__ = [
    "ConvolutionLayer",
    "PoolingLayer",
    "ReLULayer",
    "SigmoidLayer",
    "TanHLayer",
    "InnerProductLayer",
    "LRNLayer",
    "DropoutLayer",
    "ConcatLayer",
    "EltwiseLayer",
    "FlattenLayer",
    "SoftmaxWithLossLayer",
    "ContrastiveLossLayer",
    "AccuracyLayer",
]
