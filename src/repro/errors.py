"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the GPU simulator."""


class LaunchError(SimulationError):
    """A kernel launch was rejected (invalid or over-limit configuration).

    The simulated analogue of ``cudaErrorInvalidConfiguration``.
    """


class DeviceError(SimulationError):
    """Unknown device, or an operation targeted the wrong device."""


class OutOfMemoryError(SimulationError):
    """Simulated device memory exhausted (``cudaErrorMemoryAllocation``)."""


class ProfilerError(ReproError):
    """Misuse of the simulated CUPTI interface."""


class SolverError(ReproError):
    """The MILP solver could not produce a solution."""


class InfeasibleError(SolverError):
    """The optimization problem has no feasible point."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class NetworkError(ReproError):
    """Ill-formed neural-network definition or shape mismatch."""


class SchedulingError(ReproError):
    """The GLP4NN runtime scheduler was driven through an invalid state."""
