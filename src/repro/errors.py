"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SimulationError(ReproError):
    """An inconsistency was detected inside the GPU simulator."""


class LaunchError(SimulationError):
    """A kernel launch was rejected (invalid or over-limit configuration).

    The simulated analogue of ``cudaErrorInvalidConfiguration``.
    """


class DeviceError(SimulationError):
    """Unknown device, or an operation targeted the wrong device."""


class OutOfMemoryError(SimulationError):
    """Simulated device memory exhausted (``cudaErrorMemoryAllocation``)."""


class ProfilerError(ReproError):
    """Misuse of the simulated CUPTI interface."""


class SolverError(ReproError):
    """The MILP solver could not produce a solution."""


class InfeasibleError(SolverError):
    """The optimization problem has no feasible point."""


class UnboundedError(SolverError):
    """The optimization problem is unbounded."""


class NetworkError(ReproError):
    """Ill-formed neural-network definition or shape mismatch."""


class SchedulingError(ReproError):
    """The GLP4NN runtime scheduler was driven through an invalid state."""


class AnalyzeError(ReproError):
    """The static analyzer was misused or could not build its model
    (unknown plan kind, work/net mismatch, no flaggable mutant)."""


class TransientError(ReproError):
    """A failure that is expected to clear on retry (launch queue full,
    momentary driver hiccup).  The runtime scheduler retries these with
    simulated-clock backoff before degrading.
    """


class FaultInjected(ReproError):
    """An artificial failure raised by the fault-injection subsystem.

    Carries the fault ``site`` (e.g. ``"launch"``, ``"sync"``), the call
    ``key`` it matched, and the fault ``kind`` (``"transient"`` or
    ``"persistent"``) so degradation layers and tests can attribute it.
    """

    def __init__(self, message: str, site: str = "", key: str = "",
                 kind: str = "persistent") -> None:
        super().__init__(message)
        self.site = site
        self.key = key
        self.kind = kind


class TransientFault(FaultInjected, TransientError):
    """An injected fault flagged as transient: retrying may succeed."""

    def __init__(self, message: str, site: str = "", key: str = "") -> None:
        super().__init__(message, site=site, key=key, kind="transient")


class FaultPlanError(ReproError):
    """A fault-injection plan is malformed (unknown site, bad trigger)."""


class GraphError(ReproError):
    """The graph-launch compiler was misused or given an unusable graph."""


class GraphCaptureError(GraphError):
    """Dispatch capture failed (unknown kernel effect, nested capture,
    empty capture).  Executors treat this as a capture miss and fall back
    to eager dispatch.
    """


class GraphValidationError(GraphError):
    """A captured graph failed hazard validation and was refused admission.

    Carries the offending :class:`repro.analyze.hazards.ProgramVerdict` so
    callers can report the minimal two-kernel witnesses.
    """

    def __init__(self, message: str, verdict=None) -> None:
        super().__init__(message)
        self.verdict = verdict


class DegradedError(ReproError):
    """Graceful degradation was exhausted: the retry budget ran out and no
    safe fallback remained.  Raised only after bounded retries.
    """
