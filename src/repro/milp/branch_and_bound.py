"""Best-first branch and bound for mixed-integer linear programs.

Branches on the integer variable whose LP-relaxation value is most
fractional, exploring nodes in order of their relaxation bound (best-first),
with the usual prune-by-incumbent rule.  Exact for the small models GLP4NN
builds; validated against ``scipy.optimize.milp`` in the tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SolverError
from repro.faults.hooks import fault_poll
from repro.milp.simplex import LinearProgram, solve_lp
from repro.milp.solution import SolveStatus

_INT_TOL = 1e-6


@dataclass
class MilpResult:
    status: SolveStatus
    x: Optional[np.ndarray] = None
    objective: float = math.nan
    nodes: int = 0
    iterations: int = 0


def _most_fractional(x: np.ndarray, integers: Sequence[int]) -> Optional[int]:
    """Index of the integer variable farthest from integrality, or None."""
    best_j, best_frac = None, _INT_TOL
    for j in integers:
        frac = abs(x[j] - round(x[j]))
        if frac > best_frac:
            best_j, best_frac = j, frac
    return best_j


def solve_milp(
    lp: LinearProgram,
    integers: Sequence[int],
    max_nodes: int = 100_000,
) -> MilpResult:
    """Minimize ``lp`` with the variables in ``integers`` forced integral.

    Parameters
    ----------
    lp:
        The continuous relaxation (bounds included).
    integers:
        Indices of integer-constrained variables.
    max_nodes:
        Node budget; exceeding it raises :class:`~repro.errors.SolverError`
        rather than silently returning a possibly suboptimal answer.
    """
    # Fault-injection site: "timeout" raises (degrade-to-serial upstream);
    # "infeasible" forces the no-solution path (C_out clamped to 1).
    fault = fault_poll("milp_solve")
    if fault is not None:
        if fault.effect == "infeasible":
            return MilpResult(SolveStatus.INFEASIBLE, nodes=0, iterations=0)
        raise SolverError(fault.message or "injected fault: MILP solve "
                          "exceeded its time budget")
    integers = list(integers)
    root = solve_lp(lp)
    total_iters = root.iterations
    if root.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED):
        return MilpResult(root.status, nodes=1, iterations=total_iters)
    if root.status is not SolveStatus.OPTIMAL:
        raise SolverError(f"root relaxation failed: {root.status}")

    counter = itertools.count()
    # heap entries: (bound, tiebreak, lp)
    heap: list[tuple[float, int, LinearProgram, np.ndarray]] = [
        (root.objective, next(counter), lp, root.x)
    ]
    best_x: Optional[np.ndarray] = None
    best_obj = math.inf
    nodes = 0

    while heap:
        bound, _, node_lp, node_x = heapq.heappop(heap)
        if bound >= best_obj - 1e-9:
            continue  # cannot improve on the incumbent
        nodes += 1
        if nodes > max_nodes:
            raise SolverError(f"branch-and-bound node budget ({max_nodes}) exceeded")

        j = _most_fractional(node_x, integers)
        if j is None:
            # Integral: candidate incumbent.
            if bound < best_obj - 1e-9:
                best_obj = bound
                best_x = node_x.copy()
            continue

        floor_v = math.floor(node_x[j] + _INT_TOL)
        for lo_j, hi_j in (
            (node_lp.lo[j], float(floor_v)),
            (float(floor_v + 1), node_lp.hi[j]),
        ):
            if lo_j > hi_j + 1e-12:
                continue
            child = node_lp.with_bounds(j, lo_j, hi_j)
            res = solve_lp(child)
            total_iters += res.iterations
            if res.status is SolveStatus.OPTIMAL and res.objective < best_obj - 1e-9:
                heapq.heappush(heap, (res.objective, next(counter), child, res.x))
            elif res.status is SolveStatus.UNBOUNDED:
                # An integer-feasible direction may exist; be conservative.
                return MilpResult(SolveStatus.UNBOUNDED, nodes=nodes,
                                  iterations=total_iters)

    if best_x is None:
        return MilpResult(SolveStatus.INFEASIBLE, nodes=nodes,
                          iterations=total_iters)
    # snap integer coordinates exactly
    for j in integers:
        best_x[j] = round(best_x[j])
    return MilpResult(SolveStatus.OPTIMAL, best_x, float(lp.c @ best_x),
                      nodes, total_iters)
