"""Solution and status types shared by the LP and MILP layers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class SolveStatus(enum.Enum):
    """Outcome of an optimization run."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"

    @property
    def ok(self) -> bool:
        return self is SolveStatus.OPTIMAL


@dataclass
class Solution:
    """Result of a :class:`~repro.milp.model.Model` solve.

    ``values`` maps variable *names* to their optimal values; integer
    variables are rounded to exact integers.  ``objective`` is reported in
    the user's sense (maximization objectives are not negated back).
    """

    status: SolveStatus
    objective: float
    values: dict[str, float] = field(default_factory=dict)
    nodes_explored: int = 0
    simplex_iterations: int = 0

    def __getitem__(self, var) -> float:
        name = getattr(var, "name", var)
        return self.values[name]

    def as_array(self, order: list[str]) -> np.ndarray:
        return np.array([self.values[n] for n in order], dtype=float)
