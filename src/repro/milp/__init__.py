"""A small, self-contained mixed-integer linear programming solver.

The paper solves its analytical model (Section 3.2) with the GNU Linear
Programming Kit.  GLPK is not available here, so this package implements the
needed subset from scratch:

* :mod:`repro.milp.model` — a modelling layer (variables, linear
  expressions, constraints, min/max objectives);
* :mod:`repro.milp.simplex` — a dense two-phase primal simplex solver with
  Bland's anti-cycling rule;
* :mod:`repro.milp.branch_and_bound` — best-first branch and bound over the
  LP relaxation for integer variables.

The solver is exact for the problem sizes GLP4NN produces (a handful of
integer variables per layer) and is validated in the test suite against
``scipy.optimize.linprog`` / ``scipy.optimize.milp`` as oracles.

>>> from repro.milp import Model
>>> m = Model("toy")
>>> x = m.int_var("x", lo=0, hi=10)
>>> y = m.int_var("y", lo=0, hi=10)
>>> _ = m.add_constr(3 * x + 4 * y <= 24)
>>> m.maximize(2 * x + 3 * y)
>>> sol = m.solve()
>>> sol.objective
18.0
>>> sol[y]
6.0
"""

from repro.milp.model import Model, Var, LinExpr, Constraint
from repro.milp.simplex import LinearProgram, SimplexResult, solve_lp
from repro.milp.branch_and_bound import solve_milp
from repro.milp.solution import Solution, SolveStatus

__all__ = [
    "Model",
    "Var",
    "LinExpr",
    "Constraint",
    "LinearProgram",
    "SimplexResult",
    "solve_lp",
    "solve_milp",
    "Solution",
    "SolveStatus",
]
