"""Dense two-phase primal simplex.

Solves

    minimize    c @ x
    subject to  A_ub @ x <= b_ub
                A_eq @ x == b_eq
                lo <= x <= hi   (elementwise; +-inf allowed)

by reduction to standard form (``min c y, G y = g, y >= 0``):

* finite lower bounds are shifted out (``x = lo + y``);
* finite upper bounds become explicit ``<=`` rows;
* free variables are split into positive and negative parts;
* inequality rows receive slack variables;
* phase 1 minimizes the sum of artificial variables to find a basic
  feasible point, phase 2 optimizes the real objective.

Bland's rule guarantees termination on degenerate problems.  The
implementation is dense NumPy and intended for the small programs GLP4NN's
analytical model emits (tens of variables/rows); the test suite checks it
against ``scipy.optimize.linprog`` on random instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SolverError
from repro.milp.solution import SolveStatus

_EPS = 1e-9


@dataclass
class LinearProgram:
    """A bounded-variable LP in ``scipy.optimize.linprog``-like form."""

    c: np.ndarray
    a_ub: Optional[np.ndarray] = None
    b_ub: Optional[np.ndarray] = None
    a_eq: Optional[np.ndarray] = None
    b_eq: Optional[np.ndarray] = None
    lo: Optional[np.ndarray] = None
    hi: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float).ravel()
        n = self.c.size
        if self.a_ub is not None:
            self.a_ub = np.atleast_2d(np.asarray(self.a_ub, dtype=float))
            self.b_ub = np.asarray(self.b_ub, dtype=float).ravel()
            if self.a_ub.shape != (self.b_ub.size, n):
                raise SolverError("a_ub/b_ub shape mismatch")
        if self.a_eq is not None:
            self.a_eq = np.atleast_2d(np.asarray(self.a_eq, dtype=float))
            self.b_eq = np.asarray(self.b_eq, dtype=float).ravel()
            if self.a_eq.shape != (self.b_eq.size, n):
                raise SolverError("a_eq/b_eq shape mismatch")
        self.lo = (np.zeros(n) if self.lo is None
                   else np.asarray(self.lo, dtype=float).ravel().copy())
        self.hi = (np.full(n, np.inf) if self.hi is None
                   else np.asarray(self.hi, dtype=float).ravel().copy())
        if self.lo.size != n or self.hi.size != n:
            raise SolverError("bounds length mismatch")

    @property
    def num_vars(self) -> int:
        return self.c.size

    def with_bounds(self, index: int, lo: float, hi: float) -> "LinearProgram":
        """Copy with variable ``index`` re-bounded (used by branch & bound)."""
        new_lo = self.lo.copy()
        new_hi = self.hi.copy()
        new_lo[index] = lo
        new_hi[index] = hi
        return LinearProgram(self.c, self.a_ub, self.b_ub,
                             self.a_eq, self.b_eq, new_lo, new_hi)


@dataclass
class SimplexResult:
    status: SolveStatus
    x: Optional[np.ndarray] = None
    objective: float = np.nan
    iterations: int = 0


def _pivot(tab: np.ndarray, row: int, col: int) -> None:
    """In-place Gauss-Jordan pivot of the tableau on (row, col)."""
    tab[row] /= tab[row, col]
    colvals = tab[:, col].copy()
    colvals[row] = 0.0
    tab -= np.outer(colvals, tab[row])
    # Re-assert exact basis column to fight round-off drift.
    tab[:, col] = 0.0
    tab[row, col] = 1.0


def _simplex_phase(
    tab: np.ndarray, basis: np.ndarray, ncols: int, max_iter: int
) -> tuple[SolveStatus, int]:
    """Run primal simplex on a tableau whose last row is the objective.

    ``tab`` layout: rows 0..m-1 are constraints (last column = RHS), row m is
    the reduced-cost row.  Bland's rule: entering variable = lowest index
    with negative reduced cost; leaving = lowest-index tied minimum ratio.
    """
    m = tab.shape[0] - 1
    it = 0
    while True:
        costs = tab[-1, :ncols]
        entering = -1
        for j in range(ncols):
            if costs[j] < -_EPS:
                entering = j
                break
        if entering < 0:
            return SolveStatus.OPTIMAL, it
        col = tab[:m, entering]
        rhs = tab[:m, -1]
        best_ratio = np.inf
        leaving = -1
        for i in range(m):
            if col[i] > _EPS:
                ratio = rhs[i] / col[i]
                if ratio < best_ratio - _EPS or (
                    abs(ratio - best_ratio) <= _EPS
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return SolveStatus.UNBOUNDED, it
        _pivot(tab, leaving, entering)
        basis[leaving] = entering
        it += 1
        if it >= max_iter:
            return SolveStatus.ITERATION_LIMIT, it


def solve_lp(lp: LinearProgram, max_iter: int = 20_000) -> SimplexResult:
    """Solve a bounded-variable LP with two-phase primal simplex.

    Returns the optimum in the *original* variable space (bound shifts and
    free-variable splits undone).
    """
    n = lp.num_vars
    lo, hi = lp.lo, lp.hi
    if np.any(lo > hi + _EPS):
        return SimplexResult(SolveStatus.INFEASIBLE)

    # --- build the shifted/split variable map -------------------------
    # y-columns: for each original variable either one shifted column
    # (finite lo) or a +/- pair (free below).
    col_of_var: list[tuple[int, int]] = []  # (pos_col, neg_col or -1)
    ncols = 0
    for j in range(n):
        if np.isfinite(lo[j]):
            col_of_var.append((ncols, -1))
            ncols += 1
        else:
            col_of_var.append((ncols, ncols + 1))
            ncols += 2

    def expand_matrix(a: Optional[np.ndarray]) -> Optional[np.ndarray]:
        if a is None:
            return None
        out = np.zeros((a.shape[0], ncols))
        for j in range(n):
            pos, neg = col_of_var[j]
            out[:, pos] = a[:, j]
            if neg >= 0:
                out[:, neg] = -a[:, j]
        return out

    shift = np.where(np.isfinite(lo), lo, 0.0)

    rows_ub = []
    rhs_ub = []
    if lp.a_ub is not None:
        ub_shifted = lp.b_ub - lp.a_ub @ shift
        a = expand_matrix(lp.a_ub)
        for i in range(a.shape[0]):
            rows_ub.append(a[i])
            rhs_ub.append(ub_shifted[i])
    # finite upper bounds -> y_pos <= hi - lo rows
    for j in range(n):
        if np.isfinite(hi[j]):
            pos, _ = col_of_var[j]
            row = np.zeros(ncols)
            row[pos] = 1.0
            rows_ub.append(row)
            rhs_ub.append(hi[j] - shift[j])

    rows_eq = []
    rhs_eq = []
    if lp.a_eq is not None:
        eq_shifted = lp.b_eq - lp.a_eq @ shift
        a = expand_matrix(lp.a_eq)
        for i in range(a.shape[0]):
            rows_eq.append(a[i])
            rhs_eq.append(eq_shifted[i])

    m_ub, m_eq = len(rows_ub), len(rows_eq)
    m = m_ub + m_eq
    c_y = expand_matrix(lp.c.reshape(1, -1))[0]
    const_term = float(lp.c @ shift)

    if m == 0:
        # No rows at all (so no finite upper bounds either): every y column
        # with a negative cost runs off to +inf, otherwise the optimum is
        # y = 0, i.e. x = lo.
        if np.any(c_y < -_EPS):
            return SimplexResult(SolveStatus.UNBOUNDED)
        y = np.zeros(ncols)
        return SimplexResult(SolveStatus.OPTIMAL,
                             _recover(y, col_of_var, shift, n),
                             const_term, 0)

    # --- standard form: G y + slacks = g, all >= 0 --------------------
    total_cols = ncols + m_ub + m  # y cols + slacks + artificials
    g_mat = np.zeros((m, total_cols))
    g_rhs = np.zeros(m)
    for i in range(m_ub):
        g_mat[i, :ncols] = rows_ub[i]
        g_rhs[i] = rhs_ub[i]
        g_mat[i, ncols + i] = 1.0
    for k in range(m_eq):
        i = m_ub + k
        g_mat[i, :ncols] = rows_eq[k]
        g_rhs[i] = rhs_eq[k]
    # normalize negative RHS so artificials give a valid identity basis
    for i in range(m):
        if g_rhs[i] < 0:
            g_mat[i, : ncols + m_ub] *= -1.0
            g_rhs[i] *= -1.0
    art0 = ncols + m_ub
    for i in range(m):
        g_mat[i, art0 + i] = 1.0

    # --- phase 1 -------------------------------------------------------
    tab = np.zeros((m + 1, total_cols + 1))
    tab[:m, :total_cols] = g_mat
    tab[:m, -1] = g_rhs
    tab[-1, art0:art0 + m] = 1.0
    # price out the artificial basis
    tab[-1] -= tab[:m].sum(axis=0)
    basis = np.arange(art0, art0 + m)
    status, it1 = _simplex_phase(tab, basis, total_cols, max_iter)
    if status is SolveStatus.ITERATION_LIMIT:
        return SimplexResult(status, iterations=it1)
    if tab[-1, -1] < -1e-7:
        return SimplexResult(SolveStatus.INFEASIBLE, iterations=it1)

    # drive any artificial variable still basic (at zero) out of the basis
    for i in range(m):
        if basis[i] >= art0:
            pivot_col = -1
            for j in range(art0):
                if abs(tab[i, j]) > 1e-7:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tab, i, pivot_col)
                basis[i] = pivot_col
            # else: redundant row; leave the zero artificial basic.

    # --- phase 2 -------------------------------------------------------
    tab2 = np.zeros((m + 1, art0 + 1))
    tab2[:m, :art0] = tab[:m, :art0]
    tab2[:m, -1] = tab[:m, -1]
    tab2[-1, :ncols] = c_y
    for i in range(m):
        if basis[i] < art0 and abs(tab2[-1, basis[i]]) > 0:
            tab2[-1] -= tab2[-1, basis[i]] * tab2[i]
    # forbid re-entering artificial rows: columns >= art0 no longer exist.
    status, it2 = _simplex_phase(tab2, basis, art0, max_iter)
    if status is not SolveStatus.OPTIMAL:
        return SimplexResult(status, iterations=it1 + it2)

    y = np.zeros(art0)
    for i in range(m):
        if basis[i] < art0:
            y[basis[i]] = tab2[i, -1]
    x = _recover(y[:ncols], col_of_var, shift, n)
    return SimplexResult(SolveStatus.OPTIMAL, x, float(lp.c @ x), it1 + it2)


def _recover(
    y: np.ndarray, col_of_var: list[tuple[int, int]], shift: np.ndarray, n: int
) -> np.ndarray:
    x = np.empty(n)
    for j in range(n):
        pos, neg = col_of_var[j]
        val = y[pos] - (y[neg] if neg >= 0 else 0.0)
        x[j] = val + shift[j]
    return x
