"""Algebraic modelling layer over the LP/MILP solvers.

Provides GLPK-style model building with operator overloading:

>>> m = Model("occupancy")
>>> k1 = m.int_var("k_im2col", lo=1, hi=8)
>>> k2 = m.int_var("k_sgemm", lo=1, hi=8)
>>> m.add_constr(256 * k1 + 512 * k2 <= 2048, name="threads")
>>> m.maximize(256 * k1 + 512 * k2)
>>> sol = m.solve()
>>> sol.status.ok
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

import numpy as np

from repro.errors import SolverError
from repro.milp.branch_and_bound import solve_milp
from repro.milp.simplex import LinearProgram, solve_lp
from repro.milp.solution import Solution, SolveStatus

Number = Union[int, float]


class LinExpr:
    """An affine expression ``sum(coeff * var) + const``."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Optional[dict["Var", float]] = None,
                 const: float = 0.0) -> None:
        self.coeffs: dict[Var, float] = dict(coeffs or {})
        self.const = float(const)

    # -- arithmetic ----------------------------------------------------
    @staticmethod
    def _as_expr(other) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Var):
            return LinExpr({other: 1.0})
        if isinstance(other, (int, float)):
            return LinExpr(const=float(other))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other) -> "LinExpr":
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        out = LinExpr(self.coeffs, self.const + o.const)
        for v, c in o.coeffs.items():
            out.coeffs[v] = out.coeffs.get(v, 0.0) + c
        return out

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "LinExpr":
        o = self._as_expr(other)
        if o is NotImplemented:
            return NotImplemented
        return self + (-o)

    def __rsub__(self, other) -> "LinExpr":
        return self._as_expr(other) - self

    def __mul__(self, k) -> "LinExpr":
        if not isinstance(k, (int, float)):
            return NotImplemented
        return LinExpr({v: c * k for v, c in self.coeffs.items()},
                       self.const * k)

    __rmul__ = __mul__

    def __truediv__(self, k) -> "LinExpr":
        return self * (1.0 / k)

    # -- comparisons build constraints ----------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - self._as_expr(other), "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self._as_expr(other) - self, "<=")

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - self._as_expr(other), "==")

    __hash__ = None  # type: ignore[assignment]

    def value(self, values: dict[str, float]) -> float:
        """Evaluate under a name->value assignment."""
        return self.const + sum(c * values[v.name] for v, c in self.coeffs.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = [f"{c:+g}*{v.name}" for v, c in self.coeffs.items()]
        if self.const or not terms:
            terms.append(f"{self.const:+g}")
        return " ".join(terms)


class Var:
    """A decision variable. Create through :meth:`Model.var` / ``int_var``."""

    __slots__ = ("name", "lo", "hi", "is_integer", "index")

    def __init__(self, name: str, lo: float, hi: float, is_integer: bool,
                 index: int) -> None:
        self.name = name
        self.lo = lo
        self.hi = hi
        self.is_integer = is_integer
        self.index = index

    def _expr(self) -> LinExpr:
        return LinExpr({self: 1.0})

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return LinExpr._as_expr(other) - self._expr()

    def __neg__(self):
        return -self._expr()

    def __mul__(self, k):
        return self._expr() * k

    __rmul__ = __mul__

    def __truediv__(self, k):
        return self._expr() / k

    def __le__(self, other) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other) -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, Var) and other is self:
            return True
        return self._expr() == other

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "int" if self.is_integer else "cont"
        return f"Var({self.name}, {kind}, [{self.lo}, {self.hi}])"


@dataclass
class Constraint:
    """``expr <= 0`` or ``expr == 0`` (normalized form)."""

    expr: LinExpr
    sense: str  # "<=" or "=="
    name: str = ""


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.vars: list[Var] = []
        self.constraints: list[Constraint] = []
        self._objective: Optional[LinExpr] = None
        self._sense = 1.0  # +1 minimize, -1 maximize

    # -- building --------------------------------------------------------
    def var(self, name: str, lo: float = 0.0, hi: float = math.inf) -> Var:
        """Add a continuous variable."""
        return self._add_var(name, lo, hi, is_integer=False)

    def int_var(self, name: str, lo: float = 0.0, hi: float = math.inf) -> Var:
        """Add an integer variable."""
        return self._add_var(name, lo, hi, is_integer=True)

    def _add_var(self, name: str, lo: float, hi: float, is_integer: bool) -> Var:
        if any(v.name == name for v in self.vars):
            raise SolverError(f"duplicate variable name {name!r}")
        if lo > hi:
            raise SolverError(f"variable {name!r}: lo {lo} > hi {hi}")
        v = Var(name, float(lo), float(hi), is_integer, len(self.vars))
        self.vars.append(v)
        return v

    def add_constr(self, constr: Constraint, name: str = "") -> Constraint:
        if not isinstance(constr, Constraint):
            raise SolverError(
                "add_constr expects a Constraint (did the comparison "
                "evaluate to a bool?)"
            )
        if name:
            constr.name = name
        self.constraints.append(constr)
        return constr

    def minimize(self, expr: Union[LinExpr, Var, Number]) -> None:
        self._objective = LinExpr._as_expr(expr)
        self._sense = 1.0

    def maximize(self, expr: Union[LinExpr, Var, Number]) -> None:
        self._objective = LinExpr._as_expr(expr)
        self._sense = -1.0

    # -- solving ----------------------------------------------------------
    def _build_lp(self) -> LinearProgram:
        if self._objective is None:
            raise SolverError("no objective set")
        n = len(self.vars)
        c = np.zeros(n)
        for v, coeff in self._objective.coeffs.items():
            c[v.index] = coeff * self._sense
        rows_ub, rhs_ub, rows_eq, rhs_eq = [], [], [], []
        for con in self.constraints:
            row = np.zeros(n)
            for v, coeff in con.expr.coeffs.items():
                row[v.index] = coeff
            rhs = -con.expr.const
            if con.sense == "<=":
                rows_ub.append(row)
                rhs_ub.append(rhs)
            else:
                rows_eq.append(row)
                rhs_eq.append(rhs)
        lo = np.array([v.lo for v in self.vars])
        hi = np.array([v.hi for v in self.vars])
        return LinearProgram(
            c,
            np.array(rows_ub) if rows_ub else None,
            np.array(rhs_ub) if rhs_ub else None,
            np.array(rows_eq) if rows_eq else None,
            np.array(rhs_eq) if rhs_eq else None,
            lo, hi,
        )

    def solve(self, max_nodes: int = 100_000) -> Solution:
        """Solve and return a :class:`~repro.milp.solution.Solution`.

        The reported ``objective`` is in the user's orientation (the value of
        the expression passed to ``minimize``/``maximize``).
        """
        lp = self._build_lp()
        integers = [v.index for v in self.vars if v.is_integer]
        if integers:
            res = solve_milp(lp, integers, max_nodes=max_nodes)
            nodes, iters = res.nodes, res.iterations
            status, x, obj = res.status, res.x, res.objective
        else:
            r = solve_lp(lp)
            nodes, iters = 0, r.iterations
            status, x, obj = r.status, r.x, r.objective
        if status is not SolveStatus.OPTIMAL or x is None:
            return Solution(status, math.nan, {}, nodes, iters)
        values = {}
        for v in self.vars:
            val = float(x[v.index])
            values[v.name] = float(round(val)) if v.is_integer else val
        user_obj = self._objective.value(values) + 0.0  # type: ignore[union-attr]
        return Solution(SolveStatus.OPTIMAL, user_obj, values, nodes, iters)
