"""Observability: spans, metrics and Perfetto trace export.

Three cooperating pieces, all zero-dependency and opt-in (with nothing
installed every hook is a single ``None`` test, so uninstrumented runs are
byte-identical to pre-instrumentation ones):

* :mod:`repro.obs.spans` — hierarchical host-side spans over the
  *simulated* clock (``span("milp.solve")`` as a context manager,
  :func:`traced` as a decorator, :func:`instant` for point events);
* :mod:`repro.obs.metrics` — a run-scoped registry of counters, gauges
  and histograms replacing the scattered ad-hoc tallies the subsystems
  used to keep privately;
* :mod:`repro.obs.export` — a Chrome/Perfetto trace-event exporter that
  merges host spans with the :mod:`repro.gpusim` device timeline into one
  byte-deterministic JSON document.

:mod:`repro.obs.scenarios` (imported on demand, not re-exported here — it
pulls the full runtime stack) provides the canned experiments behind
``python -m repro trace``.  See ``docs/observability.md`` for a worked
example.
"""

from repro.obs.export import (
    merged_trace_events,
    to_perfetto_json,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    counter_inc,
    gauge_max,
    gauge_set,
    observe,
)
from repro.obs.spans import (
    SpanRecord,
    SpanRecorder,
    instant,
    recording,
    span,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanRecorder",
    "collecting",
    "counter_inc",
    "gauge_max",
    "gauge_set",
    "instant",
    "merged_trace_events",
    "observe",
    "recording",
    "span",
    "to_perfetto_json",
    "traced",
    "write_trace",
]
