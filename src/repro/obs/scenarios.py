"""Canned trace scenarios behind ``python -m repro trace``.

Each scenario is a small, fully deterministic experiment that runs with a
:class:`~repro.obs.spans.SpanRecorder` and a
:class:`~repro.obs.metrics.MetricsRegistry` installed and the device
timeline recording, then packages all three into a :class:`TraceCapture`
ready for Perfetto export.  Determinism is by construction:

* every span timestamp comes from the simulated host clock;
* GLP4NN-based scenarios use
  :func:`repro.serve.engine.deterministic_analyze_fn`, which replaces the
  measured (wall-clock) MILP ``T_a`` with a nominal cost derived from the
  solver's deterministic work counters;
* arrival traces and network weights are seeded.

Two runs of the same scenario therefore produce byte-identical trace
files — asserted by the export round-trip tests.

This module imports the full runtime stack and is deliberately *not*
re-exported from :mod:`repro.obs`; import it only where a trace is
actually produced (the CLI, the example, the tests).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ReproError
from repro.gpusim.engine import GPU
from repro.gpusim.stream import reset_handle_ids
from repro.gpusim.timeline import Timeline
from repro.nn.zoo import build_lenet
from repro.nn.zoo.table5 import CAFFENET_CONVS, SIAMESE_CONVS
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.obs.export import to_perfetto_json, write_trace
from repro.obs.spans import SpanRecord
from repro.runtime.executor import FixedStreamExecutor
from repro.runtime.lowering import lower_conv_forward
from repro.runtime.session import TrainingSession
from repro.serve.engine import ServingEngine, make_executor, resolve_device
from repro.serve.request import poisson_trace


@dataclass
class TraceCapture:
    """Everything one scenario run produced, ready for export."""

    scenario: str
    title: str
    device: str
    spans: list[SpanRecord]
    timeline: Timeline
    metrics: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """The merged Perfetto document as a deterministic JSON string."""
        return to_perfetto_json(
            self.spans, self.timeline, metrics=self.metrics,
            meta={"scenario": self.scenario, "title": self.title,
                  "device": self.device},
        )

    def write(self, path) -> str:
        """Write the document to ``path``; returns the text written."""
        return write_trace(
            path, self.spans, self.timeline, metrics=self.metrics,
            meta={"scenario": self.scenario, "title": self.title,
                  "device": self.device},
        )


@contextmanager
def _observing(gpu: GPU) -> Iterator[tuple]:
    """Record spans (on ``gpu``'s simulated clock) and metrics; restore."""
    recorder = obs_spans.SpanRecorder(clock=lambda: gpu.host_time)
    registry = obs_metrics.MetricsRegistry()
    prev_rec = obs_spans.install(recorder)
    prev_reg = obs_metrics.install(registry)
    try:
        yield recorder, registry
    finally:
        obs_spans.install(prev_rec)
        obs_metrics.install(prev_reg)


def _capture(name: str, title: str, gpu: GPU, recorder, registry
             ) -> TraceCapture:
    return TraceCapture(
        scenario=name,
        title=title,
        device=gpu.props.name,
        spans=recorder.sorted_spans(),
        timeline=gpu.timeline,
        metrics=registry.snapshot(),
    )


# ----------------------------------------------------------------------
# The scenarios
# ----------------------------------------------------------------------
def _run_fig3() -> TraceCapture:
    """The paper's Fig. 3 setup: MNIST conv2 on 4 fixed streams (P100)."""
    gpu = GPU(resolve_device("p100"), record_timeline=True)
    with _observing(gpu) as (rec, reg):
        ex = FixedStreamExecutor(gpu, 4)
        ex.run(lower_conv_forward(SIAMESE_CONVS[1]))
    return _capture("fig3", "MNIST conv2, 4 fixed streams (paper Fig. 3)",
                    gpu, rec, reg)


def _run_conv5() -> TraceCapture:
    """GLP4NN on CaffeNet conv5: profiling pass, then the concurrent pass."""
    gpu = GPU(resolve_device("p100"), record_timeline=True)
    ex = make_executor("glp4nn", gpu)
    work = lower_conv_forward(CAFFENET_CONVS[4])
    with _observing(gpu) as (rec, reg):
        ex.run(work)     # first execution: profile + MILP solve
        ex.run(work)     # second execution: model-sized stream pool
    return _capture(
        "conv5", "GLP4NN on CaffeNet conv5: profile pass then "
        "model-sized concurrent pass", gpu, rec, reg)


def _run_train() -> TraceCapture:
    """Two timing-only LeNet training iterations under GLP4NN."""
    gpu = GPU(resolve_device("p100"), record_timeline=True)
    ex = make_executor("glp4nn", gpu)
    net = build_lenet(batch=8, seed=0)
    session = TrainingSession(net, ex, compute_numeric=False)
    with _observing(gpu) as (rec, reg):
        session.run_iteration()
        session.run_iteration()
    return _capture(
        "train", "LeNet training (timing only), 2 iterations under GLP4NN",
        gpu, rec, reg)


def _run_serve() -> TraceCapture:
    """A short LeNet serving run: warmup, admission, batching, SLOs."""
    gpu = GPU(resolve_device("p100"), record_timeline=True)
    ex = make_executor("glp4nn", gpu)
    engine = ServingEngine(ex, build_lenet, net_name="lenet",
                           max_batch=4, queue_capacity=16, seed=0)
    trace = poisson_trace(rps=200.0, duration_us=20_000.0,
                          slo_us=60_000.0, seed=0)
    with _observing(gpu) as (rec, reg):
        engine.serve(trace)
    return _capture(
        "serve", "LeNet serving under GLP4NN: warmup, admission, "
        "dynamic batches", gpu, rec, reg)


def _run_verify() -> TraceCapture:
    """Three schedule-fuzz rounds on LeNet, one observed device timeline."""
    from repro.nn.zoo import build_lenet as _build
    from repro.runtime.lowering import lower_net
    from repro.verify.schedule import (
        ScheduleRunner,
        identity_plan,
        random_plan,
    )

    gpu = GPU(resolve_device("p100"), record_timeline=True)
    net = _build(batch=4, seed=0)
    works = (list(lower_net(net, "forward"))
             + list(lower_net(net, "backward")))
    runner = ScheduleRunner(works, pool_size=4)
    with _observing(gpu) as (rec, reg):
        with obs_spans.span("verify.scenario", cat="verify"):
            with obs_spans.span("verify.schedule.round", cat="verify",
                                round=-1):
                runner.run(identity_plan(works, "lenet", "p100", 4, 0),
                           gpu=gpu)
            for r in range(2):
                plan = random_plan(works, "lenet", "p100", 4, 0, r)
                with obs_spans.span("verify.schedule.round", cat="verify",
                                    round=r):
                    runner.run(plan, gpu=gpu)
                obs_metrics.counter_inc("verify.schedule.rounds")
    return _capture(
        "verify", "LeNet schedule fuzzing: identity round plus two "
        "seeded permutation rounds", gpu, rec, reg)


def _run_fleet() -> TraceCapture:
    """A 2-replica fleet under chaos: crash, failover, breaker, hedges."""
    from repro.faults import chaos_session
    from repro.fleet import build_fleet, default_chaos_plan
    from repro.serve.request import poisson_trace as _poisson

    engine = build_fleet("lenet", ["p100", "titan-xp"], "fixed", 2,
                         seed=0, hedge_after_us=1_500.0)
    lead = engine.replicas[0].gpu
    lead.timeline.enabled = True      # one replica's device track
    # Spans on the fleet's trace-relative clock (not any one GPU's).
    recorder = obs_spans.SpanRecorder(clock=lambda: engine.now_us)
    registry = obs_metrics.MetricsRegistry()
    prev_rec = obs_spans.install(recorder)
    prev_reg = obs_metrics.install(registry)
    try:
        trace = _poisson(rps=4_000.0, duration_us=6_000.0,
                         slo_us=3_000.0, seed=3)
        with chaos_session(default_chaos_plan(2, seed=1)):
            engine.serve(trace)
    finally:
        obs_spans.install(prev_rec)
        obs_metrics.install(prev_reg)
    return TraceCapture(
        scenario="fleet",
        title="2-replica fleet under chaos: crash, failover, breaker "
              "transitions and hedged requests",
        device=lead.props.name,
        spans=recorder.sorted_spans(),
        timeline=lead.timeline,
        metrics=registry.snapshot(),
    )


def _run_graph() -> TraceCapture:
    """Graph-launch lifecycle on CIFAR10: warmup, capture, two replays."""
    from repro.nn.zoo import build_cifar10
    from repro.runtime.lowering import lower_net

    gpu = GPU(resolve_device("p100"), record_timeline=True)
    ex = make_executor("glp4nn", gpu)
    net = build_cifar10(batch=8, seed=0)
    ex.enable_graph_mode(net=net, network="cifar10")
    works = list(lower_net(net, "forward"))
    with _observing(gpu) as (rec, reg):
        for _ in range(4):   # eager warmup, capture, replay, replay
            ex.run_pass(works)
    return _capture(
        "graph", "CIFAR10 forward under graph-launch: eager warmup, "
        "capture + admission, then amortized replays", gpu, rec, reg)


def _run_interop() -> TraceCapture:
    """An inception-5b unit under the certified opara stream plan."""
    from repro.interop import (
        build_plan,
        certify,
        inception_unit,
        run_plan,
        structural_effects,
    )
    from repro.interop.resources import estimate_graph

    props = resolve_device("p100")
    gpu = GPU(props, record_timeline=True)
    workload = inception_unit("5b", batch=2)
    graph = workload.graph
    plan = build_plan(graph, "opara", 4, device=props,
                      estimates=estimate_graph(graph, props))
    cert = certify(graph, plan,
                   effects=structural_effects(graph, workload.in_place),
                   device=props)
    streams = [gpu.create_stream(name=f"interop.s{i}") for i in range(4)]
    with _observing(gpu) as (rec, reg):
        run_plan(gpu, graph, cert.plan, streams)
    return _capture(
        "interop", "Inception-5b branches under the certified opara "
        "inter-operator stream plan", gpu, rec, reg)


#: Scenario name -> builder.  Deterministic iteration order (insertion).
TRACE_SCENARIOS: dict[str, Callable[[], TraceCapture]] = {
    "fig3": _run_fig3,
    "conv5": _run_conv5,
    "train": _run_train,
    "serve": _run_serve,
    "verify": _run_verify,
    "fleet": _run_fleet,
    "graph": _run_graph,
    "interop": _run_interop,
}


def run_scenario(name: str) -> TraceCapture:
    """Run one named scenario; raises with the available list if unknown."""
    try:
        build = TRACE_SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown trace scenario {name!r}; available: "
            f"{', '.join(TRACE_SCENARIOS)}"
        ) from None
    # Stream names embed process-global handle ids; restart them so a
    # scenario emits the same track names however often it is re-run.
    reset_handle_ids()
    return build()
