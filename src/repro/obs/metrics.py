"""The metrics registry: counters, gauges and histograms in one place.

Before this module existed every subsystem kept its own ad-hoc tallies —
``GPU.kernels_launched``, ``RuntimeScheduler`` retry totals,
``BoundedQueue.shed_overflow``, ``FaultInjector.fires`` — each with its own
naming and no way to read them together.  The registry is the unified sink:
instrumented sites publish through the module-level helpers
(:func:`counter_inc`, :func:`gauge_set`, :func:`observe`) and a run-scoped
:class:`MetricsRegistry` aggregates them under dotted names
(``runtime.retries``, ``serve.queue.shed``, ``faults.injected.launch``).

Like :mod:`repro.obs.spans` (and :mod:`repro.faults.hooks`), collection is
opt-in: with no registry installed each helper is a single ``None`` test.
Install one with :func:`collecting` or :func:`install`.

Histograms reuse :meth:`repro.runtime.metrics.TimingSummary.percentile`,
so serving latencies, layer times and span durations all report percentiles
with the same (numpy-compatible, linearly interpolated) definition.

>>> with collecting() as reg:
...     counter_inc("runtime.retries")
...     counter_inc("runtime.retries", 2)
...     gauge_set("serve.queue.depth", 7)
...     for v in (10.0, 20.0, 30.0, 40.0):
...         observe("milp.solve_us", v)
>>> reg.counter("runtime.retries").value
3
>>> reg.gauge("serve.queue.depth").value
7
>>> reg.histogram("milp.solve_us").percentile(50)
25.0
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A point-in-time value (queue depth, pool size, high-water mark)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark semantics)."""
        self.value = max(self.value, value)


class Histogram:
    """A sample accumulator with :class:`TimingSummary` percentiles."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    def summary(self):
        """The samples as a :class:`repro.runtime.metrics.TimingSummary`.

        Raises ``ValueError`` on an empty histogram (as ``TimingSummary``
        itself does for zero samples).
        """
        # Imported lazily: repro.runtime pulls the full runtime stack at
        # package-import time, and this module must stay import-light so
        # low-level modules (e.g. repro.faults.hooks) can depend on it.
        from repro.runtime.metrics import TimingSummary
        return TimingSummary.of(self.samples)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, via ``TimingSummary.percentile``."""
        return self.summary().percentile(q)


class MetricsRegistry:
    """Run-scoped store of named counters, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything as one deterministic (sorted-key) plain dict.

        Histograms are summarized (count / mean / p50 / p95 / p99 / max)
        rather than dumped raw, so snapshots stay small and byte-stable.
        """
        out: dict = {
            "counters": {n: c.value
                         for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {},
        }
        for name, hist in sorted(self.histograms.items()):
            if not hist.samples:
                out["histograms"][name] = {"count": 0}
                continue
            s = hist.summary()
            out["histograms"][name] = {
                "count": hist.count,
                "mean": s.mean,
                "p50": s.p50,
                "p95": s.p95,
                "p99": s.p99,
                "max": s.maximum,
            }
        return out


# ----------------------------------------------------------------------
# Process-wide registry slot.
# ----------------------------------------------------------------------
_active: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The currently installed registry, or ``None``."""
    return _active


def install(registry: Optional[MetricsRegistry]
            ) -> Optional[MetricsRegistry]:
    """Install ``registry`` process-wide; returns the previous one."""
    global _active
    previous = _active
    _active = registry
    return previous


def uninstall() -> Optional[MetricsRegistry]:
    """Remove any installed registry; returns what was installed."""
    return install(None)


@contextmanager
def collecting() -> Iterator[MetricsRegistry]:
    """Install a fresh registry for the enclosed block; restore after."""
    registry = MetricsRegistry()
    previous = install(registry)
    try:
        yield registry
    finally:
        install(previous)


def counter_inc(name: str, n: int = 1) -> None:
    """Increment counter ``name`` on the installed registry (or no-op)."""
    if _active is not None:
        _active.counter(name).inc(n)


def gauge_set(name: str, value: float) -> None:
    """Set gauge ``name`` on the installed registry (or no-op)."""
    if _active is not None:
        _active.gauge(name).set(value)


def gauge_max(name: str, value: float) -> None:
    """Raise gauge ``name`` to at least ``value`` (or no-op)."""
    if _active is not None:
        _active.gauge(name).max(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (or no-op)."""
    if _active is not None:
        _active.histogram(name).observe(value)
