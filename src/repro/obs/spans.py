"""Hierarchical host-side spans over the *simulated* clock.

A span is a named, timed interval of host work — "profile this layer",
"solve the MILP", "close this serving batch" — recorded against whatever
clock the caller chooses.  In this repository the clock is always a
simulated one (``lambda: gpu.host_time``), never the wall clock, so span
timelines are byte-reproducible: the same run produces the same spans with
the same timestamps, every time.

The module follows the :mod:`repro.faults.hooks` pattern: a process-wide
recorder slot that instrumented call sites consult through
:func:`span` / :func:`instant`.  With no recorder installed the hooks cost
one ``None`` test and record nothing, so fault-free production paths are
unchanged.  Install a recorder with :func:`recording` (context manager) or
:func:`install`.

Usage (context manager, decorator, instant events):

>>> t = [0.0]
>>> rec = SpanRecorder(clock=lambda: t[0])
>>> with rec.span("milp.solve", cat="milp", layer="conv1") as h:
...     t[0] = 40.0                    # simulated work
...     h.set(c_out=6)
>>> s = rec.spans[0]
>>> (s.name, s.start_us, s.end_us, s.args["c_out"])
('milp.solve', 0.0, 40.0, 6)

Spans nest through an explicit stack, so a span opened inside another
records its parent:

>>> with rec.span("outer"):
...     with rec.span("inner"):
...         t[0] = 41.0
>>> inner = next(s for s in rec.spans if s.name == "inner")
>>> outer = next(s for s in rec.spans if s.name == "outer")
>>> inner.parent_id == outer.span_id
True
"""

from __future__ import annotations

import functools
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: a named interval on the recorder's clock.

    ``span_id`` values are assigned in open order starting from 1, so they
    are stable across identical runs (a requirement for byte-reproducible
    trace exports).  ``start_us == end_us`` marks an *instant* event.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    cat: str
    start_us: float
    end_us: float
    args: dict = field(default_factory=dict)

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def is_instant(self) -> bool:
        return self.end_us <= self.start_us


class _SpanHandle:
    """Mutable view of an open span: lets the body attach result args."""

    __slots__ = ("args",)

    def __init__(self) -> None:
        self.args: dict = {}

    def set(self, **kwargs) -> None:
        """Attach deterministic key/value args to the span being recorded."""
        self.args.update(kwargs)


class _NullHandle:
    """The no-op handle yielded when no recorder is installed."""

    __slots__ = ()

    def set(self, **kwargs) -> None:
        pass


_NULL_HANDLE = _NullHandle()


class SpanRecorder:
    """Collects :class:`SpanRecord` s against an injected clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in µs.  Pass the
        simulated host clock (``lambda: gpu.host_time``) for reproducible
        traces; wall clocks work but forfeit determinism.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        self.spans: list[SpanRecord] = []
        self._stack: list[int] = []
        self._ids = itertools.count(1)

    def __len__(self) -> int:
        return len(self.spans)

    @contextmanager
    def span(self, name: str, cat: str = "host", **args
             ) -> Iterator[_SpanHandle]:
        """Record the enclosed block as one span (closed on exit).

        The span is recorded even when the body raises — the exception
        propagates, but the interval (up to the raise) is kept, which is
        exactly what a degradation investigation needs to see.
        """
        span_id = next(self._ids)
        parent = self._stack[-1] if self._stack else None
        handle = _SpanHandle()
        handle.args.update(args)
        start = float(self.clock())
        self._stack.append(span_id)
        try:
            yield handle
        finally:
            self._stack.pop()
            end = float(self.clock())
            self.spans.append(SpanRecord(
                span_id=span_id,
                parent_id=parent,
                name=name,
                cat=cat,
                start_us=start,
                end_us=max(end, start),
                args=dict(handle.args),
            ))

    def instant(self, name: str, cat: str = "host", **args) -> SpanRecord:
        """Record a zero-duration event at the current clock reading.

        >>> rec = SpanRecorder(clock=lambda: 7.0)
        >>> rec.instant("serve.reject", cat="serve", rid=3).is_instant
        True
        """
        now = float(self.clock())
        record = SpanRecord(
            span_id=next(self._ids),
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            cat=cat,
            start_us=now,
            end_us=now,
            args=dict(args),
        )
        self.spans.append(record)
        return record

    def sorted_spans(self) -> list[SpanRecord]:
        """Spans in deterministic export order: by start time, then id."""
        return sorted(self.spans, key=lambda s: (s.start_us, s.span_id))


# ----------------------------------------------------------------------
# Process-wide recorder slot (the repro.faults.hooks pattern).
# ----------------------------------------------------------------------
_active: Optional[SpanRecorder] = None


def active_recorder() -> Optional[SpanRecorder]:
    """The currently installed recorder, or ``None``."""
    return _active


def install(recorder: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Install ``recorder`` process-wide; returns the previous one."""
    global _active
    previous = _active
    _active = recorder
    return previous


def uninstall() -> Optional[SpanRecorder]:
    """Remove any installed recorder; returns what was installed."""
    return install(None)


@contextmanager
def recording(clock: Callable[[], float]) -> Iterator[SpanRecorder]:
    """Install a fresh recorder for the enclosed block; restore after.

    >>> t = [0.0]
    >>> with recording(lambda: t[0]) as rec:
    ...     with span("work"):
    ...         t[0] = 5.0
    >>> [s.name for s in rec.spans]
    ['work']
    >>> active_recorder() is None
    True
    """
    recorder = SpanRecorder(clock)
    previous = install(recorder)
    try:
        yield recorder
    finally:
        install(previous)


@contextmanager
def span(name: str, cat: str = "host", **args) -> Iterator[_SpanHandle]:
    """Record a span on the installed recorder; no-op when none is.

    Always yields a handle whose :meth:`~_SpanHandle.set` is safe to call,
    so instrumented sites need no ``if recording`` guards:

    >>> with span("never.recorded") as h:
    ...     h.set(ignored=True)      # no recorder installed: no-op
    """
    recorder = _active
    if recorder is None:
        yield _NULL_HANDLE
        return
    with recorder.span(name, cat=cat, **args) as handle:
        yield handle


def instant(name: str, cat: str = "host", **args) -> None:
    """Record an instant event on the installed recorder (no-op when none)."""
    recorder = _active
    if recorder is not None:
        recorder.instant(name, cat=cat, **args)


def traced(name: Optional[str] = None, cat: str = "host"):
    """Decorator form of :func:`span` for whole functions.

    >>> calls = []
    >>> @traced("scenario.step", cat="scenario")
    ... def step():
    ...     calls.append(1)
    >>> with recording(lambda: 0.0) as rec:
    ...     step()
    >>> (calls, rec.spans[0].name)
    ([1], 'scenario.step')
    """
    def decorate(fn):
        span_name = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with span(span_name, cat=cat):
                return fn(*args, **kwargs)
        return wrapper
    return decorate
