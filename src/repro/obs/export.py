"""Chrome/Perfetto trace-event export merging host spans + device slices.

The :mod:`repro.gpusim` timeline shows what the *device* did (one slice
per kernel, one track per CUDA stream); :mod:`repro.obs.spans` shows what
the *host* did (profiling passes, MILP solves, dispatch, serving batches).
This module merges both into one Chrome trace-event JSON document — the
format ``chrome://tracing`` and https://ui.perfetto.dev read — so host
phases and the kernel overlap they produced line up on a single zoomable
timeline:

* process ``host`` — one track (``tid``) per span category
  (``runtime``, ``profile``, ``milp``, ``serve``, ``session``);
* one process per GPU — one track per CUDA stream, exactly as the
  existing :func:`repro.gpusim.timeline.to_chrome_trace` renders them.

Output is **byte-deterministic**: every timestamp comes from the simulated
clock, span ids are assigned in open order, events are emitted in a fixed
sort order, and the JSON is serialized with sorted keys and fixed
separators.  Two runs of the same scenario produce identical files, which
is what makes the export round-trip testable.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Iterable, Optional

from repro.obs.spans import SpanRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.timeline import Timeline

HOST_PID = "host"


def span_events(spans: Iterable[SpanRecord]) -> list[dict]:
    """Chrome trace events for host spans (one track per category).

    Closed spans become complete (``"ph": "X"``) events; zero-duration
    spans become thread-scoped instant (``"ph": "i"``) events.  Events are
    ordered by start time then span id, which is stable across runs.
    """
    events = []
    ordered = sorted(spans, key=lambda s: (s.start_us, s.span_id))
    for s in ordered:
        args = dict(sorted(s.args.items()))
        args["span_id"] = s.span_id
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        event = {
            "name": s.name,
            "cat": s.cat,
            "pid": HOST_PID,
            "tid": s.cat,
            "ts": s.start_us,
            "args": args,
        }
        if s.is_instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = s.duration_us
        events.append(event)
    return events


def device_events(timeline: "Timeline") -> list[dict]:
    """Chrome trace events for the device timeline, in stable order."""
    ordered = sorted(
        timeline.trace_events(),
        key=lambda e: (e["ts"], e["tid"], e["name"]),
    )
    return ordered


def merged_trace_events(
    spans: Iterable[SpanRecord] = (),
    timeline: Optional["Timeline"] = None,
) -> list[dict]:
    """Host span events followed by device slice events."""
    events = span_events(spans)
    if timeline is not None:
        events.extend(device_events(timeline))
    return events


def to_perfetto_json(
    spans: Iterable[SpanRecord] = (),
    timeline: Optional["Timeline"] = None,
    metrics: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> str:
    """Serialize one merged trace as a deterministic JSON string.

    ``metrics`` (a :meth:`MetricsRegistry.snapshot` dict) and ``meta``
    (scenario name, device, …) ride along as top-level keys; trace viewers
    ignore keys they do not know.  The returned string always ends with a
    newline and serializes with sorted keys and fixed separators, so equal
    inputs give byte-equal output.
    """
    doc: dict = {"traceEvents": merged_trace_events(spans, timeline)}
    if metrics is not None:
        doc["metrics"] = metrics
    if meta is not None:
        doc["meta"] = meta
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def write_trace(
    path,
    spans: Iterable[SpanRecord] = (),
    timeline: Optional["Timeline"] = None,
    metrics: Optional[dict] = None,
    meta: Optional[dict] = None,
) -> str:
    """Write :func:`to_perfetto_json` output to ``path``; returns the text."""
    text = to_perfetto_json(spans, timeline, metrics=metrics, meta=meta)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
