"""Deterministic fault injection for the GLP4NN runtime.

GLP4NN's core promise is *convergence invariance*: concurrent dispatch must
never change what the network computes, only when it finishes.  This
package makes that claim testable under failure: a seedable
:class:`FaultPlan` describes which runtime sites fail and when, a
:class:`FaultInjector` evaluates it deterministically, and the runtime's
graceful-degradation layer (bounded retry with backoff, serial fallback,
cache quarantine) keeps training alive — with bit-identical numerics.

Injection sites (see :data:`~repro.faults.plan.SITES` and
``docs/fault_injection.md``): kernel launch, stream-pool creation, CUPTI
activity records, the analytical model's MILP solve, decision-cache loads
and device synchronization — plus the fleet-scoped sites (replica crash,
replica slowdown, front-end link drop) polled by :mod:`repro.fleet`.

With no plan installed, every hook is a single ``None`` check — fault-free
runs are behaviorally unchanged.
"""

from repro.faults.chaos import chaos_session
from repro.faults.hooks import (
    active_injector,
    fault_check,
    fault_poll,
    install,
    uninstall,
)
from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import KINDS, SITES, FaultPlan, FaultSpec

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FaultEvent",
    "SITES",
    "KINDS",
    "chaos_session",
    "install",
    "uninstall",
    "active_injector",
    "fault_check",
    "fault_poll",
]
