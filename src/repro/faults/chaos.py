"""Chaos-testing entry point: run any workload under a fault plan.

Usage::

    from repro.faults import FaultPlan, chaos_session

    plan = FaultPlan.load("plan.json")
    with chaos_session(plan, seed=7) as injector:
        session.run(batches, iterations=20)
    print(injector.summary())

The context manager installs a fresh :class:`FaultInjector` for the plan,
restores whatever was installed before on exit (so sessions nest), and
yields the injector so callers can inspect the fault log afterwards.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.faults.hooks import install
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan


@contextmanager
def chaos_session(plan: Union[FaultPlan, str, Path],
                  seed: Optional[int] = None) -> Iterator[FaultInjector]:
    """Install ``plan`` (a :class:`FaultPlan` or a path to a plan JSON)
    for the duration of the ``with`` block; yields the injector."""
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.load(plan)
    if seed is not None:
        plan = plan.with_seed(seed)
    injector = FaultInjector(plan)
    previous = install(injector)
    try:
        yield injector
    finally:
        install(previous)
