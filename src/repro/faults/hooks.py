"""Process-wide fault hook the runtime calls into.

This module is deliberately import-light (stdlib-only siblings such as
``repro.obs.metrics`` aside) so every layer of the stack — the GPU engine,
the stream manager, the CUPTI profiler, the MILP solver and the
persistence layer — can call :func:`fault_check` / :func:`fault_poll`
without creating import cycles.

With no injector installed the hooks are a single ``None`` test: zero
behavioral change for fault-free runs (the default).  Install via
:func:`install` or, more usually, :func:`repro.faults.chaos_session`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import counter_inc

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultSpec

_active: Optional["FaultInjector"] = None


def active_injector() -> Optional["FaultInjector"]:
    """The currently installed injector, or ``None``."""
    return _active


def install(injector: Optional["FaultInjector"]
            ) -> Optional["FaultInjector"]:
    """Install ``injector`` as the process-wide fault source.

    Returns the previously installed injector (or ``None``) so callers can
    restore it — :func:`repro.faults.chaos_session` nests this way.
    """
    global _active
    previous = _active
    _active = injector
    return previous


def uninstall() -> Optional["FaultInjector"]:
    """Remove any installed injector; returns what was installed."""
    return install(None)


def fault_check(site: str, key: str = "") -> None:
    """Raise the injected fault for this call, if one fires.

    Used by sites where the real failure is an exception (kernel launch,
    synchronize, stream creation, strict cache load).
    """
    if _active is not None:
        try:
            _active.check(site, key)
        except Exception:
            counter_inc(f"faults.injected.{site}")
            raise


def fault_poll(site: str, key: str = "") -> Optional["FaultSpec"]:
    """Return the firing fault spec for this call, or ``None``.

    Used by sites where the failure is silent data corruption or loss
    (dropped profiler records, unusable cache entries, forced-infeasible
    solver output) rather than an exception.
    """
    if _active is None:
        return None
    spec = _active.poll(site, key)
    if spec is not None:
        counter_inc(f"faults.injected.{site}")
    return spec
