"""Deterministic fault plans: what to break, where, and when.

A :class:`FaultPlan` is a seedable, serializable list of :class:`FaultSpec`
entries.  Each spec names an injection *site* (one of :data:`SITES`), an
optional ``key`` glob restricting which calls at that site it applies to
(kernel names at ``launch``/``profiler_record``, device names at
``stream_create``/``sync``, cache paths at ``cache_load``), a *trigger*
saying which matching calls fire, and a *kind*:

``transient``
    The injected failure clears on retry — raised as
    :class:`~repro.errors.TransientFault`, which the runtime scheduler
    retries with simulated-clock backoff.
``persistent``
    Fires on every triggered call — raised as
    :class:`~repro.errors.FaultInjected`; the scheduler degrades (serial
    fallback) instead of retrying.

Triggers (exactly one per spec, or none for "every matching call"):

``{"nth": n}``      fire on the n-th matching call only (1-based)
``{"every": k}``    fire on every k-th matching call
``{"after": n}``    fire on every matching call after the n-th
``{"probability": p}``  fire with probability ``p`` per call, drawn from a
                    per-spec ``random.Random`` seeded from the plan seed —
                    the same plan + seed always fires on the same calls

``max_fires`` caps the total number of firings of one spec.  ``effect``
selects a site-specific failure mode where more than one exists
(``milp_solve``: ``"timeout"`` (default) or ``"infeasible"``;
``profiler_record``: ``"drop"``).

Everything is pure data — installing and evaluating plans is
:mod:`repro.faults.injector`'s job.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Optional, Union

from repro.errors import FaultPlanError

#: The hook points threaded through the runtime (see docs/fault_injection.md).
SITES = (
    "launch",           # GPU.launch — kernel launch rejected
    "stream_create",    # StreamPool.ensure — stream pool unavailable
    "profiler_record",  # CuptiProfiler — activity record dropped
    "milp_solve",       # solve_milp — solver timeout / forced infeasible
    "cache_load",       # persistence — corrupt/stale decision cache
    "sync",             # GPU.synchronize — synchronization failure
    "graph_launch",     # GPU.launch_graph — whole-graph launch rejected
    # Fleet-scoped sites (see docs/fleet.md); keys are replica names
    # (``replica_crash``/``replica_slow``) or front-end link names of the
    # form ``fe-><replica>`` (``link_drop``, modeled over
    # repro.comm.interconnect).
    "replica_crash",    # FleetEngine heartbeat — replica process dies
    "replica_slow",     # Replica batch start — degraded replica (slow batch)
    "link_drop",        # FleetEngine dispatch — front-end link loses the send
)

KINDS = ("transient", "persistent")

#: Allowed ``effect`` values per site ("" means the site's default).
_EFFECTS = {
    "milp_solve": ("", "timeout", "infeasible"),
    "profiler_record": ("", "drop"),
    # "restart": the replica rejoins after the fleet's restart delay;
    # "permanent": it stays dead for the rest of the run.
    "replica_crash": ("", "restart", "permanent"),
    # Batch-duration multipliers for a degraded replica.
    "replica_slow": ("", "mild", "severe"),
    # The dropped send is the only failure mode for a link.
    "link_drop": ("",),
}

_TRIGGER_FIELDS = ("nth", "every", "after", "probability")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a site, a call filter, a trigger and a failure mode."""

    site: str
    kind: str = "persistent"
    key: str = ""                       # fnmatch glob over the call key
    nth: Optional[int] = None
    every: Optional[int] = None
    after: Optional[int] = None
    probability: Optional[float] = None
    max_fires: Optional[int] = None
    effect: str = ""
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )
        set_triggers = [f for f in _TRIGGER_FIELDS
                        if getattr(self, f) is not None]
        if len(set_triggers) > 1:
            raise FaultPlanError(
                f"fault spec for site {self.site!r} sets multiple triggers: "
                f"{set_triggers}; pick one of nth/every/after/probability"
            )
        for f in ("nth", "every"):
            v = getattr(self, f)
            if v is not None and v < 1:
                raise FaultPlanError(f"{f} must be >= 1, got {v}")
        if self.after is not None and self.after < 0:
            raise FaultPlanError(f"after must be >= 0, got {self.after}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise FaultPlanError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise FaultPlanError(
                f"max_fires must be >= 0, got {self.max_fires}"
            )
        allowed = _EFFECTS.get(self.site, ("",))
        if self.effect not in allowed:
            raise FaultPlanError(
                f"effect {self.effect!r} is not valid for site {self.site!r} "
                f"(allowed: {[e for e in allowed if e] or ['<none>']})"
            )

    # ------------------------------------------------------------------
    def matches(self, key: str) -> bool:
        """Does this spec apply to a call with ``key`` at its site?"""
        return not self.key or fnmatchcase(key, self.key)

    def fires_on(self, n: int, rng) -> bool:
        """Trigger decision for the ``n``-th matching call (1-based).

        ``rng`` is the spec's private seeded generator; it is drawn from on
        every matching call when a ``probability`` trigger is set, so the
        firing sequence depends only on the plan seed and the call order.
        """
        if self.nth is not None:
            return n == self.nth
        if self.every is not None:
            return n % self.every == 0
        if self.after is not None:
            return n > self.after
        if self.probability is not None:
            return rng.random() < self.probability
        return True      # untriggered spec: every matching call

    def to_dict(self) -> dict:
        out: dict = {"site": self.site, "kind": self.kind}
        if self.key:
            out["key"] = self.key
        trigger = {f: getattr(self, f) for f in _TRIGGER_FIELDS
                   if getattr(self, f) is not None}
        if trigger:
            out["trigger"] = trigger
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        if self.effect:
            out["effect"] = self.effect
        if self.message:
            out["message"] = self.message
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "FaultSpec":
        if not isinstance(d, dict):
            raise FaultPlanError(f"fault spec must be an object, got {d!r}")
        known = {"site", "kind", "key", "trigger", "max_fires", "effect",
                 "message"}
        unknown = set(d) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault spec field(s): {sorted(unknown)}"
            )
        trigger = d.get("trigger", {})
        if not isinstance(trigger, dict):
            raise FaultPlanError(f"trigger must be an object, got {trigger!r}")
        bad = set(trigger) - set(_TRIGGER_FIELDS)
        if bad:
            raise FaultPlanError(f"unknown trigger field(s): {sorted(bad)}")
        return cls(
            site=d.get("site", ""),
            kind=d.get("kind", "persistent"),
            key=d.get("key", ""),
            nth=trigger.get("nth"),
            every=trigger.get("every"),
            after=trigger.get("after"),
            probability=trigger.get("probability"),
            max_fires=d.get("max_fires"),
            effect=d.get("effect", ""),
            message=d.get("message", ""),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of fault specs.

    The plan is immutable; :meth:`with_seed` returns a reseeded copy.  The
    same plan applied to the same deterministic workload produces the same
    fault sequence (see :class:`~repro.faults.injector.FaultInjector`).
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=int(seed))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"seed": self.seed,
                     "faults": [s.to_dict() for s in self.specs]}
        if self.name:
            out["name"] = self.name
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        if not isinstance(d, dict):
            raise FaultPlanError(f"fault plan must be an object, got {d!r}")
        faults = d.get("faults", [])
        if not isinstance(faults, list):
            raise FaultPlanError("'faults' must be a list of fault specs")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in faults),
            seed=int(d.get("seed", 0)),
            name=str(d.get("name", "")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultPlan":
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as e:
            raise FaultPlanError(f"cannot read fault plan {path}: {e}") from e
        except json.JSONDecodeError as e:
            raise FaultPlanError(f"fault plan {path} is not valid JSON: {e}"
                                 ) from e
        return cls.from_dict(doc)
