"""The fault injector: evaluates a plan against a stream of site calls.

One :class:`FaultInjector` holds the per-spec call counters, the per-spec
seeded RNGs and the firing log.  Determinism contract: a given
``(FaultPlan, seed)`` run against the same (deterministic) workload yields
the same :attr:`events` log and therefore the same simulated timeline —
the injector has no hidden global state and never consults wall-clock time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import FaultInjected, TransientFault
from repro.faults.plan import SITES, FaultPlan, FaultSpec


@dataclass(frozen=True)
class FaultEvent:
    """One firing of one fault spec (for logs, reports and tests)."""

    seq: int            # global firing index (0-based)
    site: str
    key: str
    call_index: int     # the spec's matching-call counter at firing (1-based)
    spec_index: int     # position of the spec in the plan
    kind: str
    effect: str

    def describe(self) -> str:
        where = f"{self.site}[{self.key}]" if self.key else self.site
        eff = f" effect={self.effect}" if self.effect else ""
        return (f"#{self.seq} {self.kind} fault at {where} "
                f"(call {self.call_index}, spec {self.spec_index}){eff}")


class FaultInjector:
    """Stateful evaluation of a :class:`~repro.faults.plan.FaultPlan`.

    The hook sites call :meth:`poll` (returns the firing spec, or ``None``)
    or :meth:`check` (raises the corresponding exception).  Which one a site
    uses depends on whether the failure is an exception in the real system
    (launch, sync, stream creation) or silent data loss (dropped profiler
    records, corrupt cache bytes).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.events: list[FaultEvent] = []
        #: Calls observed per site (fired or not) — injector telemetry.
        self.site_calls: dict[str, int] = {site: 0 for site in SITES}
        self._match_counts = [0] * len(plan.specs)
        self._fire_counts = [0] * len(plan.specs)
        # One private RNG per spec, derived from the plan seed and the spec
        # position only, so reordering unrelated specs cannot change a
        # spec's firing sequence.
        self._rngs = [random.Random((plan.seed << 16) ^ (i * 2654435761))
                      for i in range(len(plan.specs))]

    # ------------------------------------------------------------------
    def poll(self, site: str, key: str = "") -> Optional[FaultSpec]:
        """Advance counters for one call at ``site``; return the fault.

        Every spec matching ``(site, key)`` has its counter advanced (and
        its RNG drawn, for probability triggers) so firing decisions stay
        independent across specs; the first spec that fires wins.
        """
        self.site_calls[site] = self.site_calls.get(site, 0) + 1
        fired: Optional[FaultSpec] = None
        fired_index = -1
        fired_call = 0
        for i, spec in enumerate(self.plan.specs):
            if spec.site != site or not spec.matches(key):
                continue
            self._match_counts[i] += 1
            if not spec.fires_on(self._match_counts[i], self._rngs[i]):
                continue
            if (spec.max_fires is not None
                    and self._fire_counts[i] >= spec.max_fires):
                continue
            self._fire_counts[i] += 1
            if fired is None:
                fired = spec
                fired_index = i
                fired_call = self._match_counts[i]
        if fired is not None:
            self.events.append(FaultEvent(
                seq=len(self.events),
                site=site,
                key=key,
                call_index=fired_call,
                spec_index=fired_index,
                kind=fired.kind,
                effect=fired.effect,
            ))
        return fired

    def check(self, site: str, key: str = "") -> None:
        """Raise :class:`TransientFault` / :class:`FaultInjected` if a
        fault fires for this call; no-op otherwise."""
        spec = self.poll(site, key)
        if spec is None:
            return
        msg = spec.message or (
            f"injected {spec.kind} fault at {site}"
            + (f" (key={key!r})" if key else "")
        )
        if spec.kind == "transient":
            raise TransientFault(msg, site=site, key=key)
        raise FaultInjected(msg, site=site, key=key, kind=spec.kind)

    # ------------------------------------------------------------------
    @property
    def fires(self) -> int:
        """Total faults fired so far."""
        return len(self.events)

    def fires_at(self, site: str) -> int:
        return sum(1 for e in self.events if e.site == site)

    def summary(self) -> dict[str, int]:
        """Fired-fault count per site (sites that fired only)."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.site] = out.get(e.site, 0) + 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FaultInjector(specs={len(self.plan.specs)}, "
                f"fired={self.fires})")
