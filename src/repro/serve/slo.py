"""Per-request latency accounting and SLO attainment.

Every request leaves the system with exactly one :class:`RequestRecord`,
whatever happened to it — completed in time, completed late, shed by the
queue or the admission controller, or failed because the runtime degraded
past recovery.  *Goodput* is the fraction of **all** issued requests that
completed within their deadline, so shedding is never a way to make the
numbers look better.

Percentiles come from :class:`repro.runtime.metrics.TimingSummary`, shared
with the training-side benchmarks so both report latencies the same way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError
from repro.runtime.metrics import TimingSummary
from repro.serve.request import InferenceRequest


class Outcome(enum.Enum):
    """Terminal state of one request."""

    OK = "ok"                      # completed within its deadline
    LATE = "late"                  # completed after its deadline
    SHED_QUEUE = "shed-queue"      # dropped by queue backpressure
    SHED_ADMISSION = "shed-admission"  # rejected by SLO-aware admission
    FAILED = "failed"              # batch aborted (degraded past recovery)
    EXPIRED = "expired"            # deadline passed while still queued


@dataclass(frozen=True)
class RequestRecord:
    """The final accounting line of one request."""

    rid: int
    arrival_us: float
    deadline_us: float
    outcome: Outcome
    finish_us: Optional[float] = None     # None for shed/failed requests
    batch_size: int = 0
    detail: str = ""

    @property
    def latency_us(self) -> Optional[float]:
        if self.finish_us is None:
            return None
        return self.finish_us - self.arrival_us

    @property
    def met_slo(self) -> bool:
        return self.outcome is Outcome.OK


class SLOTracker:
    """Accumulates request records and derives the serving metrics."""

    def __init__(self) -> None:
        self.records: list[RequestRecord] = []

    # ------------------------------------------------------------------
    def complete(self, request: InferenceRequest, finish_us: float,
                 batch_size: int) -> RequestRecord:
        outcome = (Outcome.OK if finish_us <= request.deadline_us
                   else Outcome.LATE)
        rec = RequestRecord(
            rid=request.rid, arrival_us=request.arrival_us,
            deadline_us=request.deadline_us, outcome=outcome,
            finish_us=finish_us, batch_size=batch_size,
        )
        self.records.append(rec)
        return rec

    def shed(self, request: InferenceRequest, outcome: Outcome,
             detail: str = "") -> RequestRecord:
        if outcome not in (Outcome.SHED_QUEUE, Outcome.SHED_ADMISSION,
                           Outcome.FAILED, Outcome.EXPIRED):
            raise ReproError(f"{outcome} is not a shedding outcome")
        rec = RequestRecord(
            rid=request.rid, arrival_us=request.arrival_us,
            deadline_us=request.deadline_us, outcome=outcome, detail=detail,
        )
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------
    def count(self, outcome: Outcome) -> int:
        return sum(1 for r in self.records if r.outcome is outcome)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return self.count(Outcome.OK) + self.count(Outcome.LATE)

    @property
    def goodput(self) -> float:
        """Fraction of all issued requests that met their deadline."""
        if not self.records:
            return 0.0
        return self.count(Outcome.OK) / self.total

    def latency_summary(self) -> Optional[TimingSummary]:
        """Latencies of completed requests (None when nothing completed)."""
        samples = [r.latency_us for r in self.records
                   if r.latency_us is not None]
        if not samples:
            return None
        return TimingSummary.of(samples)

    def summary(self) -> dict:
        """All metrics as a flat dict (report/JSON building block)."""
        lat = self.latency_summary()
        out: dict = {
            "requests": self.total,
            "ok": self.count(Outcome.OK),
            "late": self.count(Outcome.LATE),
            "shed_queue": self.count(Outcome.SHED_QUEUE),
            "shed_admission": self.count(Outcome.SHED_ADMISSION),
            "failed": self.count(Outcome.FAILED),
            "expired": self.count(Outcome.EXPIRED),
            "goodput": self.goodput,
        }
        if lat is not None:
            out.update({
                "latency_mean_us": lat.mean,
                "latency_p50_us": lat.p50,
                "latency_p95_us": lat.p95,
                "latency_p99_us": lat.p99,
                "latency_max_us": lat.maximum,
            })
        return out
