"""Bounded admission queue with backpressure and SLO-aware shedding.

Two cooperating pieces:

* :class:`BoundedQueue` — a capacity-limited request queue.  Overflow is
  resolved by an :class:`OverflowPolicy`: reject the arriving request
  (``REJECT_NEWEST``, classic tail drop) or evict the most stale queued
  request to make room (``DROP_OLDEST``, which favors fresh requests whose
  deadlines are still reachable).  Dequeue order is FIFO or
  earliest-deadline-first.
* :class:`AdmissionController` — optional SLO-aware gate in front of the
  queue: a request whose *projected* completion time already misses its
  deadline is rejected on arrival, so capacity is never spent on work that
  is predictably late.  The projection uses the engine's online service-time
  estimate (an EWMA over completed batches), which is derived purely from
  simulated timings and therefore deterministic.

Every shed request is returned to the caller (never silently dropped) so
the SLO tracker can account for it.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import ReproError
from repro.obs.metrics import counter_inc
from repro.serve.request import InferenceRequest


class OverflowPolicy(enum.Enum):
    """What a full queue does with a new arrival."""

    REJECT_NEWEST = "reject-newest"
    DROP_OLDEST = "drop-oldest"


class QueueOrder(enum.Enum):
    """Dequeue order when forming batches."""

    FIFO = "fifo"
    EDF = "edf"            # earliest deadline first


class BoundedQueue:
    """A bounded queue of waiting requests.

    >>> q = BoundedQueue(capacity=2)
    >>> r = [InferenceRequest(i, float(i), 100.0 + i) for i in range(3)]
    >>> q.offer(r[0], now=0.0) and q.offer(r[1], now=1.0)
    True
    >>> q.offer(r[2], now=2.0)      # full: tail drop
    False
    >>> q.shed_overflow
    1
    """

    def __init__(self, capacity: int,
                 overflow: OverflowPolicy = OverflowPolicy.REJECT_NEWEST,
                 order: QueueOrder = QueueOrder.FIFO) -> None:
        if capacity < 1:
            raise ReproError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.overflow = overflow
        self.order = order
        self._waiting: list[tuple[InferenceRequest, float]] = []
        self.admitted = 0
        self.shed_overflow = 0
        self.evicted: list[InferenceRequest] = []
        self.high_water = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def full(self) -> bool:
        return len(self._waiting) >= self.capacity

    def oldest_enqueue_us(self) -> Optional[float]:
        """Enqueue time of the most stale waiting request (None if empty)."""
        if not self._waiting:
            return None
        return min(t for _, t in self._waiting)

    # ------------------------------------------------------------------
    def offer(self, request: InferenceRequest, now: float) -> bool:
        """Try to enqueue ``request`` at simulated time ``now``.

        Returns True when the request was admitted.  Under
        ``DROP_OLDEST`` an admission may evict a queued request; evicted
        requests accumulate in :attr:`evicted` until drained with
        :meth:`drain_evicted`.
        """
        if self.full:
            if self.overflow is OverflowPolicy.REJECT_NEWEST:
                self.shed_overflow += 1
                counter_inc("serve.queue.shed")
                return False
            stale = min(range(len(self._waiting)),
                        key=lambda i: self._waiting[i][1])
            victim, _ = self._waiting.pop(stale)
            self.evicted.append(victim)
            self.shed_overflow += 1
            counter_inc("serve.queue.shed")
        self._waiting.append((request, now))
        self.admitted += 1
        counter_inc("serve.queue.admitted")
        self.high_water = max(self.high_water, len(self._waiting))
        return True

    def drain_evicted(self) -> list[InferenceRequest]:
        """Return and clear requests evicted by ``DROP_OLDEST`` overflow."""
        out, self.evicted = self.evicted, []
        return out

    def drop_expired(self, now: float) -> list[InferenceRequest]:
        """Remove and return queued requests whose deadline has passed.

        Enqueue times of the surviving requests are preserved, so batch
        formation and staleness accounting are unaffected.
        """
        expired = [r for r, _ in self._waiting if r.deadline_us <= now]
        if expired:
            self._waiting = [(r, t) for r, t in self._waiting
                             if r.deadline_us > now]
            counter_inc("serve.queue.expired", len(expired))
        return expired

    def pop_batch(self, max_batch: int) -> list[InferenceRequest]:
        """Dequeue up to ``max_batch`` requests in the configured order."""
        if max_batch < 1:
            raise ReproError(f"batch size must be >= 1, got {max_batch}")
        if self.order is QueueOrder.EDF:
            self._waiting.sort(key=lambda e: (e[0].deadline_us, e[0].rid))
        else:
            self._waiting.sort(key=lambda e: (e[1], e[0].rid))
        take = self._waiting[:max_batch]
        self._waiting = self._waiting[max_batch:]
        return [req for req, _ in take]


class AdmissionController:
    """SLO-aware admission gate: reject predictably-late requests.

    ``projected finish = now + (queued + 1) * service_estimate``; a request
    is rejected when that projection exceeds its deadline.  Until the first
    service-time estimate exists every request is admitted (the controller
    has nothing to project from).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.rejected = 0

    def admits(self, request: InferenceRequest, now: float, queued: int,
               service_estimate_us: Optional[float]) -> bool:
        if not self.enabled or service_estimate_us is None:
            return True
        projected = now + (queued + 1) * service_estimate_us
        if projected > request.deadline_us:
            self.rejected += 1
            counter_inc("serve.admission.rejected")
            return False
        return True
