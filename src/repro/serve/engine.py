"""The serving engine: a simulated-clock inference-serving loop.

:class:`ServingEngine` wires the serving pieces (bounded queue, SLO-aware
admission, dynamic batcher, lowered-work cache) onto an existing
:class:`~repro.runtime.executor.Executor`, so every inference batch flows
through the same runtime scheduler the training path uses — GLP4NN's
profile-then-dispatch workflow, stream-pool sizing and graceful degradation
are exercised per batch shape, exactly as the paper's framework would see
them ("training or inference").

Time is *entirely* simulated: the engine advances the device's host clock
to idle between arrivals and lets executor runs advance it through compute,
so a serving run is a single-threaded discrete-event loop with no wall
clock and no unseeded randomness anywhere.  Engine bookkeeping (queueing,
deadlines, records) happens in trace-relative time; only the executor sees
the absolute host timeline.

Failure handling rides on the PR-1 fault subsystem: transient faults are
retried inside the runtime scheduler, layers that lose their concurrency
path degrade to serial dispatch (the batch completes, just slower), and a
batch whose retries exhaust (:class:`~repro.errors.DegradedError`) is
failed as a unit — its requests are accounted ``FAILED`` and the engine
keeps serving the rest of the trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.core.analytical_model import AnalyticalModel, ConcurrencyDecision
from repro.core.framework import GLP4NN
from repro.core.runtime_scheduler import DispatchPolicy
from repro.errors import DegradedError, ReproError
from repro.gpusim.device import DEVICE_CATALOG, DeviceProperties, get_device
from repro.gpusim.engine import GPU
from repro.nn.net import Net
from repro.nn.zoo import (
    build_caffenet,
    build_cifar10,
    build_googlenet,
    build_lenet,
    build_siamese,
)
from repro.obs.metrics import counter_inc, gauge_max, gauge_set, observe
from repro.obs.spans import instant, span
from repro.runtime.executor import (
    Executor,
    FixedStreamExecutor,
    GLP4NNExecutor,
    NaiveExecutor,
)
from repro.serve.batcher import DynamicBatcher, LoweredNetCache, default_buckets
from repro.serve.queue import (
    AdmissionController,
    BoundedQueue,
    OverflowPolicy,
    QueueOrder,
)
from repro.serve.report import ServingReport
from repro.serve.request import ArrivalTrace
from repro.serve.slo import Outcome, SLOTracker

_EPS = 1e-9

#: Networks servable by name (lowercase) — the zoo builders all accept
#: ``batch`` and ``seed`` keywords, which is all the shape cache needs.
SERVE_NETS: dict[str, Callable[..., Net]] = {
    "cifar10": build_cifar10,
    "lenet": build_lenet,
    "siamese": build_siamese,
    "caffenet": build_caffenet,
    "googlenet": build_googlenet,
}

EXECUTOR_KINDS = ("naive", "fixed", "glp4nn")


def resolve_net(name: str) -> Callable[..., Net]:
    """Look up a servable network builder by case-insensitive name."""
    try:
        return SERVE_NETS[name.lower()]
    except KeyError:
        raise ReproError(
            f"unknown network {name!r}; servable: {', '.join(SERVE_NETS)}"
        ) from None


def resolve_device(name: str) -> DeviceProperties:
    """Catalog lookup tolerant of CLI spellings (``titan-xp``, ``p100``)."""
    wanted = name.lower().replace("-", "").replace("_", "")
    for key in DEVICE_CATALOG:
        if key.lower() == wanted:
            return get_device(key)
    return get_device(name)     # let the catalog raise its usual error


def deterministic_analyze_fn(gpu: GPU) -> Callable:
    """An analyzer whose ``T_a`` charge is explicitly nominal.

    Historically the stock analytical model stamped each decision with
    the *wall-clock* time the MILP solve took, and serving had to replace
    it with a nominal cost derived from the solver's deterministic work
    counters so runs were replayable.  The stock model now uses that same
    nominal formula itself (the ``wall-clock`` lint rule bans host-time
    reads in simulated paths); this wrapper remains as serving's explicit
    statement of the charge it simulates — and as the seam to restamp
    ``analysis_time_us`` if the stock formula ever changes.
    """
    model = AnalyticalModel(gpu.props)

    def analyze(layer_key, profiles) -> ConcurrencyDecision:
        decision = model.solve(layer_key, profiles)
        nominal_us = (
            20.0
            + 0.4 * decision.solver_iterations
            + 4.0 * decision.solver_nodes
        )
        return replace(decision, analysis_time_us=nominal_us)

    return analyze


def make_executor(kind: str, gpu: GPU, fixed_streams: int = 4) -> Executor:
    """Build one of the comparable executors by name.

    The GLP4NN executor gets the deterministic-``T_a`` analyzer (see
    :func:`deterministic_analyze_fn`) so serving runs are replayable.
    """
    if kind == "naive":
        return NaiveExecutor(gpu)
    if kind == "fixed":
        return FixedStreamExecutor(gpu, fixed_streams)
    if kind == "glp4nn":
        framework = GLP4NN([gpu], policy=DispatchPolicy.MODEL,
                           analyze_fn=deterministic_analyze_fn(gpu))
        return GLP4NNExecutor(gpu, framework=framework)
    raise ReproError(
        f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
    )


class ServingEngine:
    """Serve an arrival trace through one executor on one device.

    Parameters
    ----------
    executor:
        Where batches run (naive / fixed / GLP4NN — the comparison axis).
    net_builder:
        Zoo-style network factory (``batch=``, ``seed=`` keywords).
    max_batch, max_wait_us:
        Dynamic-batching knobs (timeout-or-full).
    queue_capacity, overflow, order:
        Bounded-queue backpressure configuration.
    slo_admission:
        Enable the SLO-aware admission gate (reject predictably-late
        arrivals using the online service-time estimate).
    warmup:
        Pre-lower and pre-profile every batch bucket before the trace
        starts, so GLP4NN's one-time profiling cost is not charged to the
        first unlucky requests.  Warmup time is excluded from the report.
    """

    def __init__(
        self,
        executor: Executor,
        net_builder: Callable[..., Net],
        *,
        net_name: str = "",
        max_batch: int = 8,
        max_wait_us: float = 200.0,
        queue_capacity: int = 64,
        overflow: OverflowPolicy = OverflowPolicy.REJECT_NEWEST,
        order: QueueOrder = QueueOrder.FIFO,
        slo_admission: bool = True,
        buckets: Optional[Sequence[int]] = None,
        seed: int = 0,
        warmup: bool = True,
        ewma_alpha: float = 0.3,
    ) -> None:
        if not 0.0 < ewma_alpha <= 1.0:
            raise ReproError(f"EWMA alpha must be in (0, 1], got {ewma_alpha}")
        self.executor = executor
        self.gpu = executor.gpu
        self.net_name = net_name
        self.queue = BoundedQueue(queue_capacity, overflow=overflow,
                                  order=order)
        self.batcher = DynamicBatcher(max_batch, max_wait_us)
        self.cache = LoweredNetCache(
            net_builder, buckets or default_buckets(max_batch), seed=seed)
        self.admission = AdmissionController(enabled=slo_admission)
        self.slo = SLOTracker()
        self.warmup = warmup
        self.ewma_alpha = ewma_alpha
        #: Online per-request service-time estimate (EWMA, simulated µs).
        self.service_estimate_us: Optional[float] = None
        self.failed_batches = 0
        self._warmed = False
        self._base_us = 0.0

    # ------------------------------------------------------------------
    def warm_up(self) -> None:
        """Lower and execute every bucket once ahead of serving.

        For the GLP4NN executor this is the Fig. 6 profiling pass per batch
        shape; a second run of the largest bucket then seeds the admission
        controller's service-time estimate with a steady-state number.
        """
        if self._warmed:
            return
        with span("serve.warmup", cat="serve",
                  buckets=len(self.cache.buckets)):
            for bucket in self.cache.buckets:
                _, works = self.cache.works_for(bucket)
                for work in works:
                    self.executor.run(work)
            largest, works = self.cache.works_for(self.cache.buckets[-1])
            start = self.gpu.host_time
            for work in works:
                self.executor.run(work)
            self._update_estimate((self.gpu.host_time - start) / largest)
        self._warmed = True

    def _update_estimate(self, per_request_us: float) -> None:
        if self.service_estimate_us is None:
            self.service_estimate_us = per_request_us
        else:
            a = self.ewma_alpha
            self.service_estimate_us = (
                a * per_request_us + (1.0 - a) * self.service_estimate_us
            )

    # ------------------------------------------------------------------
    def serve(self, trace: ArrivalTrace) -> ServingReport:
        """Run the whole trace to completion and return the report."""
        if self.warmup:
            self.warm_up()
        base = self._base_us = self.gpu.host_time
        pending = deque(trace.requests)
        while pending or len(self.queue):
            now = self.gpu.host_time - base
            while pending and pending[0].arrival_us <= now + _EPS:
                self._arrive(pending.popleft(), now)
            if not len(self.queue):
                if not pending:
                    break
                # Idle until the next arrival (simulated clock only).
                self.gpu.host_time = max(
                    self.gpu.host_time, base + pending[0].arrival_us)
                continue
            if self.batcher.ready(self.queue, now,
                                  more_arrivals=bool(pending)):
                self._run_batch()
                continue
            fire_at = self.batcher.fire_time_us(self.queue)
            assert fire_at is not None
            target = fire_at
            if pending:
                target = min(target, pending[0].arrival_us)
            self.gpu.host_time = max(self.gpu.host_time, base + target)
        return self.report(trace)

    # ------------------------------------------------------------------
    def _arrive(self, request, now: float) -> None:
        if not self.admission.admits(request, now, len(self.queue),
                                     self.service_estimate_us):
            self.slo.shed(request, Outcome.SHED_ADMISSION,
                          detail="projected finish past deadline")
            instant("serve.reject", cat="serve", rid=request.rid,
                    why="admission")
            return
        admitted = self.queue.offer(request, now)
        for victim in self.queue.drain_evicted():
            self.slo.shed(victim, Outcome.SHED_QUEUE, detail="evicted")
            instant("serve.reject", cat="serve", rid=victim.rid,
                    why="evicted")
        if not admitted:
            self.slo.shed(request, Outcome.SHED_QUEUE, detail="queue full")
            instant("serve.reject", cat="serve", rid=request.rid,
                    why="queue full")
        else:
            instant("serve.admit", cat="serve", rid=request.rid,
                    depth=len(self.queue))
        gauge_set("serve.queue.depth", len(self.queue))
        gauge_max("serve.queue.high_water", self.queue.high_water)

    def _run_batch(self) -> None:
        batch = self.batcher.form(self.queue)
        bucket, works = self.cache.works_for(len(batch))
        start = self.gpu.host_time
        failure = ""
        with span("serve.batch", cat="serve", size=len(batch),
                  bucket=bucket) as h:
            try:
                for work in works:
                    self.executor.run(work)
            except DegradedError as e:
                failure = str(e)
                self.failed_batches += 1
                h.set(failed=True)
                try:
                    # Best-effort drain so the next batch starts clean;
                    # under a persistent sync fault this may fail too — the
                    # retry backoffs already advanced the clock, so serving
                    # proceeds.
                    self.gpu.synchronize()
                except ReproError:
                    pass
        counter_inc("serve.batches")
        observe("serve.batch_size", len(batch))
        if failure:
            counter_inc("serve.failed_batches")
        finish = self.gpu.host_time - self._base_us
        for request in batch:
            if failure:
                self.slo.shed(request, Outcome.FAILED, detail=failure)
            else:
                rec = self.slo.complete(request, finish,
                                        batch_size=len(batch))
                if rec.latency_us is not None:
                    observe("serve.latency_us", rec.latency_us)
        if not failure:
            self._update_estimate((self.gpu.host_time - start) / len(batch))

    # ------------------------------------------------------------------
    def degraded_layer_runs(self) -> int:
        """Layer executions that fell back to serial dispatch (faults)."""
        return len(self.executor.scheduler.degraded_runs())

    def report(self, trace: ArrivalTrace) -> ServingReport:
        """Build the run's :class:`~repro.serve.report.ServingReport`."""
        summary = self.slo.summary()
        batches = self.batcher.batches_formed
        mean_batch = (self.batcher.requests_batched / batches
                      if batches else 0.0)
        return ServingReport(
            executor=type(self.executor).__name__,
            net=self.net_name or "?",
            device=self.gpu.props.name,
            trace_kind=trace.kind,
            rps=trace.rps,
            duration_us=trace.duration_us,
            slo_us=(trace.requests[0].slo_us if trace.requests else 0.0),
            seed=trace.seed,
            requests=summary["requests"],
            ok=summary["ok"],
            late=summary["late"],
            shed_queue=summary["shed_queue"],
            shed_admission=summary["shed_admission"],
            failed=summary["failed"],
            batches=batches,
            mean_batch=mean_batch,
            lowerings=self.cache.lowerings,
            degraded_layers=self.degraded_layer_runs(),
            makespan_us=self.gpu.host_time - self._base_us,
            latency_mean_us=summary.get("latency_mean_us"),
            latency_p50_us=summary.get("latency_p50_us"),
            latency_p95_us=summary.get("latency_p95_us"),
            latency_p99_us=summary.get("latency_p99_us"),
            latency_max_us=summary.get("latency_max_us"),
            extra={
                "failed_batches": self.failed_batches,
                "queue_high_water": self.queue.high_water,
                "service_estimate_us": self.service_estimate_us or 0.0,
            },
        )


def serve_trace(
    net: str,
    device: str,
    executor_kind: str,
    trace: ArrivalTrace,
    *,
    fixed_streams: int = 4,
    **engine_kwargs,
) -> ServingReport:
    """One-call serving run: fresh device, fresh executor, one trace.

    The convenience entry point the CLI and benchmarks use; everything is
    derived from the arguments, so same inputs give identical reports.
    """
    builder = resolve_net(net)
    gpu = GPU(resolve_device(device), record_timeline=False)
    executor = make_executor(executor_kind, gpu, fixed_streams=fixed_streams)
    engine = ServingEngine(executor, builder, net_name=net.lower(),
                           **engine_kwargs)
    report = engine.serve(trace)
    return replace(report, executor=executor_kind)
