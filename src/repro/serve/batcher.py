"""Dynamic batching and the per-shape lowered-work cache.

Dynamic batching is the standard *timeout-or-full* policy: a batch fires as
soon as ``max_batch`` requests are waiting **or** the most stale waiting
request has been queued ``max_wait_us`` — latency is traded for GPU
efficiency with exactly two knobs.

A batch of ``B`` single-sample requests executes as one forward pass at
batch size ``B``.  Because the lowering in :mod:`repro.runtime.lowering` is
shape-driven, every *distinct* batch size is a distinct kernel stream — so
batch sizes are rounded up to a small set of power-of-two **buckets**
(the padding trick real serving stacks use to bound their engine-cache
size), and each bucket's network is built and lowered exactly once, then
replayed for every batch that lands in it.  The cached works are relabeled
``layer@bB`` so the resource tracker and the concurrency maintainer keep
separate profiles and stream-pool decisions per batch shape; GLP4NN then
sizes its pool for the shape actually being served.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.errors import ReproError
from repro.kernels.ir import LayerWork
from repro.nn.net import Net
from repro.runtime.lowering import lower_net
from repro.serve.queue import BoundedQueue


def default_buckets(max_batch: int) -> tuple[int, ...]:
    """Power-of-two batch buckets up to and including ``max_batch``.

    >>> default_buckets(12)
    (1, 2, 4, 8, 12)
    """
    if max_batch < 1:
        raise ReproError(f"max batch must be >= 1, got {max_batch}")
    buckets = []
    b = 1
    while b < max_batch:
        buckets.append(b)
        b *= 2
    buckets.append(max_batch)
    return tuple(buckets)


class LoweredNetCache:
    """Build-and-lower each batch bucket once; replay forever after.

    Parameters
    ----------
    builder:
        Network factory accepting a ``batch`` keyword (the zoo builders).
    buckets:
        Allowed batch sizes, ascending.  A batch of ``n`` requests runs at
        the smallest bucket ``>= n`` (the padding waste is the price of a
        bounded cache).
    seed:
        Forwarded to the builder so cached networks are reproducible.
    """

    def __init__(self, builder: Callable[..., Net],
                 buckets: Sequence[int], seed: int = 0) -> None:
        if not buckets:
            raise ReproError("need at least one batch bucket")
        ordered = sorted(set(int(b) for b in buckets))
        if ordered[0] < 1:
            raise ReproError(f"batch buckets must be >= 1, got {ordered}")
        self.builder = builder
        self.buckets = tuple(ordered)
        self.seed = seed
        self._works: dict[int, tuple[LayerWork, ...]] = {}
        self.lowerings = 0          # cache misses (distinct shapes built)

    def bucket_for(self, n: int) -> int:
        """Smallest bucket that fits ``n`` requests."""
        if n < 1:
            raise ReproError(f"batch of {n} requests cannot be lowered")
        for b in self.buckets:
            if b >= n:
                return b
        raise ReproError(
            f"batch of {n} exceeds the largest bucket {self.buckets[-1]}"
        )

    def works_for(self, n: int) -> tuple[int, tuple[LayerWork, ...]]:
        """Return ``(bucket, forward works)`` for a batch of ``n`` requests."""
        bucket = self.bucket_for(n)
        cached = self._works.get(bucket)
        if cached is None:
            net = self.builder(batch=bucket, seed=self.seed)
            net.set_mode(train=False)
            works = tuple(
                dataclasses.replace(w, layer=f"{w.layer}@b{bucket}")
                for w in lower_net(net, "forward")
            )
            self._works[bucket] = cached = works
            self.lowerings += 1
        return bucket, cached


class DynamicBatcher:
    """Timeout-or-full batch formation over a :class:`BoundedQueue`."""

    def __init__(self, max_batch: int = 8, max_wait_us: float = 200.0) -> None:
        if max_batch < 1:
            raise ReproError(f"max batch must be >= 1, got {max_batch}")
        if max_wait_us < 0:
            raise ReproError(f"max wait must be >= 0, got {max_wait_us}")
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self.batches_formed = 0
        self.requests_batched = 0

    # ------------------------------------------------------------------
    def fire_time_us(self, queue: BoundedQueue) -> Optional[float]:
        """Absolute time at which the current queue head times out."""
        oldest = queue.oldest_enqueue_us()
        if oldest is None:
            return None
        return oldest + self.max_wait_us

    def ready(self, queue: BoundedQueue, now: float,
              more_arrivals: bool) -> bool:
        """Should a batch fire at ``now``?

        Fires when the queue holds a full batch, the head request has
        waited out ``max_wait_us``, or no further arrivals exist (there is
        nothing left to wait for).
        """
        if not len(queue):
            return False
        if len(queue) >= self.max_batch or not more_arrivals:
            return True
        fire_at = self.fire_time_us(queue)
        assert fire_at is not None
        return now >= fire_at - 1e-9

    def form(self, queue: BoundedQueue) -> list:
        """Pop the next batch off the queue (caller checked :meth:`ready`)."""
        batch = queue.pop_batch(self.max_batch)
        if not batch:
            raise ReproError("cannot form a batch from an empty queue")
        self.batches_formed += 1
        self.requests_batched += len(batch)
        return batch
