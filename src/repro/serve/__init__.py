"""Inference serving on the GLP4NN runtime: batching, SLOs, scheduling.

The training side of this repo reproduces GLP4NN's claim that batch-level
kernel concurrency speeds up DNN *training*; this package turns the same
runtime into an **inference-serving stack** so the serving-side claims
(Opara-style stream concurrency for inference, load-adaptive concurrency
control) can be measured on the simulator too:

* :mod:`repro.serve.request` — inference requests with deadlines and
  seedable open-loop arrival traces (Poisson and bursty), all in simulated
  time;
* :mod:`repro.serve.queue` — bounded admission queue with backpressure
  policies plus an SLO-aware admission controller;
* :mod:`repro.serve.batcher` — timeout-or-full dynamic batching and the
  per-batch-shape lowered-work cache;
* :mod:`repro.serve.engine` — the serving loop driving batches through an
  existing executor (naive / fixed-stream / GLP4NN), degrading gracefully
  under injected faults;
* :mod:`repro.serve.slo` / :mod:`repro.serve.report` — per-request latency
  accounting, percentile/goodput metrics and deterministic reports.

Everything is deterministic: same trace seed, same report — byte for byte.
"""

from repro.serve.batcher import DynamicBatcher, LoweredNetCache, default_buckets
from repro.serve.engine import (
    EXECUTOR_KINDS,
    SERVE_NETS,
    ServingEngine,
    make_executor,
    resolve_device,
    resolve_net,
    serve_trace,
)
from repro.serve.queue import (
    AdmissionController,
    BoundedQueue,
    OverflowPolicy,
    QueueOrder,
)
from repro.serve.report import ServingReport, comparison_table
from repro.serve.request import (
    ArrivalTrace,
    InferenceRequest,
    TRACE_KINDS,
    bursty_trace,
    make_trace,
    poisson_trace,
)
from repro.serve.slo import Outcome, RequestRecord, SLOTracker

__all__ = [
    "ArrivalTrace",
    "InferenceRequest",
    "TRACE_KINDS",
    "poisson_trace",
    "bursty_trace",
    "make_trace",
    "BoundedQueue",
    "AdmissionController",
    "OverflowPolicy",
    "QueueOrder",
    "DynamicBatcher",
    "LoweredNetCache",
    "default_buckets",
    "ServingEngine",
    "serve_trace",
    "make_executor",
    "resolve_net",
    "resolve_device",
    "SERVE_NETS",
    "EXECUTOR_KINDS",
    "Outcome",
    "RequestRecord",
    "SLOTracker",
    "ServingReport",
    "comparison_table",
]
