"""Inference requests and open-loop arrival traces.

Serving experiments are *open loop*: arrival times are drawn up front from a
seeded generator and never react to the system's speed, so an overloaded
configuration visibly builds queueing delay instead of silently slowing the
workload down.  All times are **simulated microseconds** relative to the
start of the trace — nothing in this package ever reads a wall clock; the
engine maps trace offsets onto the device's host timeline
(:attr:`repro.gpusim.engine.GPU.host_time`).

Two trace shapes cover the classic serving benchmarks:

* :func:`poisson_trace` — memoryless arrivals at a constant rate, the
  standard stationary-load model;
* :func:`bursty_trace` — a two-phase Markov-modulated Poisson process that
  alternates a quiet phase and a burst phase, the on/off pattern production
  traffic actually exhibits (and the case adaptive admission control is
  for).

The same ``(rps, duration, seed)`` triple always yields byte-identical
traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class InferenceRequest:
    """One single-sample inference request.

    ``arrival_us`` and ``deadline_us`` are offsets from the trace start;
    the deadline is the arrival plus the request's SLO budget.
    """

    rid: int
    arrival_us: float
    deadline_us: float

    def __post_init__(self) -> None:
        if self.arrival_us < 0:
            raise ReproError(f"request {self.rid}: negative arrival time")
        if self.deadline_us < self.arrival_us:
            raise ReproError(
                f"request {self.rid}: deadline {self.deadline_us} precedes "
                f"arrival {self.arrival_us}"
            )

    @property
    def slo_us(self) -> float:
        """The request's latency budget."""
        return self.deadline_us - self.arrival_us


@dataclass(frozen=True)
class ArrivalTrace:
    """An ordered sequence of requests plus the parameters that made it."""

    requests: tuple[InferenceRequest, ...]
    kind: str
    rps: float
    duration_us: float
    seed: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        arrivals = [r.arrival_us for r in self.requests]
        if arrivals != sorted(arrivals):
            raise ReproError("trace arrivals must be sorted")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def offered_rps(self) -> float:
        """Realized offered load (requests per second of trace time)."""
        if self.duration_us <= 0:
            return 0.0
        return len(self.requests) / (self.duration_us * 1e-6)


def _check_params(rps: float, duration_us: float, slo_us: float) -> None:
    if rps <= 0:
        raise ReproError(f"arrival rate must be positive, got {rps}")
    if duration_us <= 0:
        raise ReproError(f"trace duration must be positive, got {duration_us}")
    if slo_us <= 0:
        raise ReproError(f"SLO budget must be positive, got {slo_us}")


def poisson_trace(rps: float, duration_us: float, slo_us: float,
                  seed: int = 0) -> ArrivalTrace:
    """Constant-rate Poisson arrivals over ``duration_us``.

    >>> t = poisson_trace(rps=10_000, duration_us=5_000, slo_us=2_000, seed=1)
    >>> t.requests == poisson_trace(10_000, 5_000, 2_000, seed=1).requests
    True
    """
    _check_params(rps, duration_us, slo_us)
    rng = random.Random(seed)
    mean_gap_us = 1e6 / rps
    requests = []
    t = rng.expovariate(1.0) * mean_gap_us
    while t < duration_us:
        requests.append(InferenceRequest(
            rid=len(requests), arrival_us=t, deadline_us=t + slo_us))
        t += rng.expovariate(1.0) * mean_gap_us
    return ArrivalTrace(tuple(requests), kind="poisson", rps=rps,
                        duration_us=duration_us, seed=seed)


def bursty_trace(rps: float, duration_us: float, slo_us: float,
                 seed: int = 0, burst_factor: float = 4.0,
                 period_us: float = 2_000.0,
                 duty_cycle: float = 0.25) -> ArrivalTrace:
    """On/off bursty arrivals averaging ``rps`` overall.

    The trace alternates a burst phase (``duty_cycle`` of each
    ``period_us``) at ``burst_factor`` times the base rate and a quiet
    phase at a rate chosen so the long-run average stays ``rps``.  A
    ``burst_factor`` of 1 degenerates to :func:`poisson_trace`.
    """
    _check_params(rps, duration_us, slo_us)
    if burst_factor < 1.0:
        raise ReproError(f"burst factor must be >= 1, got {burst_factor}")
    if not 0.0 < duty_cycle < 1.0:
        raise ReproError(f"duty cycle must be in (0, 1), got {duty_cycle}")
    # Solve quiet_rate so duty*burst + (1-duty)*quiet == 1 (in units of rps).
    quiet_scale = (1.0 - duty_cycle * burst_factor) / (1.0 - duty_cycle)
    quiet_scale = max(quiet_scale, 0.0)
    rng = random.Random(seed)
    requests = []
    t = 0.0
    while True:
        phase = (t % period_us) / period_us
        scale = burst_factor if phase < duty_cycle else quiet_scale
        rate_per_us = rps * 1e-6 * scale
        if rate_per_us <= 0.0:
            # Quiet phase with zero rate: jump to the next burst window.
            t = (t // period_us + 1.0) * period_us
            continue
        t += rng.expovariate(1.0) / rate_per_us
        if t >= duration_us:
            break
        requests.append(InferenceRequest(
            rid=len(requests), arrival_us=t, deadline_us=t + slo_us))
    return ArrivalTrace(tuple(requests), kind="bursty", rps=rps,
                        duration_us=duration_us, seed=seed)


TRACE_KINDS = {"poisson": poisson_trace, "bursty": bursty_trace}


def make_trace(kind: str, rps: float, duration_us: float, slo_us: float,
               seed: int = 0) -> ArrivalTrace:
    """Build a trace by kind name (the CLI entry point)."""
    try:
        builder = TRACE_KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown trace kind {kind!r}; expected one of "
            f"{', '.join(TRACE_KINDS)}"
        ) from None
    return builder(rps, duration_us, slo_us, seed=seed)
