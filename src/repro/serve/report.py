"""Serving reports: one run's metrics, renderable and comparable.

A :class:`ServingReport` is pure data derived from the simulated run —
no wall-clock timestamps, no object ids — so two runs with the same seed
render **byte-identical** text and JSON (the determinism contract the
serving benchmarks assert).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.bench.reporting import format_table


@dataclass(frozen=True)
class ServingReport:
    """Metrics of one serving run (one executor, one trace)."""

    executor: str
    net: str
    device: str
    trace_kind: str
    rps: float
    duration_us: float
    slo_us: float
    seed: int
    # outcome counters
    requests: int
    ok: int
    late: int
    shed_queue: int
    shed_admission: int
    failed: int
    # batching
    batches: int
    mean_batch: float
    lowerings: int
    degraded_layers: int
    # timing (simulated µs)
    makespan_us: float
    latency_mean_us: Optional[float] = None
    latency_p50_us: Optional[float] = None
    latency_p95_us: Optional[float] = None
    latency_p99_us: Optional[float] = None
    latency_max_us: Optional[float] = None
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def goodput(self) -> float:
        """Fraction of issued requests that met their deadline."""
        if not self.requests:
            return 0.0
        return self.ok / self.requests

    @property
    def completed(self) -> int:
        return self.ok + self.late

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of simulated time."""
        if self.makespan_us <= 0:
            return 0.0
        return self.completed / (self.makespan_us * 1e-6)

    # ------------------------------------------------------------------
    def _lat(self, value: Optional[float]) -> str:
        return "-" if value is None else f"{value / 1e3:.3f}"

    def render(self) -> str:
        """Multi-line plain-text summary of this run."""
        lines = [
            f"[serve] {self.net} on {self.device} — {self.executor} executor",
            f"  trace: {self.trace_kind}, {self.rps:.0f} rps offered over "
            f"{self.duration_us / 1e3:.1f} ms (seed {self.seed}), "
            f"SLO {self.slo_us / 1e3:.3f} ms",
            f"  requests: {self.requests} issued, {self.ok} on time, "
            f"{self.late} late, {self.shed_queue} shed (queue), "
            f"{self.shed_admission} shed (admission), {self.failed} failed",
            f"  goodput: {self.goodput * 100:.1f}%   throughput: "
            f"{self.throughput_rps:.0f} rps over "
            f"{self.makespan_us / 1e3:.1f} ms served",
            f"  batches: {self.batches} (mean size {self.mean_batch:.2f}, "
            f"{self.lowerings} shape lowerings, "
            f"{self.degraded_layers} degraded layer runs)",
            f"  latency ms: mean {self._lat(self.latency_mean_us)}, "
            f"p50 {self._lat(self.latency_p50_us)}, "
            f"p95 {self._lat(self.latency_p95_us)}, "
            f"p99 {self._lat(self.latency_p99_us)}, "
            f"max {self._lat(self.latency_max_us)}",
        ]
        return "\n".join(lines)

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, data only)."""
        doc = {k: v for k, v in self.__dict__.items() if k != "extra"}
        doc["goodput"] = self.goodput
        doc["throughput_rps"] = self.throughput_rps
        doc["extra"] = {k: v for k, v in self.extra.items()
                        if isinstance(v, (int, float, str, bool))}
        return json.dumps(doc, indent=1, sort_keys=True)


def comparison_table(reports: Sequence[ServingReport]) -> str:
    """Side-by-side executor comparison at one arrival rate.

    This is the serving analogue of the paper's Fig. 7 speedup table: same
    workload, same device, scheduling policy as the only variable.
    """
    headers = ["executor", "goodput %", "ok", "late", "shed", "failed",
               "p50 ms", "p99 ms", "batches"]
    rows = []
    for r in reports:
        rows.append([
            r.executor,
            f"{r.goodput * 100:.1f}",
            r.ok,
            r.late,
            r.shed_queue + r.shed_admission,
            r.failed,
            r._lat(r.latency_p50_us),
            r._lat(r.latency_p99_us),
            r.batches,
        ])
    title = ""
    if reports:
        r0 = reports[0]
        title = (f"[serve] {r0.net} on {r0.device}: {r0.rps:.0f} rps "
                 f"({r0.trace_kind}), SLO {r0.slo_us / 1e3:.3f} ms")
    return format_table(headers, rows, title=title)
