"""Ablation: occupancy-MILP analyzer vs time-predictive analyzer.

The paper's kernel analyzer is explicitly pluggable.  This experiment
compares the default occupancy-maximizing MILP (Eqs. 1-9) against the
:mod:`repro.core.predictive_model` alternative, which minimizes a
closed-form layer-time prediction, on layers spanning the launch-bound,
medium and saturated regimes.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    cached,
    conv_forward_work,
    fresh_gpu,
    time_naive,
)
from repro.core import GLP4NN, predictive_analyze_fn
from repro.nn.zoo.table5 import CAFFENET_CONVS, CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import GLP4NNExecutor

DEVICE = "P100"
LAYERS = (SIAMESE_CONVS[0], SIAMESE_CONVS[1], CIFAR10_CONVS[2],
          CAFFENET_CONVS[4])


def _steady(ex, work):
    ex.run(work)
    run = ex.run(work)
    return run.elapsed_us, run.decision.c_out


@cached("analyzer_comparison")
def run_analyzer_comparison() -> ExperimentResult:
    rows = []
    for cfg in LAYERS:
        work = conv_forward_work(cfg)
        base = time_naive(DEVICE, work)

        occ = GLP4NNExecutor(fresh_gpu(DEVICE))
        t_occ, c_occ = _steady(occ, work)

        gpu = fresh_gpu(DEVICE)
        glp = GLP4NN([gpu], analyze_fn=predictive_analyze_fn(gpu.props))
        pred = GLP4NNExecutor(gpu, framework=glp)
        t_pred, c_pred = _steady(pred, work)

        rows.append([
            f"{cfg.net}/{cfg.name}",
            round(base / t_occ, 3), c_occ,
            round(base / t_pred, 3), c_pred,
        ])
    return ExperimentResult(
        experiment="analyzer_comparison",
        title=f"Occupancy MILP vs time-predictive analyzer on {DEVICE} "
              "(speedups over naive)",
        headers=["layer", "occupancy", "C", "predictive", "C"],
        rows=rows,
        notes="both analyzers should land near the per-layer optimum; the "
              "predictive one prefers leaner pools on launch-bound layers",
    )
