"""Wall-clock engine throughput: ``BENCH_9.json`` (ROADMAP item 2).

Every earlier BENCH file measures *simulated* time; this one measures
the simulator itself.  Five workloads cover the engine's consumers:

* ``dag_events`` — raw discrete events/sec on a branchy synthetic DAG
  (streams, event joins, the bare hot loop — no executor, no numpy);
* ``conv_events`` — events/sec under the GLP4NN executor on repeated
  CIFAR10 conv1 forward passes (the BENCH_7 denominator);
* ``serve_requests`` — serving requests completed per wall second
  (lenet on P100, Poisson arrivals);
* ``fuzz_iters`` — schedule-fuzz rounds per wall second (the verify
  CI budget is bounded by this);
* ``certifications`` — interop plan certifications per wall second
  (plan → hazard IR → admission, the static-analysis path).

Methodology: every metric is warmed up once, then measured
``repeats`` times and reported as the **median**, so one noisy run
cannot move the committed number.  A pure-Python calibration loop is
timed alongside and stored in the file; the perf smoke test
(``benchmarks/test_engine_throughput.py``) rescales the committed
baseline by ``local_calibration / recorded_calibration`` before
applying its regression threshold, so a slower CI machine does not
read as an engine regression.

Regenerate the committed file with::

    PYTHONPATH=src python -m repro bench engine --out BENCH_9.json

The committed ``BENCH_9.json`` also records the *pre-optimization*
engine's numbers (captured before the PR-9 fast path landed) under
``"baseline"`` — the ≥2x acceptance criterion compares against those.
Pass ``--baseline old.json`` to carry an existing baseline block
forward when re-measuring.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.gpusim import GPU, KernelSpec, LaunchConfig, get_device
from repro.gpusim.stream import Event, reset_handle_ids

DEVICE = "P100"

#: Median-of-N repetitions per metric (full mode).
REPEATS = 5

#: Pure-Python calibration loop iterations.
CALIBRATION_ITERS = 2_000_000


# ----------------------------------------------------------------------
# calibration


def calibrate(iters: int = CALIBRATION_ITERS) -> float:
    """Wall seconds for a fixed pure-Python busy loop.

    The loop exercises the same interpreter operations the engine hot
    path does (integer arithmetic, comparisons, attribute-free float
    math), so its wall time tracks single-core interpreter speed — the
    resource the engine is bound by.
    """
    t0 = time.perf_counter()
    acc = 0.0
    x = 0
    while x < iters:
        acc += x * 1e-7
        if acc > 1e6:
            acc = 0.0
        x += 1
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# workload bodies (each returns units-of-work completed)


def _dag_pass(width: int, depth: int) -> int:
    """One synthetic-DAG run; returns engine events processed."""
    reset_handle_ids()
    gpu = GPU(get_device(DEVICE), record_timeline=False)
    streams = [gpu.create_stream() for _ in range(width)]
    prev_events: List[Event] = []
    k = 0
    for d in range(depth):
        events = []
        for w, s in enumerate(streams):
            for e in prev_events:
                gpu.wait_event(e, stream=s)
            spec = KernelSpec(
                name=f"k{d}_{w}",
                launch=LaunchConfig(
                    grid=(8 + (k % 13), 1, 1),
                    block=(128 + 32 * (k % 4), 1, 1),
                    shared_mem_dynamic=(k % 3) * 2048,
                ),
                flops_per_thread=1e4 + 137.0 * (k % 29),
                bytes_per_thread=16.0,
            )
            gpu.launch(spec, stream=s)
            k += 1
            ev = Event(name=f"e{d}_{w}")
            gpu.record_event(ev, stream=s)
            events.append(ev)
        prev_events = events if d % 3 == 2 else []
    gpu.synchronize()
    return gpu.events_processed


def _measure_dag(quick: bool) -> Dict[str, float]:
    width, depth, runs = (6, 10, 2) if quick else (6, 30, 4)
    events = 0
    t0 = time.perf_counter()
    for _ in range(runs):
        events += _dag_pass(width, depth)
    wall = time.perf_counter() - t0
    return {"value": events / wall, "events": events, "wall_s": wall}


def _measure_conv(quick: bool) -> Dict[str, float]:
    from repro.nn.zoo.table5 import CIFAR10_CONVS
    from repro.runtime.executor import GLP4NNExecutor
    from repro.runtime.lowering import lower_conv_forward

    reset_handle_ids()
    gpu = GPU(get_device(DEVICE), record_timeline=False)
    ex = GLP4NNExecutor(gpu)
    work = lower_conv_forward(CIFAR10_CONVS[0])
    ex.run(work)                        # profiling pass outside the clock
    passes = 10 if quick else 40
    e0 = gpu.events_processed
    t0 = time.perf_counter()
    for _ in range(passes):
        ex.run_pass([work])
    wall = time.perf_counter() - t0
    events = gpu.events_processed - e0
    return {"value": events / wall, "events": events, "wall_s": wall}


def _measure_serve(quick: bool) -> Dict[str, float]:
    from repro.serve.engine import serve_trace
    from repro.serve.request import poisson_trace

    reset_handle_ids()
    duration = 3_000 if quick else 10_000
    trace = poisson_trace(rps=8000, duration_us=duration, slo_us=4000,
                          seed=1)
    t0 = time.perf_counter()
    report = serve_trace("lenet", DEVICE, "fixed", trace)
    wall = time.perf_counter() - t0
    done = report.completed
    return {"value": done / wall, "requests": done, "wall_s": wall}


def _measure_fuzz(quick: bool) -> Dict[str, float]:
    from repro.verify.schedule import fuzz_schedules

    reset_handle_ids()
    rounds = 2 if quick else 5
    t0 = time.perf_counter()
    report = fuzz_schedules(network="cifar10", device="p100", seed=0,
                            rounds=rounds, batch=4)
    wall = time.perf_counter() - t0
    return {"value": report.rounds_run / wall,
            "rounds": report.rounds_run, "wall_s": wall}


def _measure_certify(quick: bool) -> Dict[str, float]:
    from repro.interop import build_plan, certify, inception_unit

    reset_handle_ids()
    wl = inception_unit("5a", batch=2)
    device = get_device(DEVICE)
    plan = build_plan(wl.graph, "opara", 4, device=device)
    n = 3 if quick else 8
    t0 = time.perf_counter()
    for _ in range(n):
        certify(wl.graph, plan, device=device)
    wall = time.perf_counter() - t0
    return {"value": n / wall, "certifications": n, "wall_s": wall}


#: metric name -> (unit, measurement body).
METRICS: Dict[str, tuple] = {
    "dag_events_per_sec": ("events/sec", _measure_dag),
    "conv_events_per_sec": ("events/sec", _measure_conv),
    "serve_requests_per_sec": ("requests/sec", _measure_serve),
    "fuzz_iters_per_sec": ("rounds/sec", _measure_fuzz),
    "certifications_per_sec": ("plans/sec", _measure_certify),
}


# ----------------------------------------------------------------------
# harness


def _median_of(fn: Callable[[bool], Dict[str, float]], repeats: int,
               quick: bool) -> Dict[str, object]:
    """Warm up once, measure ``repeats`` times, report the median."""
    fn(quick)                           # warmup (also primes imports)
    samples = [fn(quick) for _ in range(repeats)]
    values = [s["value"] for s in samples]
    return {
        "median": statistics.median(values),
        "samples": [round(v, 2) for v in values],
        "detail": {k: v for k, v in samples[0].items() if k != "value"},
    }


def run_engine_throughput(repeats: int = REPEATS, quick: bool = False,
                          metrics: Optional[Sequence[str]] = None
                          ) -> Dict[str, object]:
    """Measure every metric; returns the result document (no file I/O)."""
    out: Dict[str, object] = {
        "bench": "engine_throughput",
        "device": DEVICE,
        "repeats": repeats,
        "quick": quick,
        "calibration_seconds": round(calibrate(), 4),
        "metrics": {},
    }
    for name in (metrics or list(METRICS)):
        unit, fn = METRICS[name]
        m = _median_of(fn, repeats, quick)
        m["unit"] = unit
        m["median"] = round(m["median"], 2)
        out["metrics"][name] = m
    return out


def write_bench(out_path: Union[str, Path] = "BENCH_9.json",
                repeats: int = REPEATS, quick: bool = False,
                baseline: Optional[dict] = None) -> str:
    """Measure and write ``BENCH_9.json``; returns the path.

    ``baseline`` is the pre-optimization engine's result document (same
    shape as :func:`run_engine_throughput` output); when given, its
    medians are recorded under ``"baseline"`` and per-metric speedups
    computed.  Without it, any ``"baseline"`` block already present in
    ``out_path`` is carried forward.
    """
    doc = run_engine_throughput(repeats=repeats, quick=quick)
    if baseline is None:
        p = Path(out_path)
        if p.exists():
            try:
                baseline = json.loads(
                    p.read_text(encoding="utf-8")).get("baseline")
            except (OSError, json.JSONDecodeError):
                baseline = None
    if baseline is not None:
        doc["baseline"] = {
            "calibration_seconds": baseline["calibration_seconds"],
            "metrics": {k: {"median": v["median"], "unit": v["unit"]}
                        for k, v in baseline["metrics"].items()},
            "notes": baseline.get(
                "notes", "pre-optimization engine (before the PR-9 "
                "gpusim fast path)"),
        }
        # Raw median ratio: the baseline is captured back-to-back on the
        # same machine (stash the optimization, measure, pop, measure), so
        # rescaling by the calibration loop would only amplify its run-to-
        # run noise.  Calibration is for *cross-machine* comparisons — the
        # perf smoke test uses it; this ratio deliberately does not.
        doc["speedup_vs_baseline"] = {
            k: round(doc["metrics"][k]["median"]
                     / baseline["metrics"][k]["median"], 3)
            for k in doc["metrics"]
            if k in baseline["metrics"]
            and baseline["metrics"][k]["median"] > 0
        }
    p = Path(out_path)
    p.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return str(p)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.bench.engine_throughput [--out ...]``."""
    import argparse

    ap = argparse.ArgumentParser(
        description="wall-clock gpusim engine throughput (BENCH_9)")
    ap.add_argument("--out", default="BENCH_9.json",
                    help="output JSON path (default: BENCH_9.json)")
    ap.add_argument("--repeats", type=int, default=REPEATS,
                    help=f"median-of-N repetitions (default {REPEATS})")
    ap.add_argument("--quick", action="store_true",
                    help="smaller workloads for CI smoke use")
    ap.add_argument("--baseline", default="",
                    help="result JSON of the pre-optimization engine to "
                         "record under 'baseline'")
    ns = ap.parse_args(argv)
    baseline = None
    if ns.baseline:
        baseline = json.loads(
            Path(ns.baseline).read_text(encoding="utf-8"))
    path = write_bench(ns.out, repeats=ns.repeats, quick=ns.quick,
                       baseline=baseline)
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    print(f"wrote {path}")
    for k, v in doc["metrics"].items():
        line = f"  {k:26s} {v['median']:>12,.2f} {v['unit']}"
        speedup = doc.get("speedup_vs_baseline", {}).get(k)
        if speedup is not None:
            line += f"   ({speedup}x vs baseline)"
        print(line)
    return 0


if __name__ == "__main__":              # pragma: no cover
    raise SystemExit(main())
