"""Fig. 11: convergence invariance — training CIFAR10 on P100.

Trains the CIFAR10-quick network twice on synthetic CIFAR-10: once under
naive Caffe, once under GLP4NN-Caffe.  With the *same* shuffle seed the two
loss curves are bit-identical (scheduling never touches the math); with a
*different* shuffle seed they diverge slightly — exactly the residual
difference the paper attributes to "the shuffle process while fetching
training batch samples".  Both runs reach the same loss plateau.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.data import BatchLoader, make_dataset
from repro.nn.solver import SolverConfig
from repro.nn.zoo import build_cifar10
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.session import TrainingSession

DEVICE = "P100"
ITERATIONS = 120
BATCH = 100
SAMPLES = 2000
REPORT_EVERY = 10


def _train(executor_cls, shuffle_seed: int) -> list[float]:
    net = build_cifar10(batch=BATCH, seed=11, with_accuracy=False)
    dataset = make_dataset("cifar10", num_samples=SAMPLES, seed=29)
    loader = BatchLoader(dataset, BATCH, seed=shuffle_seed)
    executor = executor_cls(fresh_gpu(DEVICE))
    session = TrainingSession(
        net, executor,
        solver_config=SolverConfig(base_lr=0.01, momentum=0.9,
                                   weight_decay=0.004),
    )
    for _ in range(ITERATIONS):
        session.run_iteration(loader.next_batch())
    return session.losses


@cached("fig11")
def run_fig11() -> ExperimentResult:
    caffe = _train(NaiveExecutor, shuffle_seed=5)
    glp_same = _train(GLP4NNExecutor, shuffle_seed=5)
    glp_other = _train(GLP4NNExecutor, shuffle_seed=17)

    rows = []
    for i in range(0, ITERATIONS, REPORT_EVERY):
        rows.append([
            i,
            round(caffe[i], 5),
            round(glp_same[i], 5),
            round(glp_other[i], 5),
        ])
    rows.append([
        "final",
        round(caffe[-1], 5),
        round(glp_same[-1], 5),
        round(glp_other[-1], 5),
    ])
    max_same_gap = max(abs(a - b) for a, b in zip(caffe, glp_same))
    return ExperimentResult(
        experiment="fig11",
        title=f"CIFAR10 training convergence on {DEVICE} (paper Fig. 11)",
        headers=["iteration", "Caffe", "GLP4NN (same shuffle)",
                 "GLP4NN (different shuffle)"],
        rows=rows,
        notes="paper shape: identical convergence; residual difference only "
              "from batch shuffling",
        extra={
            "caffe": caffe,
            "glp4nn_same_shuffle": glp_same,
            "glp4nn_other_shuffle": glp_other,
            "max_same_shuffle_gap": max_same_gap,
        },
    )
