"""Shared experiment plumbing: results, caching, and common runners."""

from __future__ import annotations

import functools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.bench.reporting import format_table
from repro.gpusim.device import get_device
from repro.gpusim.engine import GPU
from repro.kernels.ir import LayerWork
from repro.nn.config import ConvConfig
from repro.runtime.executor import (
    FixedStreamExecutor,
    GLP4NNExecutor,
    NaiveExecutor,
)
from repro.runtime.lowering import lower_conv_forward


@dataclass
class ExperimentResult:
    """One regenerated table/figure: rows + provenance + paper expectation."""

    experiment: str                   # "fig2", "table6", ...
    title: str
    headers: list[str]
    rows: list[list[Any]]
    notes: str = ""
    extra: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        text = format_table(self.headers, self.rows,
                            title=f"[{self.experiment}] {self.title}")
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def to_json(self) -> str:
        return json.dumps({
            "experiment": self.experiment,
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
            "extra": {k: v for k, v in self.extra.items()
                      if isinstance(v, (int, float, str, list, dict))},
        }, indent=1, default=str)

    def column(self, header: str) -> list[Any]:
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


# ----------------------------------------------------------------------
# Result cache: several benchmark tests assert different properties of the
# same (expensive) experiment; run each experiment once per process.
# ----------------------------------------------------------------------
_CACHE: dict[str, ExperimentResult] = {}


def cached(key: str) -> Callable:
    """Decorator caching a zero-argument experiment runner by key."""

    def deco(fn: Callable[[], ExperimentResult]) -> Callable[[], ExperimentResult]:
        @functools.wraps(fn)
        def wrapper() -> ExperimentResult:
            if key not in _CACHE:
                result = fn()
                _CACHE[key] = result
                _maybe_dump(result)
            return _CACHE[key]

        return wrapper

    return deco


def clear_cache() -> None:
    _CACHE.clear()


def _maybe_dump(result: ExperimentResult) -> None:
    """Persist results under ``results/`` when the directory exists."""
    out_dir = os.environ.get("REPRO_RESULTS_DIR", "results")
    if os.path.isdir(out_dir):
        path = os.path.join(out_dir, f"{result.experiment}.json")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(result.to_json())
        with open(os.path.join(out_dir, f"{result.experiment}.txt"), "w",
                  encoding="utf-8") as fh:
            fh.write(result.render() + "\n")


# ----------------------------------------------------------------------
# Common measurement helpers
# ----------------------------------------------------------------------

def fresh_gpu(device: str) -> GPU:
    """A new device instance without timeline recording (cheapest)."""
    return GPU(get_device(device), record_timeline=False)


def time_naive(device: str, work: LayerWork, repeats: int = 1) -> float:
    """Steady-state single-stream time of one layer work, µs."""
    gpu = fresh_gpu(device)
    ex = NaiveExecutor(gpu)
    ex.run(work)  # warm-up (no profiling in naive mode, but be symmetric)
    times = [ex.run(work).elapsed_us for _ in range(repeats)]
    return sum(times) / len(times)


def time_fixed(device: str, work: LayerWork, streams: int,
               repeats: int = 1) -> float:
    """Steady-state time with a fixed stream count, µs."""
    gpu = fresh_gpu(device)
    ex = FixedStreamExecutor(gpu, streams)
    ex.run(work)
    times = [ex.run(work).elapsed_us for _ in range(repeats)]
    return sum(times) / len(times)


def time_glp4nn(device: str, work: LayerWork, repeats: int = 1
                ) -> tuple[float, "object"]:
    """Steady-state GLP4NN time of one layer work + its decision, µs."""
    gpu = fresh_gpu(device)
    ex = GLP4NNExecutor(gpu)
    ex.run(work)  # profiling + analysis pass
    runs = [ex.run(work) for _ in range(repeats)]
    mean = sum(r.elapsed_us for r in runs) / len(runs)
    return mean, runs[-1].decision


def conv_forward_work(cfg: ConvConfig) -> LayerWork:
    return lower_conv_forward(cfg)
