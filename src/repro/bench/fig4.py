"""Fig. 4: best observed number of concurrent streams per CaffeNet layer.

Sweeps stream counts per layer per GPU and reports the count minimizing the
forward time.  Expected shape: the optimum differs across layers *and*
across GPUs — the paper's argument for choosing the number automatically.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    cached,
    conv_forward_work,
    time_fixed,
    time_naive,
)
from repro.gpusim.device import PAPER_DEVICES
from repro.nn.zoo.table5 import CAFFENET_CONVS

SWEEP = (1, 2, 4, 8, 16, 32)


@cached("fig4")
def run_fig4() -> ExperimentResult:
    rows = []
    best_by_device: dict[str, list[int]] = {}
    for cfg in CAFFENET_CONVS:
        work = conv_forward_work(cfg)
        row = [cfg.name]
        for device in PAPER_DEVICES:
            best_s, best_t = 1, time_naive(device, work)
            for s in SWEEP[1:]:
                t = time_fixed(device, work, s)
                if t < best_t:
                    best_s, best_t = s, t
            row.append(best_s)
            best_by_device.setdefault(device, []).append(best_s)
        rows.append(row)
    return ExperimentResult(
        experiment="fig4",
        title="Best observed #streams for CaffeNet's layers (paper Fig. 4)",
        headers=["layer"] + list(PAPER_DEVICES),
        rows=rows,
        notes="paper shape: the optimal stream count varies from GPU to GPU "
              "and layer to layer",
        extra={"sweep": list(SWEEP), "best_by_device": best_by_device},
    )
