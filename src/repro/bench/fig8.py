"""Fig. 8: number of streams chosen by the analytical model, per layer.

For each network's convolution layers on each GPU, run the
profile-and-analyze pass and report the model's ``C_out`` (Eq. 9).
Expected shape: device-dependent values, small for short-kernel layers
(the launch-pipeline bound) and larger for compute-heavy layers.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.gpusim.device import PAPER_DEVICES
from repro.nn.zoo.table5 import TABLE5, NETWORK_ORDER
from repro.runtime.executor import GLP4NNExecutor
from repro.runtime.lowering import lower_conv_forward


@cached("fig8")
def run_fig8() -> ExperimentResult:
    rows = []
    for net in NETWORK_ORDER:
        for cfg in TABLE5[net]:
            row = [net, cfg.name]
            for device in PAPER_DEVICES:
                gpu = fresh_gpu(device)
                ex = GLP4NNExecutor(gpu)
                work = lower_conv_forward(cfg)
                ex.run(work)                      # profile + analyze
                decision = ex.run(work).decision  # cached decision
                assert decision is not None
                row.append(decision.c_out)
            rows.append(row)
    return ExperimentResult(
        experiment="fig8",
        title="Stream-pool size C_out chosen by the analytical model "
              "(paper Fig. 8)",
        headers=["net", "layer"] + list(PAPER_DEVICES),
        rows=rows,
        notes="paper shape: per-layer, per-device configuration; bounded by "
              "Eq. 7's launch-pipeline term for sub-millisecond layers",
    )
