"""Fig. 3: timeline of MNIST conv kernels under multiple CUDA streams.

Reproduces the paper's Visual-Profiler-style timeline showing kernels from
different streams overlapping.  The paper captions the figure "conv1"; in
our simulation the conv1 (MNIST) kernels are shorter than the host launch
pipeline and never overlap — the exact property that makes conv1 *degrade*
in the paper's own Fig. 9 — so the timeline illustration uses the MNIST
network's conv2 layer, where cross-stream overlap genuinely occurs.  The
conv1 no-overlap behaviour is asserted separately (``extra["conv1"]``).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached
from repro.gpusim.device import get_device
from repro.gpusim.engine import GPU
from repro.gpusim.timeline import ascii_timeline
from repro.nn.zoo.table5 import SIAMESE_CONVS
from repro.runtime.executor import FixedStreamExecutor
from repro.runtime.lowering import lower_conv_forward

DEVICE = "P100"
STREAMS = 4


def _conv1_concurrency() -> int:
    gpu = GPU(get_device(DEVICE), record_timeline=True)
    FixedStreamExecutor(gpu, STREAMS).run(lower_conv_forward(SIAMESE_CONVS[0]))
    return gpu.timeline.max_concurrency()


@cached("fig3")
def run_fig3() -> ExperimentResult:
    cfg = SIAMESE_CONVS[1]  # conv2 on MNIST-shaped input (see module doc)
    work = lower_conv_forward(cfg)
    gpu = GPU(get_device(DEVICE), record_timeline=True)
    ex = FixedStreamExecutor(gpu, STREAMS)
    ex.run(work)
    timeline = gpu.timeline
    lanes = ascii_timeline(timeline, width=72)
    by_stream = timeline.by_stream()
    rows = []
    for sid, recs in sorted(by_stream.items()):
        rows.append([
            "default" if sid == 0 else f"stream{sid}",
            len(recs),
            round(sum(r.duration_us for r in recs), 2),
            round(min(r.start_us for r in recs), 2),
            round(max(r.end_us for r in recs), 2),
        ])
    return ExperimentResult(
        experiment="fig3",
        title=f"Kernel timeline, MNIST conv layer with {STREAMS} streams on "
              f"{DEVICE} (paper Fig. 3)",
        headers=["lane", "kernels", "busy us", "first start", "last end"],
        rows=rows,
        notes="lanes rendered below; overlap across lanes is the "
              "concurrent execution the paper visualizes\n" + lanes,
        extra={
            "max_concurrency": timeline.max_concurrency(),
            "span_us": timeline.span_us(),
            "ascii": lanes,
            "conv1_concurrency": _conv1_concurrency(),
        },
    )
