"""Fig. 7: speedup of GLP4NN-Caffe over naive Caffe per training iteration.

The headline experiment: full forward + backward iterations of the four
networks on the three GPUs, naive (single-stream Caffe) vs GLP4NN.  The
measured iteration excludes the one-time profiling/analysis pass, as the
paper does (Table 6 reports that cost separately).

Expected shape: GLP4NN wins on every network (per-iteration), with
magnitude depending on the device and the network's kernel sizes; the
per-layer "up to 4X" of the abstract shows up in the conv-only columns.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.gpusim.device import PAPER_DEVICES
from repro.kernels.ir import LayerWork
from repro.nn.net import Net
from repro.nn.zoo import NETWORKS, NETWORK_ORDER
from repro.runtime.executor import Executor, GLP4NNExecutor, NaiveExecutor
from repro.runtime.lowering import lower_net

#: Construction arguments for the evaluation-scale networks.
_BUILD_ARGS: dict[str, dict] = {
    "CIFAR10": {"batch": 100},
    "Siamese": {"batch": 64},
    "CaffeNet": {"batch": 256},
    "GoogLeNet": {"batch": 32},
}

_WORK_CACHE: dict[str, tuple[list[LayerWork], list[LayerWork]]] = {}


def network_works(name: str) -> tuple[list[LayerWork], list[LayerWork]]:
    """Lowered (forward, backward) works of one evaluation network."""
    if name not in _WORK_CACHE:
        net: Net = NETWORKS[name].build(**_BUILD_ARGS[name])
        _WORK_CACHE[name] = (lower_net(net, "forward"),
                             lower_net(net, "backward"))
    return _WORK_CACHE[name]


def iteration_time(ex: Executor, fwd: list[LayerWork],
                   bwd: list[LayerWork]) -> float:
    """One full training iteration on an already warmed-up executor, µs."""
    return ex.run_pass(fwd) + ex.run_pass(bwd)


@cached("fig7")
def run_fig7() -> ExperimentResult:
    rows = []
    details: dict[str, dict[str, float]] = {}
    for name in NETWORK_ORDER:
        fwd, bwd = network_works(name)
        row = [name]
        for device in PAPER_DEVICES:
            naive = NaiveExecutor(fresh_gpu(device))
            iteration_time(naive, fwd, bwd)               # warm-up
            t_naive = iteration_time(naive, fwd, bwd)

            glp = GLP4NNExecutor(fresh_gpu(device))
            iteration_time(glp, fwd, bwd)                  # profile pass
            t_glp = iteration_time(glp, fwd, bwd)

            s = t_naive / t_glp
            row.append(round(s, 3))
            details[f"{name}/{device}"] = {
                "naive_us": t_naive,
                "glp4nn_us": t_glp,
                "speedup": s,
            }
        rows.append(row)
    return ExperimentResult(
        experiment="fig7",
        title="Per-iteration speedup of GLP4NN-Caffe over Caffe "
              "(paper Fig. 7)",
        headers=["network"] + list(PAPER_DEVICES),
        rows=rows,
        notes="steady-state iterations (one-time profiling excluded, as in "
              "the paper); conv layers parallelized, others unchanged",
        extra={"details": details},
    )
