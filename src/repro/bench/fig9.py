"""Fig. 9: per-layer elapsed time — where GLP4NN loses.

The paper's degradation analysis: CIFAR10 on Titan XP and Siamese on P100,
per-convolution-layer elapsed time under Caffe vs GLP4NN-Caffe.  Expected
shape: layers finishing in about 2 ms (CIFAR10 conv1, Siamese conv1 and
conv1_p) are *slower* under GLP4NN — "the prior kernel has finished before
the next kernel can execute" — while the deeper layers win, and the
networks win overall.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    cached,
    conv_forward_work,
    time_glp4nn,
    time_naive,
)
from repro.nn.zoo.table5 import CIFAR10_CONVS, SIAMESE_CONVS

CASES = (
    ("CIFAR10", "TitanXP", CIFAR10_CONVS),
    ("Siamese", "P100", SIAMESE_CONVS),
)


@cached("fig9")
def run_fig9() -> ExperimentResult:
    rows = []
    for net, device, convs in CASES:
        net_naive = 0.0
        net_glp = 0.0
        for cfg in convs:
            work = conv_forward_work(cfg)
            t_naive = time_naive(device, work)
            t_glp, _ = time_glp4nn(device, work)
            net_naive += t_naive
            net_glp += t_glp
            rows.append([
                f"{net[0]}-{cfg.name}", device,
                round(t_naive / 1000.0, 3),
                round(t_glp / 1000.0, 3),
                round(t_naive / t_glp, 3),
            ])
        rows.append([
            f"{net[0]}-total", device,
            round(net_naive / 1000.0, 3),
            round(net_glp / 1000.0, 3),
            round(net_naive / net_glp, 3),
        ])
    return ExperimentResult(
        experiment="fig9",
        title="Layer elapsed time, Caffe vs GLP4NN-Caffe: CIFAR10 on "
              "TitanXP, Siamese on P100 (paper Fig. 9)",
        headers=["layer", "device", "caffe ms", "glp4nn ms", "speedup"],
        rows=rows,
        notes="paper shape: ~2 ms layers (conv1 / conv1_p) degrade "
              "slightly; the network totals still improve",
    )
