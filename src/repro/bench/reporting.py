"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[Any], ys: Sequence[float],
                  y_label: str = "", width: int = 40) -> str:
    """Render one (x, y) series with proportional bars (a text 'figure')."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    peak = max((abs(y) for y in ys), default=1.0) or 1.0
    lines = [f"{name}" + (f"  [{y_label}]" if y_label else "")]
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(abs(y) / peak * width))) if y else ""
        lines.append(f"  {str(x):>10} | {_fmt(y):>10} {bar}")
    return "\n".join(lines)
