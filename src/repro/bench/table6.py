"""Table 6: one-time overhead of GLP4NN (T_p, T_a, T_total, ratio).

For each network on each GPU: profile + analyze all convolution layers,
report the resource tracker's profiling time ``T_p``, the kernel analyzer's
measured solve time ``T_a``, their sum (Eq. 12, ``T_s ~ 0`` for the static
policy) and the ratio against a training run.

Expected shape: ``T_p`` proportional to the number of kernels collected
(CaffeNet's N=256 batch dominates), ``T_a`` depending on the MILP size, and
a total ratio well under 0.1 % of training.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.core.cost import OverheadModel
from repro.gpusim.device import PAPER_DEVICES
from repro.nn.zoo.table5 import NETWORK_ORDER, TABLE5
from repro.runtime.executor import GLP4NNExecutor
from repro.runtime.lowering import lower_conv_forward

#: Training length used for the ratio column.  The paper trains to
#: convergence; 10,000 iterations is a conservative (short) stand-in — the
#: real ratio would be smaller still.
TRAINING_ITERATIONS = 10_000


@cached("table6")
def run_table6() -> ExperimentResult:
    rows = []
    worst_ratio = 0.0
    for net in NETWORK_ORDER:
        for device in PAPER_DEVICES:
            gpu = fresh_gpu(device)
            ex = GLP4NNExecutor(gpu)
            works = [lower_conv_forward(cfg) for cfg in TABLE5[net]]
            for w in works:
                ex.run(w)          # profiling + analysis pass
            steady = sum(ex.run(w).elapsed_us for w in works)
            report = OverheadModel(ex.framework).report(gpu, network=net)
            training_us = steady * TRAINING_ITERATIONS
            ratio = report.ratio_of(training_us)
            worst_ratio = max(worst_ratio, ratio)
            rows.append([
                net, device,
                round(report.t_p_us / 1000.0, 3),
                round(report.t_a_us / 1000.0, 3),
                round(report.t_total_us / 1000.0, 3),
                f"{ratio * 100:.5f}%",
            ])
    return ExperimentResult(
        experiment="table6",
        title="One-time overhead of GLP4NN (paper Table 6)",
        headers=["model", "GPU", "T_p ms", "T_a ms", "T_total ms", "ratio"],
        rows=rows,
        notes=f"ratio against {TRAINING_ITERATIONS} conv-layer training "
              "iterations; paper reports < 0.1% in all cases",
        extra={"worst_ratio": worst_ratio},
    )
