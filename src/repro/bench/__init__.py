"""Experiment harness: regenerates every table and figure of the paper.

Each ``figN``/``tableN`` module exposes a ``run_*`` function returning an
:class:`~repro.bench.harness.ExperimentResult` — the rows/series the paper
reports, plus our measured values.  ``benchmarks/`` wraps these in
pytest-benchmark entries and asserts the *shape* of each result (who wins,
where the crossovers are), not absolute numbers, since the substrate is a
simulator rather than the authors' testbed.

Experiment index (see DESIGN.md for the full mapping):

========  ==========================================================
Table 1   GPU architecture features           ``repro.bench.table1``
Fig. 2    CaffeNet conv speedups vs streams   ``repro.bench.fig2``
Fig. 3    conv1 multi-stream kernel timeline  ``repro.bench.fig3``
Fig. 4    best stream count per layer/GPU     ``repro.bench.fig4``
Fig. 7    GLP4NN-Caffe vs Caffe per iteration ``repro.bench.fig7``
Fig. 8    analyzer stream configurations      ``repro.bench.fig8``
Fig. 9    layer time incl. degradation cases  ``repro.bench.fig9``
Fig. 10   GLP4NN memory consumption           ``repro.bench.fig10``
Fig. 11   convergence invariance              ``repro.bench.fig11``
Table 6   one-time overhead T_p/T_a/ratio     ``repro.bench.table6``
ablation  launch bound / greedy / policies    ``repro.bench.ablations``
BENCH_7   graph replay vs eager (loss cases)  ``repro.bench.graph_launch``
========  ==========================================================
"""

from repro.bench.harness import ExperimentResult, cached, clear_cache
from repro.bench.reporting import format_table, format_series

__all__ = [
    "ExperimentResult",
    "cached",
    "clear_cache",
    "format_table",
    "format_series",
]
