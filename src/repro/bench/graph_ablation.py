"""Ablation: DAG dispatch of an inception module (future work #1).

GLP4NN's layer-wise scheduler synchronizes the device between convolution
units; GoogLeNet's inception modules contain four *independent* branches,
so those barriers cost real time.  This experiment builds inception-5b's
convolution units (Table 5's conv_3..conv_6 plus the 3x3/5x5 bodies) as one
kernel graph per batch and compares:

* layer-wise GLP4NN (device barrier after every unit), vs
* DAG dispatch (event-based dependencies only, one final barrier).
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.core import GLP4NN
from repro.nn.config import ConvConfig
from repro.runtime.executor import GLP4NNExecutor
from repro.runtime.graph import GraphScheduler, KernelGraph
from repro.runtime.lowering import lower_conv_forward

DEVICE = "P100"
BATCH = 32

#: Inception-5b branch convolutions on the 7x7x832 map (Table 5 units
#: conv_3 (1x1 branch), conv_5 -> conv_4 (3x3 branch), conv_6 -> 5x5.
UNITS = {
    "1x1": (ConvConfig("conv_3", BATCH, 832, 7, 384, 1, 1, 0, "GoogLeNet"),),
    "3x3": (ConvConfig("conv_5", BATCH, 832, 7, 192, 1, 1, 0, "GoogLeNet"),
            ConvConfig("conv_4", BATCH, 192, 7, 384, 3, 1, 1, "GoogLeNet")),
    "5x5": (ConvConfig("conv_6", BATCH, 832, 7, 48, 1, 1, 0, "GoogLeNet"),
            ConvConfig("5x5", BATCH, 48, 7, 128, 5, 1, 2, "GoogLeNet")),
}


def inception_graph() -> KernelGraph:
    """Per-sample branch pipelines with branch-level independence."""
    g = KernelGraph("inception5b")
    for branch, convs in UNITS.items():
        for n in range(BATCH):
            prev: list[int] = []
            for cfg in convs:
                chain = lower_conv_forward(cfg).parallel_chains[n]
                ids = g.add_chain(list(chain), deps=prev)
                prev = [ids[-1]]
    return g


@cached("graph_ablation")
def run_graph_ablation() -> ExperimentResult:
    # layer-wise GLP4NN: one barrier per unit
    ex = GLP4NNExecutor(fresh_gpu(DEVICE))
    works = [lower_conv_forward(cfg)
             for convs in UNITS.values() for cfg in convs]
    for w in works:
        ex.run(w)                       # profiling pass
    t_layerwise = sum(ex.run(w).elapsed_us for w in works)

    # DAG dispatch: one graph, one final synchronization
    gpu = fresh_gpu(DEVICE)
    glp = GLP4NN([gpu])
    sched = GraphScheduler(glp, gpu)
    g = inception_graph()
    sched.run(g)                        # profiling pass
    t_graph = sched.run(g)

    rows = [
        ["layer-wise GLP4NN", round(t_layerwise / 1000.0, 3), 1.0],
        ["DAG dispatch", round(t_graph / 1000.0, 3),
         round(t_layerwise / t_graph, 3)],
    ]
    return ExperimentResult(
        experiment="graph_ablation",
        title=f"Inception-5b branches on {DEVICE}: layer barriers vs "
              "dataflow dependencies",
        headers=["dispatch", "time ms", "speedup"],
        rows=rows,
        notes="the paper's future-work hypothesis: supporting complex "
              "kernel dependencies exposes extra concurrency",
        extra={"kernels": len(g)},
    )
