"""Comparison: GLP4NN's single-thread stream pool vs multi-threaded dispatch.

The paper's design argument (Section 1, challenge 2; Section 5): Hyper-Q /
MPS / OpenMP approaches achieve concurrency by spending CPU threads or
processes, while GLP4NN reaches it from one host thread with a stream pool.
This experiment measures both sides of that trade: layer time *and* the
number of CPU threads consumed.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    cached,
    conv_forward_work,
    fresh_gpu,
    time_glp4nn,
    time_naive,
)
from repro.nn.zoo.table5 import CAFFENET_CONVS, CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.multithread import MultiThreadDispatcher

DEVICE = "P100"
LAYERS = (SIAMESE_CONVS[0], CIFAR10_CONVS[2], CAFFENET_CONVS[4])
THREAD_COUNTS = (2, 4, 8)


def _steady_mt(work, threads: int) -> float:
    dispatcher = MultiThreadDispatcher(fresh_gpu(DEVICE), threads)
    dispatcher.run(work)
    return dispatcher.run(work).elapsed_us


@cached("mps_comparison")
def run_mps_comparison() -> ExperimentResult:
    rows = []
    for cfg in LAYERS:
        work = conv_forward_work(cfg)
        base = time_naive(DEVICE, work)
        t_glp, decision = time_glp4nn(DEVICE, work)
        row = [f"{cfg.net}/{cfg.name}", round(base / t_glp, 3), 1]
        for threads in THREAD_COUNTS:
            t_mt = _steady_mt(work, threads)
            row.extend([round(base / t_mt, 3), threads])
        rows.append(row)
    headers = ["layer", "GLP4NN", "cpu thr"]
    for t in THREAD_COUNTS:
        headers.extend([f"{t}-thread", "cpu thr"])
    return ExperimentResult(
        experiment="mps_comparison",
        title=f"Stream pool (1 host thread) vs multi-threaded dispatch on "
              f"{DEVICE} (speedups over naive)",
        headers=headers,
        rows=rows,
        notes="the paper's trade-off: thread-based dispatch buys similar "
              "GPU-side concurrency only by consuming CPU threads (plus "
              "driver-lock contention), while GLP4NN needs one",
    )
