"""Table 1: overview of GPU architecture features."""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached
from repro.gpusim.arch import ARCH_FEATURES, Architecture


@cached("table1")
def run_table1() -> ExperimentResult:
    """Regenerate the architecture feature table from the simulator catalog."""
    rows = []
    for arch in Architecture:
        f = ARCH_FEATURES[arch]
        rows.append([
            arch.value.capitalize(),
            "yes" if f.streams else "no",
            "yes" if f.dynamic_parallelism else "no",
            f.max_concurrent_kernels,
            "yes" if f.uvm else "no",
            "yes" if f.tensor_cores else "no",
        ])
    return ExperimentResult(
        experiment="table1",
        title="GPU architecture features (paper Table 1)",
        headers=["Architecture", "CUDA Streams", "Dynamic Parallelism",
                 "Max Concurrent Kernels", "UVM", "Tensor Cores"],
        rows=rows,
        notes="paper reference: Tesla 1, Fermi 16, Kepler 32, Maxwell 16, "
              "Pascal 128, Volta 128 concurrent kernels",
    )
