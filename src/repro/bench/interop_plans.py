"""Inter-operator plan comparison: ``BENCH_8.json`` (ROADMAP item 4).

Four stream-planning policies over the GoogLeNet inception units 5a and
5b (the paper's own branchy shape), each plan certified hazard-free
before it runs:

* **layer-serial** — one stream, the no-overlap floor;
* **round-robin** — naive spread, paying an event pair for nearly every
  dependency edge and a work-queue switch for nearly every launch;
* **chain-affine** — the DAG dispatcher's pipeline-preserving baseline
  (:meth:`repro.runtime.graph.KernelGraph.assign_streams`);
* **opara** — resource-aware segment scheduling
  (:mod:`repro.interop.planner`).

Each policy is measured twice: eager dispatch (per-kernel launches) and
as one PR-7 graph launch of the same certified plan.  The acceptance
bar this file encodes — checked by ``benchmarks/test_interop_plans.py``
— is that the opara plan beats *both* layer-serial and round-robin
wall-clock on every unit.

Run directly (``python -m repro.bench.interop_plans [out.json]``) to
regenerate the committed ``BENCH_8.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Union

from repro.bench.harness import ExperimentResult, cached
from repro.interop.report import run_interop_session

DEVICE = "p100"
BATCH = 4
UNITS = ("5a", "5b")


def _unit_rows(unit: str) -> list[dict]:
    report = run_interop_session(action="run", unit=unit, batch=BATCH,
                                 device=DEVICE, streams=0, policy="all")
    assert report.ok, f"interop session for {unit} not certified"
    base = next(e for e in report.entries if e.requested == "layer-serial")
    rows = []
    for e in report.entries:
        rows.append({
            "unit": f"inception-{unit}",
            "policy": e.requested,
            "streams": e.plan.streams_used(),
            "cross_edges": e.cross_edges,
            "switches": e.plan.switches(),
            "certified": e.plan.certified,
            "eager_us": round(e.eager.elapsed_us, 3),
            "graph_us": round(e.graph.elapsed_us, 3),
            "speedup_vs_serial": round(
                base.eager.elapsed_us / e.eager.elapsed_us, 3),
            "sync_ops": e.eager.records + e.eager.waits,
            "launch_overhead_us": round(e.eager.launch_overhead_us, 3),
        })
    return rows


@cached("interop_plans")
def run_interop_plans_bench() -> ExperimentResult:
    """Compare the four stream plans on both inception units."""
    rows = [r for unit in UNITS for r in _unit_rows(unit)]
    headers = ["unit", "policy", "streams", "cross_edges", "switches",
               "eager_us", "graph_us", "speedup_vs_serial", "sync_ops"]
    return ExperimentResult(
        experiment="interop_plans",
        title="Inter-operator stream plans on GoogLeNet inception units "
              f"({DEVICE.upper()}, batch {BATCH})",
        headers=headers,
        rows=[[r[h] for h in headers] for r in rows],
        notes="every plan race-detector-certified before execution; "
              "eager = per-kernel launches, graph = one amortized "
              "graph launch of the same plan",
        extra={"device": DEVICE, "batch": BATCH, "plans": rows},
    )


def write_bench(out_path: Union[str, Path] = "BENCH_8.json") -> str:
    """Write the committed ``BENCH_8.json``; fully simulated, exact."""
    result = run_interop_plans_bench()
    doc = {
        "bench": "interop_plans",
        "device": DEVICE,
        "batch": BATCH,
        "units": list(UNITS),
        "plans": result.extra["plans"],
        "notes": result.notes,
    }
    p = Path(out_path)
    p.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return str(p)


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_8.json"
    path = write_bench(out)
    print(run_interop_plans_bench().render())
    print(f"wrote {path}")
