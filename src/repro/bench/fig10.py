"""Fig. 10: memory consumption of GLP4NN.

Per network and device: ``mem_tt`` (timestamps), ``mem_K`` (kernel
configurations) and ``mem_cupti`` (profiler runtime) after a full
profiling pass over the network's convolution layers.

Expected shape: ``mem_tt``/``mem_K`` scale with the number of kernels
recorded and are device-independent; ``mem_cupti`` is fixed by the CUPTI
runtime and dominates by orders of magnitude.  All host memory, released
after analysis.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.core.cost import OverheadModel
from repro.gpusim.device import PAPER_DEVICES
from repro.nn.zoo.table5 import NETWORK_ORDER, TABLE5
from repro.runtime.executor import GLP4NNExecutor
from repro.runtime.lowering import lower_conv_forward


@cached("fig10")
def run_fig10() -> ExperimentResult:
    rows = []
    for net in NETWORK_ORDER:
        for device in PAPER_DEVICES:
            gpu = fresh_gpu(device)
            ex = GLP4NNExecutor(gpu)
            for cfg in TABLE5[net]:
                ex.run(lower_conv_forward(cfg))   # profiling pass
            report = OverheadModel(ex.framework).report(gpu, network=net)
            rows.append([
                net, device,
                report.kernels_profiled,
                report.mem_tt,
                report.mem_k,
                report.mem_cupti,
                report.mem_total,
            ])
    return ExperimentResult(
        experiment="fig10",
        title="Memory consumption of GLP4NN (paper Fig. 10)",
        headers=["network", "device", "kernels", "mem_tt B", "mem_K B",
                 "mem_cupti B", "total B"],
        rows=rows,
        notes="paper shape: mem_tt and mem_K depend only on the kernel "
              "count; mem_cupti is decided by the CUPTI runtime and is "
              "much larger than the other two",
    )
