"""Fig. 2: speedup of CaffeNet's convolution layers on P100 vs stream count.

The paper's motivation experiment: run each CaffeNet conv layer's forward
pass (batch-level parallelism, manual stream counts) and report the speedup
over the single-stream execution.  Expected shape: speedup grows with the
stream count and then plateaus (or dips) once the device saturates; the
magnitude differs per layer.
"""

from __future__ import annotations

from repro.bench.harness import (
    ExperimentResult,
    cached,
    conv_forward_work,
    time_fixed,
    time_naive,
)
from repro.nn.zoo.table5 import CAFFENET_CONVS

STREAM_COUNTS = (1, 2, 4, 8, 16, 32)
DEVICE = "P100"


@cached("fig2")
def run_fig2() -> ExperimentResult:
    rows = []
    for cfg in CAFFENET_CONVS:
        work = conv_forward_work(cfg)
        base = time_naive(DEVICE, work)
        row = [cfg.name, round(base / 1000.0, 3)]
        for s in STREAM_COUNTS:
            if s == 1:
                row.append(1.0)
            else:
                t = time_fixed(DEVICE, work, s)
                row.append(round(base / t, 3))
        rows.append(row)
    return ExperimentResult(
        experiment="fig2",
        title=f"CaffeNet conv-layer speedup vs #streams on {DEVICE} "
              "(paper Fig. 2)",
        headers=["layer", "1-stream ms"] + [f"x{s}" for s in STREAM_COUNTS],
        rows=rows,
        notes="paper shape: multi-stream execution accelerates most conv "
              "layers, flattening as SMs saturate",
        extra={"stream_counts": list(STREAM_COUNTS), "device": DEVICE},
    )
