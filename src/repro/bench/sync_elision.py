"""Certified sync-elision ablation: ``BENCH_10.json``.

For every inception unit × planning policy, certify the plan, run the
transitive-reduction elider over its lowering, and measure the program
both ways — original vs minimized, eager dispatch and single graph
launch — on fresh simulated devices.  The rows record how many event
waits the elider proved redundant and what that saved on the host
clock, the Opara minimal-synchronization ablation for this repo.

The acceptance bar (``benchmarks/test_sync_elision.py``): at least one
policy on each unit loses waits to the elider, every minimized run is
no slower than its original, and the committed ``BENCH_10.json`` is
exactly regenerable (the simulation is deterministic).

Run directly (``python -m repro.bench.sync_elision [out.json]``) to
regenerate the committed ``BENCH_10.json``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Union

from repro.bench.harness import ExperimentResult, cached
from repro.interop.report import run_interop_session

DEVICE = "p100"
BATCH = 4
UNITS = ("5a", "5b")


def _round(value, digits=3):
    return None if value is None else round(value, digits)


def _unit_rows(unit: str) -> list[dict]:
    report = run_interop_session(action="run", unit=unit, batch=BATCH,
                                 device=DEVICE, streams=0, policy="all")
    assert report.ok, f"interop session for {unit} not certified"
    rows = []
    for e in report.entries:
        eager_min = e.eager_min.elapsed_us if e.eager_min else None
        graph_min = e.graph_min.elapsed_us if e.graph_min else None
        rows.append({
            "unit": f"inception-{unit}",
            "policy": e.requested,
            "waits": e.eager.waits,
            "waits_removed": e.waits_removed,
            "records_removed": e.records_removed,
            "eager_us": round(e.eager.elapsed_us, 3),
            "eager_min_us": _round(eager_min),
            "eager_speedup": (round(e.eager.elapsed_us / eager_min, 4)
                              if eager_min else None),
            "graph_us": round(e.graph.elapsed_us, 3),
            "graph_min_us": _round(graph_min),
        })
    return rows


@cached("sync_elision")
def run_sync_elision_bench() -> ExperimentResult:
    """Waits-removed and host-time ablation of certified elision."""
    rows = [r for unit in UNITS for r in _unit_rows(unit)]
    headers = ["unit", "policy", "waits", "waits_removed",
               "records_removed", "eager_us", "eager_min_us",
               "eager_speedup", "graph_us", "graph_min_us"]
    return ExperimentResult(
        experiment="sync_elision",
        title="Certified sync-elision over inception-unit stream plans "
              f"({DEVICE.upper()}, batch {BATCH})",
        headers=headers,
        rows=[[r[h] for h in headers] for r in rows],
        notes="minimized programs carry the launch-closure certificate "
              "and re-certify hazard-free; '-' columns mean the elider "
              "found nothing to remove for that plan",
        extra={"device": DEVICE, "batch": BATCH, "plans": rows},
    )


def write_bench(out_path: Union[str, Path] = "BENCH_10.json") -> str:
    """Write the committed ``BENCH_10.json``; fully simulated, exact."""
    result = run_sync_elision_bench()
    doc = {
        "bench": "sync_elision",
        "device": DEVICE,
        "batch": BATCH,
        "units": list(UNITS),
        "plans": result.extra["plans"],
        "notes": result.notes,
    }
    p = Path(out_path)
    p.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return str(p)


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_10.json"
    path = write_bench(out)
    print(run_sync_elision_bench().render())
    print(f"wrote {path}")
