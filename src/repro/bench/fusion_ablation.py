"""Ablation: kernel fusion on launch-bound layers (future work #2).

The paper conjectures fusion helps "especially for small kernels".  This
experiment quantifies it on the three Fig. 9 degradation layers (CIFAR10
conv1, Siamese conv1/conv1_p — kernels shorter than the launch pipeline)
and on one compute-heavy layer where fusion should be neutral.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.core import GLP4NN
from repro.gpusim.device import get_device
from repro.nn.zoo.table5 import CAFFENET_CONVS, CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import GLP4NNExecutor, NaiveExecutor
from repro.runtime.fusion import fuse_work, make_fusion_transform
from repro.runtime.lowering import lower_conv_forward

DEVICE = "P100"
LAYERS = (CIFAR10_CONVS[0], SIAMESE_CONVS[0], SIAMESE_CONVS[1],
          CAFFENET_CONVS[4])


@cached("fusion_ablation")
def run_fusion_ablation() -> ExperimentResult:
    dev = get_device(DEVICE)
    rows = []
    for cfg in LAYERS:
        work = lower_conv_forward(cfg)
        _, report = fuse_work(work, dev)

        naive = NaiveExecutor(fresh_gpu(DEVICE))
        naive.run(work)
        t_naive = naive.run(work).elapsed_us

        plain = GLP4NNExecutor(fresh_gpu(DEVICE))
        plain.run(work)
        t_plain = plain.run(work).elapsed_us

        gpu = fresh_gpu(DEVICE)
        glp = GLP4NN([gpu], work_transform=make_fusion_transform(dev))
        glp.run_layer(gpu, work)
        t_fused = glp.run_layer(gpu, work).elapsed_us

        rows.append([
            f"{cfg.net}/{cfg.name}",
            report.kernels_before,
            report.kernels_after,
            round(t_naive / t_plain, 3),
            round(t_naive / t_fused, 3),
        ])
    return ExperimentResult(
        experiment="fusion_ablation",
        title=f"Kernel fusion on {DEVICE} (speedups over naive Caffe)",
        headers=["layer", "kernels", "after fusion", "GLP4NN",
                 "GLP4NN+fusion"],
        rows=rows,
        notes="expected: fusion turns the Fig. 9 degradation layers into "
              "wins and is roughly neutral on compute-heavy layers",
    )
