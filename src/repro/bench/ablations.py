"""Ablations of GLP4NN's design choices (DESIGN.md section 5).

1. **Launch-pipeline bound** (Eq. 7's ``ceil(T/T_launch)`` term): without
   it, the model over-parallelizes short-kernel layers and pays stream
   overheads for overlap that cannot physically happen.
2. **MILP vs greedy analyzer**: a greedy occupancy-packing heuristic versus
   the exact branch-and-bound solve.
3. **Dispatch policy**: model-sized pool vs the device's maximum
   concurrency degree (just throwing streams at the problem).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import (
    ExperimentResult,
    cached,
    conv_forward_work,
    fresh_gpu,
    time_naive,
)
from repro.core.analytical_model import AnalyticalModel, ConcurrencyDecision
from repro.core.resource_tracker import KernelProfile
from repro.gpusim.device import get_device
from repro.nn.zoo.table5 import CAFFENET_CONVS, CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import FixedStreamExecutor, GLP4NNExecutor

DEVICE = "P100"

#: Layers chosen to span the regimes: sub-ms kernels (the degradation
#: cases), mid-size, and SM-saturating.
ABLATION_LAYERS = (
    SIAMESE_CONVS[0],    # tiny: conv1 on MNIST
    CIFAR10_CONVS[2],    # mid: conv3
    CAFFENET_CONVS[4],   # large: conv5
)


def greedy_analyze(device_name: str):
    """Greedy substitute for the MILP: pack kernels by occupancy density.

    Sorts kernels by per-instance thread footprint (descending) and adds
    instances while the Eq. 4/5 budgets and Eq. 7 bounds allow.
    """
    device = get_device(device_name)
    model = AnalyticalModel(device)

    def analyze(layer_key: str, profiles: Sequence[KernelProfile]
                ) -> ConcurrencyDecision:
        bounds = [model.kernel_bound(p) for p in profiles]
        order = sorted(range(len(bounds)),
                       key=lambda i: bounds[i].tau * bounds[i].beta,
                       reverse=True)
        counts = [0] * len(bounds)
        threads = smem = blocks = total = 0
        progress = True
        while progress and total < device.max_concurrent_kernels:
            progress = False
            for i in order:
                b = bounds[i]
                if counts[i] >= b.upper:
                    continue
                if threads + b.tau * b.beta > device.max_threads_per_sm:
                    continue
                if smem + b.smem * b.beta > device.shared_mem_per_sm:
                    continue
                if blocks + b.beta > device.max_blocks_per_sm:
                    continue
                if total + 1 > device.max_concurrent_kernels:
                    continue
                counts[i] += 1
                threads += b.tau * b.beta
                smem += b.smem * b.beta
                blocks += b.beta
                total += 1
                progress = True
        c_out = max(1, total)
        return ConcurrencyDecision(
            layer_key=layer_key,
            device=device.name,
            counts={b.name: c for b, c in zip(bounds, counts)},
            c_out=c_out,
            occupancy_ratio=min(1.0, threads / device.max_threads_per_sm),
            bounds=bounds,
        )

    return analyze


def _steady(ex, work) -> float:
    ex.run(work)
    return ex.run(work).elapsed_us


@cached("ablations")
def run_ablations() -> ExperimentResult:
    rows = []
    for cfg in ABLATION_LAYERS:
        work = conv_forward_work(cfg)
        base = time_naive(DEVICE, work)

        glp = GLP4NNExecutor(fresh_gpu(DEVICE))
        t_model = _steady(glp, work)
        c_model = glp.runs[-1].decision.c_out

        nolaunch = GLP4NNExecutor(fresh_gpu(DEVICE), use_launch_bound=False)
        t_nolaunch = _steady(nolaunch, work)
        c_nolaunch = nolaunch.runs[-1].decision.c_out

        from repro.core.framework import GLP4NN
        gpu = fresh_gpu(DEVICE)
        greedy_fw = GLP4NN([gpu], analyze_fn=greedy_analyze(DEVICE))
        greedy = GLP4NNExecutor(gpu, framework=greedy_fw)
        t_greedy = _steady(greedy, work)
        c_greedy = greedy.runs[-1].decision.c_out

        maxstreams = FixedStreamExecutor(
            fresh_gpu(DEVICE), get_device(DEVICE).max_concurrent_kernels
        )
        t_max = _steady(maxstreams, work)

        rows.append([
            f"{cfg.net}/{cfg.name}",
            round(base / t_model, 3), c_model,
            round(base / t_nolaunch, 3), c_nolaunch,
            round(base / t_greedy, 3), c_greedy,
            round(base / t_max, 3),
        ])
    return ExperimentResult(
        experiment="ablations",
        title=f"Design-choice ablations on {DEVICE} (speedup over naive)",
        headers=["layer", "model", "C", "no-launch-bound", "C",
                 "greedy", "C", "max-streams"],
        rows=rows,
        notes="the launch bound protects short-kernel layers; the exact "
              "MILP matches or beats greedy packing; max-streams shows "
              "diminishing or negative returns",
    )
