"""Graph-launch baseline: ``BENCH_7.json`` (ROADMAP item 3(b)).

Two numbers future PRs inherit as a trajectory:

* **simulator throughput** — discrete events the engine processes per
  wall-clock second, measured over repeated eager passes of CIFAR10
  conv1 (the denominator every later engine change moves);
* **graph vs eager dispatch** — per-pass latency and host launch
  overhead on the paper's own loss cases, CIFAR10 conv1 and Siamese
  conv1 (Fig. 9): layers whose kernels are shorter than ``T_launch``,
  where eager multi-stream dispatch *loses* to serial execution because
  every kernel pays the launch pipeline.  Graph replay collapses that to
  one host launch per pass, which is exactly the regime the subsystem
  exists to win back.

Run directly (``python -m repro.bench.graph_launch [out.json]``) to
regenerate the committed ``BENCH_7.json``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Union

from repro.bench.harness import ExperimentResult, cached, fresh_gpu
from repro.nn.config import ConvConfig
from repro.nn.zoo.table5 import CIFAR10_CONVS, SIAMESE_CONVS
from repro.runtime.executor import GLP4NNExecutor
from repro.runtime.lowering import lower_conv_forward

DEVICE = "P100"

#: The paper's reported degradation cases (Fig. 9): launch-bound conv1s.
LOSS_CASE_LAYERS: tuple[ConvConfig, ...] = (
    CIFAR10_CONVS[0],    # 32x32x3 -> 32 maps, 5x5: ~100us kernels
    SIAMESE_CONVS[0],    # 28x28x1 -> 20 maps, 5x5: sub-T_launch kernels
)

#: Passes per layer: eager warmup, capture, then steady replays.
PASSES = 6

#: Eager passes timed for the events/sec throughput figure.
THROUGHPUT_PASSES = 40


def _graph_vs_eager(cfg: ConvConfig) -> dict:
    """One loss-case layer through the graph lifecycle; returns its row."""
    gpu = fresh_gpu(DEVICE)
    ex = GLP4NNExecutor(gpu)
    runtime = ex.enable_graph_mode(network=cfg.net)
    work = lower_conv_forward(cfg)
    samples: list[tuple[float, float]] = []     # (elapsed, overhead)
    for _ in range(PASSES):
        o0 = gpu.launch_overhead_total
        elapsed = ex.run_pass([work])
        samples.append((elapsed, gpu.launch_overhead_total - o0))
    modes = runtime.modes_for([work], gpu.props.name)
    by_mode: dict[str, list[tuple[float, float]]] = {}
    for mode, sample in zip(modes, samples):
        by_mode.setdefault(mode, []).append(sample)
    # The capture pass runs eagerly (recording is free on the simulated
    # clock): the steady-state eager baseline, after pass-1 profiling.
    eager_us, eager_overhead_us = by_mode["capture"][0]
    replays = by_mode.get("replay", [])
    replay_us = sum(e for e, _ in replays) / len(replays)
    graph_overhead_us = sum(o for _, o in replays) / len(replays)
    return {
        "layer": f"{cfg.net} {cfg.name}",
        "kernels": work.num_kernels,
        "eager_us": round(eager_us, 3),
        "replay_us": round(replay_us, 3),
        "speedup": round(eager_us / replay_us, 3),
        "eager_overhead_us": round(eager_overhead_us, 3),
        "graph_overhead_us": round(graph_overhead_us, 3),
        "overhead_reduction": round(
            1.0 - graph_overhead_us / eager_overhead_us, 4),
        "replays": len(replays),
    }


def _events_per_sec() -> tuple[float, int]:
    """Simulator throughput: engine events processed per wall second."""
    gpu = fresh_gpu(DEVICE)
    ex = GLP4NNExecutor(gpu)
    work = lower_conv_forward(CIFAR10_CONVS[0])
    ex.run(work)                        # profiling pass outside the clock
    e0 = gpu.events_processed
    t0 = time.perf_counter()
    for _ in range(THROUGHPUT_PASSES):
        ex.run_pass([work])
    wall = time.perf_counter() - t0
    events = gpu.events_processed - e0
    return (events / wall if wall > 0 else 0.0), events


@cached("graph_launch")
def run_graph_launch_bench() -> ExperimentResult:
    """Measure the graph-launch baseline; see the module docstring."""
    rows = [_graph_vs_eager(cfg) for cfg in LOSS_CASE_LAYERS]
    eps, events = _events_per_sec()
    headers = ["layer", "kernels", "eager_us", "replay_us", "speedup",
               "eager_overhead_us", "graph_overhead_us",
               "overhead_reduction"]
    return ExperimentResult(
        experiment="graph_launch",
        title="Graph replay vs eager dispatch on the Fig. 9 loss cases "
              f"({DEVICE})",
        headers=headers,
        rows=[[r[h] for h in headers] for r in rows],
        notes="eager = steady-state pass under per-kernel launches; "
              "replay = one amortized graph launch per pass",
        extra={
            "device": DEVICE,
            "events_per_sec": round(eps, 1),
            "events_measured": events,
            "layers": rows,
        },
    )


def write_bench(out_path: Union[str, Path] = "BENCH_7.json") -> str:
    """Write the committed ``BENCH_7.json`` baseline; returns the path.

    Wall-clock throughput varies run to run; the graph-vs-eager numbers
    are simulated and exactly reproducible.
    """
    result = run_graph_launch_bench()
    doc = {
        "bench": "graph_launch",
        "device": DEVICE,
        "gpusim": {
            "events_per_sec": result.extra["events_per_sec"],
            "events_measured": result.extra["events_measured"],
            "throughput_passes": THROUGHPUT_PASSES,
        },
        "layers": result.extra["layers"],
        "notes": result.notes,
    }
    p = Path(out_path)
    p.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
    return str(p)


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "BENCH_7.json"
    path = write_bench(out)
    print(run_graph_launch_bench().render())
    print(f"wrote {path}")
