"""GLP4NN reproduction package.

A full reproduction of *GLP4NN: A Convergence-invariant and Network-agnostic
Light-Weight Parallelization Framework for Deep Neural Networks on Modern
GPUs* (Fu, Tang, He, Yu, Sun — ICPP 2018), built on a discrete-event GPU
simulator instead of real CUDA hardware.

Subpackages
-----------
``repro.gpusim``
    Discrete-event simulator of an NVIDIA-style GPU: SMs, streams, events,
    occupancy accounting, concurrent-kernel work queues and launch latency.
``repro.kernels``
    Kernel IR, launch-configuration heuristics and the roofline cost model
    that assigns durations to simulated kernels.
``repro.cupti``
    A CUPTI-like activity/callback profiling interface over the simulator.
``repro.milp``
    From-scratch MILP solver (two-phase simplex + branch and bound), standing
    in for GLPK which the paper uses to solve its analytical model.
``repro.nn``
    Caffe-like neural-network framework (blobs, layers, nets, SGD solver)
    with the paper's four networks in ``repro.nn.zoo``.
``repro.data``
    Synthetic stand-ins for MNIST / CIFAR-10 / ImageNet.
``repro.core``
    The paper's contribution: resource tracker, kernel analyzer (analytical
    model, Eqs. 1-9), stream manager and runtime scheduler.
``repro.runtime``
    Integration layer ("GLP4NN-Caffe"): lowering of layers to kernels, the
    naive and GLP4NN executors and the training session.
``repro.bench``
    Experiment harness regenerating every table and figure of the paper.
"""

from repro._version import __version__

__all__ = ["__version__"]
