"""CUDA-style occupancy calculator.

Computes, for one launch configuration on one device, the number of thread
blocks that can be simultaneously *resident* on a streaming multiprocessor
and the resulting occupancy ratio ``OR_SM`` of Eq. 1:

    OR_SM = active_warps_per_sm / max_warps_per_sm

The limiting resources are the ones the analytical model treats as *hard*
constraints — resident-thread slots (Eq. 5), shared memory (Eq. 4) and the
block-slot limit — plus registers, which the paper treats as *soft* (spills
go to local memory) but which real hardware enforces and the simulator
therefore honours.  :func:`max_active_blocks_per_sm` mirrors
``cudaOccupancyMaxActiveBlocksPerMultiprocessor``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import LaunchError
from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import LaunchConfig

#: Shapes cached per process; a model has a few dozen distinct kernels.
_CACHE_SIZE = 4096


@dataclass(frozen=True)
class OccupancyResult:
    """Breakdown of the occupancy computation for one kernel.

    ``limiter`` names the resource that bounds residency ("threads",
    "shared_mem", "registers" or "blocks").
    """

    blocks_per_sm: int
    active_warps: int
    max_warps: int
    limiter: str

    @property
    def ratio(self) -> float:
        """``OR_SM`` — fraction of warp slots occupied (Eq. 1)."""
        return self.active_warps / self.max_warps

    @property
    def active_threads(self) -> int:
        return self.active_warps * 32


def validate_launch(device: DeviceProperties, launch: LaunchConfig) -> None:
    """Raise :class:`~repro.errors.LaunchError` if the config cannot run at all.

    The simulated analogue of ``cudaErrorInvalidConfiguration``: a block
    needing more threads, shared memory or registers than one SM owns can
    never be scheduled.  Successful validations are memoized per
    ``(device, launch)`` shape; failures re-raise every time (``lru_cache``
    does not cache exceptions), so the error surface is unchanged.
    """
    _validate_launch_cached(device, launch)


@lru_cache(maxsize=_CACHE_SIZE)
def _validate_launch_cached(device: DeviceProperties,
                            launch: LaunchConfig) -> None:
    if launch.threads_per_block > device.max_threads_per_block:
        raise LaunchError(
            f"block of {launch.threads_per_block} threads exceeds device "
            f"limit {device.max_threads_per_block}"
        )
    if launch.shared_mem_per_block > device.max_shared_mem_per_block:
        raise LaunchError(
            f"block needs {launch.shared_mem_per_block} B shared memory, "
            f"device allows {device.max_shared_mem_per_block} B per block"
        )
    if launch.shared_mem_per_block > device.shared_mem_per_sm:
        raise LaunchError("block shared memory exceeds SM capacity")
    if launch.registers_per_block > device.registers_per_sm:
        raise LaunchError("block register footprint exceeds SM register file")


def max_active_blocks_per_sm(
    device: DeviceProperties, launch: LaunchConfig
) -> OccupancyResult:
    """Resident blocks of this kernel per SM, and what limits them.

    >>> from repro.gpusim.device import get_device
    >>> from repro.gpusim.kernel import LaunchConfig
    >>> res = max_active_blocks_per_sm(get_device("P100"),
    ...     LaunchConfig(grid=(100, 1, 1), block=(256, 1, 1)))
    >>> res.blocks_per_sm
    8
    >>> res.limiter
    'threads'
    """
    return _max_active_blocks_cached(device, launch)


@lru_cache(maxsize=_CACHE_SIZE)
def _max_active_blocks_cached(
    device: DeviceProperties, launch: LaunchConfig
) -> OccupancyResult:
    """Memoized body of :func:`max_active_blocks_per_sm`.

    Safe to cache because both inputs are frozen value types and the
    result is itself frozen; identical shapes always produce identical
    results, so memoization is observationally invisible.
    """
    validate_launch(device, launch)
    by_threads = device.max_threads_per_sm // launch.threads_per_block
    by_blocks = device.max_blocks_per_sm
    if launch.shared_mem_per_block > 0:
        by_smem = device.shared_mem_per_sm // launch.shared_mem_per_block
    else:
        by_smem = by_blocks
    by_regs = device.registers_per_sm // launch.registers_per_block

    limits = {
        "threads": by_threads,
        "blocks": by_blocks,
        "shared_mem": by_smem,
        "registers": by_regs,
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    warps = blocks * launch.warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        active_warps=min(warps, device.max_warps_per_sm),
        max_warps=device.max_warps_per_sm,
        limiter=limiter,
    )


@lru_cache(maxsize=_CACHE_SIZE)
def occupancy(device: DeviceProperties, launch: LaunchConfig) -> float:
    """Theoretical occupancy ratio ``OR_SM`` of one kernel run alone.

    Accounts for the grid possibly being too small to fill every SM: a
    18-block grid on a 56-SM device leaves most warp slots empty no matter
    what the per-block footprint is — the under-utilization GLP4NN exists to
    recover.  Memoized per ``(device, launch)`` shape (see
    :func:`max_active_blocks_per_sm`).
    """
    res = max_active_blocks_per_sm(device, launch)
    per_sm = res.blocks_per_sm
    if launch.num_blocks < per_sm * device.sm_count:
        # Grid-limited: blocks spread evenly, Eq. 8 (beta = floor(#beta/#SM))
        # rounded up so a 1-block grid still counts as occupying one slot.
        per_sm_effective = min(
            per_sm, max(1, launch.num_blocks // device.sm_count)
        )
        if launch.num_blocks < device.sm_count:
            # fewer blocks than SMs: average residency below one block/SM
            warps = launch.num_blocks * launch.warps_per_block / device.sm_count
            return min(1.0, warps / device.max_warps_per_sm)
        per_sm = per_sm_effective
    warps = min(per_sm * launch.warps_per_block, device.max_warps_per_sm)
    return warps / device.max_warps_per_sm
