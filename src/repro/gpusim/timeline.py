"""Kernel execution traces: collection, ASCII rendering, Chrome export.

The timeline is the simulator's replacement for the NVIDIA Visual Profiler
views the paper uses in its motivation section (Fig. 3 shows a multi-stream
kernel timeline).  Records carry everything the paper's resource tracker
extracts through CUPTI: name, stream, enqueue/start/end timestamps, grid and
block geometry, registers and shared memory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from typing import Iterable, Optional

from repro.gpusim.kernel import Dim3


@dataclass(frozen=True)
class TraceRecord:
    """One completed kernel execution."""

    name: str
    tag: str
    stream_id: int
    enqueue_us: float
    start_us: float
    end_us: float
    grid: Dim3
    block: Dim3
    registers: int
    shared_mem: int

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def queue_delay_us(self) -> float:
        """Time between host enqueue and first block starting."""
        return self.start_us - self.enqueue_us


@dataclass(frozen=True)
class SyncRecord:
    """One completed synchronization primitive (event record or wait).

    The sync-edge counterpart of :class:`TraceRecord`: ``kind`` is
    ``"record"`` or ``"wait"``, ``enqueue_us`` the host issue time and
    ``complete_us`` when the op resolved on the device.  Kept on a
    separate track so kernel-only consumers (lane renderers, concurrency
    queries) are unaffected, while :func:`check_timeline` can validate
    event edges — the same edges the static analyzer
    (:mod:`repro.analyze`) assumes when it certifies a plan.
    """

    kind: str
    event_id: int
    event_name: str
    stream_id: int
    enqueue_us: float
    complete_us: float


class Timeline:
    """Append-only store of :class:`TraceRecord` with simple queries.

    Synchronization ops (event records/waits) are collected alongside on
    :attr:`syncs`; ``len()`` and iteration cover kernel records only.

    Internally the engine appends *raw field tuples* (:meth:`add_raw` /
    :meth:`add_sync_raw`) into batch buffers; the frozen dataclass records
    are only materialized when :attr:`records` / :attr:`syncs` is first
    read.  Frozen-dataclass construction costs ~10 ``object.__setattr__``
    calls per record, which dominated the event loop on large traces —
    batching moves that cost out of the hot path entirely (and off runs
    that never read their trace).  Observable contents are unchanged.
    """

    def __init__(self, device: str = "", enabled: bool = True) -> None:
        self.device = device
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        self._syncs: list[SyncRecord] = []
        self._raw_records: list[tuple] = []
        self._raw_syncs: list[tuple] = []

    @property
    def records(self) -> list[TraceRecord]:
        """Kernel records, materializing any batched raw entries first."""
        if self._raw_records:
            self._records.extend(
                TraceRecord(*t) for t in self._raw_records)
            self._raw_records.clear()
        return self._records

    @records.setter
    def records(self, value) -> None:
        self._records = list(value)
        self._raw_records.clear()

    @property
    def syncs(self) -> list[SyncRecord]:
        """Sync records, materializing any batched raw entries first."""
        if self._raw_syncs:
            self._syncs.extend(SyncRecord(*t) for t in self._raw_syncs)
            self._raw_syncs.clear()
        return self._syncs

    @syncs.setter
    def syncs(self, value) -> None:
        self._syncs = list(value)
        self._raw_syncs.clear()

    def add(self, record: TraceRecord) -> None:
        if self.enabled:
            self.records.append(record)    # flushes raws to keep order

    def add_raw(self, *fields) -> None:
        """Buffer one kernel record as a raw field tuple (engine hot path).

        ``fields`` are the :class:`TraceRecord` constructor arguments in
        declaration order.  Callers must pre-check :attr:`enabled`.
        """
        self._raw_records.append(fields)

    def add_sync(self, record: SyncRecord) -> None:
        if self.enabled:
            self.syncs.append(record)      # flushes raws to keep order

    def add_sync_raw(self, *fields) -> None:
        """Buffer one sync record as a raw field tuple (engine hot path)."""
        self._raw_syncs.append(fields)

    def clear(self) -> None:
        self._records.clear()
        self._syncs.clear()
        self._raw_records.clear()
        self._raw_syncs.clear()

    def __len__(self) -> int:
        return len(self._records) + len(self._raw_records)

    def __iter__(self):
        return iter(self.records)

    def by_stream(self) -> dict[int, list[TraceRecord]]:
        """Records grouped by stream id, each group in start order."""
        groups: dict[int, list[TraceRecord]] = {}
        for r in self.records:
            groups.setdefault(r.stream_id, []).append(r)
        for g in groups.values():
            g.sort(key=lambda r: r.start_us)
        return groups

    def by_name(self, name: str) -> list[TraceRecord]:
        return [r for r in self.records if r.name == name]

    def span_us(self) -> float:
        """Wall time from the first kernel start to the last kernel end."""
        if not self.records:
            return 0.0
        return (max(r.end_us for r in self.records)
                - min(r.start_us for r in self.records))

    def max_concurrency(self) -> int:
        """Peak number of simultaneously running kernels in the trace.

        The quantity Fig. 3 visualizes: how many lanes are busy at once.
        """
        points: list[tuple[float, int]] = []
        for r in self.records:
            points.append((r.start_us, 1))
            points.append((r.end_us, -1))
        points.sort(key=lambda p: (p[0], p[1]))
        level = peak = 0
        for _, delta in points:
            level += delta
            peak = max(peak, level)
        return peak

    def trace_events(self) -> list[dict]:
        """Chrome trace-event dicts, one complete event per record.

        The shared building block of :func:`to_chrome_trace` and the
        unified exporter in :mod:`repro.obs.export` — one track (``tid``)
        per CUDA stream under this device's process (``pid``).
        """
        events = []
        for r in self.records:
            events.append({
                "name": r.name,
                "cat": r.tag or "kernel",
                "ph": "X",
                "ts": r.start_us,
                "dur": r.duration_us,
                "pid": self.device or "gpu",
                "tid": f"stream {r.stream_id}",
                "args": {
                    "grid": list(r.grid),
                    "block": list(r.block),
                    "registers": r.registers,
                    "shared_mem": r.shared_mem,
                    "enqueue_us": r.enqueue_us,
                },
            })
        return events


@dataclass(frozen=True)
class DependencyViolation:
    """One trace inconsistency found by :func:`check_timeline`.

    ``rule`` names the invariant broken (``clock``, ``stream-fifo``,
    ``default-barrier``, ``event-record`` or ``event-wait``);
    ``kernel``/``other`` are the offending record names, ``detail`` is a
    human-readable account with timestamps.
    """

    rule: str
    kernel: str
    other: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


#: Timestamp slack for floating-point comparisons, µs.
_EPS = 1e-6


def check_timeline(records: Iterable[TraceRecord],
                   syncs: Iterable[SyncRecord] = (),
                   ) -> list[DependencyViolation]:
    """Validate the structural dependency invariants of a trace.

    Checks only what every legal trace must satisfy, with no knowledge of
    the workload that produced it:

    * **clock** — ``enqueue <= start <= end`` for every record;
    * **stream-fifo** — records on one stream, taken in enqueue order, do
      not overlap (a stream is a FIFO queue: the next op cannot start
      before the previous one ends);
    * **default-barrier** — legacy default-stream semantics: a record on
      stream 0 starts only after everything enqueued before it has ended,
      and nothing enqueued after it starts before it ends;
    * **event-record** — an event record completes no earlier than every
      kernel enqueued before it on its stream (it marks the stream's
      progress point);
    * **event-wait** — kernels enqueued on a stream after a wait on a
      recorded event do not start before that record completed (the wait
      itself also cannot resolve earlier).  A wait binds to the latest
      record of its event issued before it; an event never recorded gates
      nothing, as in CUDA.

    Assumes host issue order matches enqueue-timestamp order (true for
    single-threaded dispatch; multi-threaded ``enqueue_at`` launches can
    legitimately interleave and are not checked here).  Returns every
    violation found, in a deterministic order.
    """
    recs = sorted(records, key=lambda r: (r.enqueue_us, r.start_us, r.name))
    out: list[DependencyViolation] = []
    for r in recs:
        if r.start_us < r.enqueue_us - _EPS or r.end_us < r.start_us - _EPS:
            out.append(DependencyViolation(
                "clock", r.name, "",
                f"{r.name} (stream {r.stream_id}): enqueue={r.enqueue_us:.3f}"
                f" start={r.start_us:.3f} end={r.end_us:.3f} not monotonic",
            ))
    by_stream: dict[int, list[TraceRecord]] = {}
    for r in recs:
        by_stream.setdefault(r.stream_id, []).append(r)
    for sid, group in sorted(by_stream.items()):
        for prev, cur in zip(group, group[1:]):
            if cur.start_us < prev.end_us - _EPS:
                out.append(DependencyViolation(
                    "stream-fifo", cur.name, prev.name,
                    f"stream {sid}: {cur.name} starts at {cur.start_us:.3f}"
                    f" before predecessor {prev.name} ends at "
                    f"{prev.end_us:.3f}",
                ))
    for d in recs:
        if d.stream_id != 0:
            continue
        for r in recs:
            if r is d:
                continue
            if r.enqueue_us < d.enqueue_us - _EPS \
                    and r.end_us > d.start_us + _EPS:
                out.append(DependencyViolation(
                    "default-barrier", d.name, r.name,
                    f"default-stream {d.name} starts at {d.start_us:.3f}"
                    f" before earlier {r.name} (stream {r.stream_id}) ends"
                    f" at {r.end_us:.3f}",
                ))
            elif r.enqueue_us > d.enqueue_us + _EPS \
                    and r.start_us < d.end_us - _EPS:
                out.append(DependencyViolation(
                    "default-barrier", d.name, r.name,
                    f"{r.name} (stream {r.stream_id}) starts at "
                    f"{r.start_us:.3f} before default-stream {d.name}"
                    f" ends at {d.end_us:.3f}",
                ))
    sync_list = sorted(syncs, key=lambda s: (s.enqueue_us, s.complete_us,
                                             s.event_id))
    for s in sync_list:
        if s.kind != "record":
            continue
        for r in by_stream.get(s.stream_id, []):
            if r.enqueue_us < s.enqueue_us - _EPS \
                    and r.end_us > s.complete_us + _EPS:
                out.append(DependencyViolation(
                    "event-record", s.event_name, r.name,
                    f"event {s.event_name} recorded on stream "
                    f"{s.stream_id} completes at {s.complete_us:.3f} "
                    f"before prior {r.name} ends at {r.end_us:.3f}",
                ))
    for w in sync_list:
        if w.kind != "wait":
            continue
        rec = None
        for s in sync_list:
            if s.kind == "record" and s.event_id == w.event_id \
                    and s.enqueue_us <= w.enqueue_us + _EPS:
                rec = s  # latest record issued before the wait wins
        if rec is None:
            continue  # unrecorded event: gates nothing (CUDA semantics)
        if w.complete_us < rec.complete_us - _EPS:
            out.append(DependencyViolation(
                "event-wait", w.event_name, rec.event_name,
                f"wait on {w.event_name} (stream {w.stream_id}) resolves "
                f"at {w.complete_us:.3f} before its record completes at "
                f"{rec.complete_us:.3f}",
            ))
        for r in by_stream.get(w.stream_id, []):
            if r.enqueue_us > w.enqueue_us + _EPS \
                    and r.start_us < rec.complete_us - _EPS:
                out.append(DependencyViolation(
                    "event-wait", r.name, w.event_name,
                    f"{r.name} (stream {w.stream_id}) starts at "
                    f"{r.start_us:.3f} before awaited event "
                    f"{w.event_name} completed at {rec.complete_us:.3f}",
                ))
    return out


def ascii_timeline(
    timeline: Timeline,
    width: int = 78,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Render the trace as one ASCII lane per stream (the paper's Fig. 3).

    Each kernel is drawn as a run of its name's first letter; overlap across
    lanes is concurrency.  ``width`` is clamped below at 1 column so a
    degenerate terminal width still renders one mark per kernel.
    """
    width = max(1, int(width))
    recs = timeline.records
    if not recs:
        return "(empty timeline)"
    lo = min(r.start_us for r in recs) if t0 is None else t0
    hi = max(r.end_us for r in recs) if t1 is None else t1
    span = max(hi - lo, 1e-9)
    scale = width / span
    lines = [
        f"device={timeline.device}  window=[{lo:.1f}, {hi:.1f}] us  "
        f"({span:.1f} us across {width} cols)"
    ]
    for sid, group in sorted(timeline.by_stream().items()):
        lane = [" "] * width
        for r in group:
            a = int((max(r.start_us, lo) - lo) * scale)
            b = int((min(r.end_us, hi) - lo) * scale)
            b = max(b, a + 1)
            ch = (r.name[0] if r.name else "?")
            for i in range(a, min(b, width)):
                lane[i] = ch
        label = "default" if sid == 0 else f"s{sid}"
        lines.append(f"{label:>8} |{''.join(lane)}|")
    return "\n".join(lines)


def to_chrome_trace(timeline: Timeline) -> str:
    """Export as a Chrome ``chrome://tracing`` / Perfetto JSON string.

    Device records only; for a merged host-span + device view use
    :func:`repro.obs.export.to_perfetto_json` (or ``python -m repro
    trace``), which layers :mod:`repro.obs.spans` tracks on top of these
    per-stream lanes.
    """
    return json.dumps({"traceEvents": timeline.trace_events()}, indent=1)
