"""Timeline analysis utilities.

Post-mortem metrics over a :class:`~repro.gpusim.timeline.Timeline`:
per-stream busy fractions, the cross-stream overlap ratio (how much of the
wall time had >= 2 kernels in flight — the quantity Fig. 3 visualizes), and
launch-gap statistics that expose the host launch pipeline of Eq. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.timeline import Timeline


@dataclass(frozen=True)
class TraceStats:
    """Aggregate metrics of one execution trace."""

    span_us: float
    busy_us: float                 # union of kernel intervals
    overlap_us: float              # time with >= 2 kernels in flight
    max_concurrency: int
    kernels: int
    mean_launch_gap_us: float      # spacing of host enqueue times

    @property
    def busy_fraction(self) -> float:
        return self.busy_us / self.span_us if self.span_us > 0 else 0.0

    @property
    def overlap_fraction(self) -> float:
        """Share of busy time spent with kernels overlapping."""
        return self.overlap_us / self.busy_us if self.busy_us > 0 else 0.0


def analyze(timeline: Timeline) -> TraceStats:
    """Compute :class:`TraceStats` by sweeping the trace's interval events."""
    recs = timeline.records
    if not recs:
        return TraceStats(0.0, 0.0, 0.0, 0, 0, 0.0)
    points: list[tuple[float, int]] = []
    for r in recs:
        points.append((r.start_us, 1))
        points.append((r.end_us, -1))
    points.sort(key=lambda p: (p[0], p[1]))

    busy = overlap = 0.0
    level = peak = 0
    prev_t = points[0][0]
    for t, delta in points:
        dt = t - prev_t
        if level >= 1:
            busy += dt
        if level >= 2:
            overlap += dt
        level += delta
        peak = max(peak, level)
        prev_t = t

    enqueues = sorted(r.enqueue_us for r in recs)
    if len(enqueues) > 1:
        gaps = [b - a for a, b in zip(enqueues, enqueues[1:])]
        mean_gap = sum(gaps) / len(gaps)
    else:
        mean_gap = 0.0
    return TraceStats(
        span_us=timeline.span_us(),
        busy_us=busy,
        overlap_us=overlap,
        max_concurrency=peak,
        kernels=len(recs),
        mean_launch_gap_us=mean_gap,
    )


def per_stream_busy(timeline: Timeline) -> dict[int, float]:
    """Busy microseconds per stream lane (kernel durations summed)."""
    out: dict[int, float] = {}
    for r in timeline.records:
        out[r.stream_id] = out.get(r.stream_id, 0.0) + r.duration_us
    return out
