"""Device-side graph launch: one host launch for a whole dispatch program.

This is the simulator's analogue of CUDA Graphs (``cudaGraphLaunch``): an
ordered list of :class:`GraphOp` primitives — kernel launches, barriers,
event records and waits — that the engine enqueues in a single host-side
operation.  The host pays **one** ``T_launch`` for the entire program
instead of one per kernel (plus stream-switch penalties and per-primitive
driver costs), which is exactly the amortization the paper's launch-bound
loss cases (CIFAR10 conv1, Siamese conv1; Eq. 7) need.

Ordering semantics are byte-for-byte those of eager dispatch: kernels on
one stream stay FIFO, a ``barrier`` op reproduces a captured host
``synchronize`` as a legacy-default-stream join, and record/wait pairs
keep their cross-stream edges.  The engine wires the same dependency
graph either way (:meth:`repro.gpusim.engine.GPU._wire_dependencies`), so
a hazard-free program admits every interleaving eager dispatch could
produce and no new ones — the convergence-invariance guarantee is
unchanged by replay.

Build :class:`GraphOp` lists by hand for tests, or let
:mod:`repro.graphs.replay` instantiate them from a validated
:class:`repro.graphs.compiled.CompiledGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import GraphError
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.stream import Event, Stream

#: Graph op kinds, mirroring :mod:`repro.analyze.program` one-for-one.
GRAPH_OP_KINDS = ("launch", "barrier", "record", "wait")


@dataclass(frozen=True)
class GraphOp:
    """One node of an executable graph, bound to device handles.

    ``kind`` selects the primitive: ``launch`` needs ``spec`` + ``stream``;
    ``barrier`` (a captured host ``synchronize``) needs neither; ``record``
    and ``wait`` need ``event`` + ``stream``.
    """

    kind: str
    spec: Optional[KernelSpec] = None
    stream: Optional[Stream] = None
    event: Optional[Event] = None

    def __post_init__(self) -> None:
        if self.kind not in GRAPH_OP_KINDS:
            raise GraphError(
                f"unknown graph op kind {self.kind!r}; expected one of "
                f"{', '.join(GRAPH_OP_KINDS)}"
            )
        if self.kind == "launch" and self.spec is None:
            raise GraphError("launch graph op needs a kernel spec")
        if self.kind in ("record", "wait") and self.event is None:
            raise GraphError(f"{self.kind} graph op needs an event")


@dataclass
class GraphLaunchResult:
    """Host-side receipt of one graph launch.

    ``overhead_us`` is the single launch cost charged to the host clock —
    compare against ``launches * T_launch`` for the amortization win.
    """

    name: str
    launches: int
    ops: int
    overhead_us: float
    kernels: list = field(default_factory=list)


def count_launches(ops: Sequence[GraphOp]) -> int:
    """Number of kernel-launch nodes in ``ops``."""
    return sum(1 for op in ops if op.kind == "launch")
