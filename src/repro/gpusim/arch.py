"""GPU architecture generations and their feature sets.

This module encodes the paper's Table 1 ("Overview of GPU architecture
features"): which generations support CUDA streams and dynamic parallelism,
how many kernels each can execute concurrently, and whether unified virtual
memory (UVM) and tensor cores are present.

The *maximum concurrent kernels* column is the hardware work-queue depth that
bounds Eq. 6 of the analytical model (``sum #K_i <= C``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Architecture(enum.Enum):
    """NVIDIA GPU microarchitecture generations covered by the paper."""

    TESLA = "tesla"
    FERMI = "fermi"
    KEPLER = "kepler"
    MAXWELL = "maxwell"
    PASCAL = "pascal"
    VOLTA = "volta"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ArchFeatures:
    """Feature set of one architecture generation (paper Table 1).

    Attributes
    ----------
    streams:
        Whether multiple CUDA streams may make independent forward progress.
        Pre-Fermi hardware executes one kernel at a time regardless of the
        number of streams created.
    dynamic_parallelism:
        Device-side kernel launch support (Kepler and later).
    max_concurrent_kernels:
        The concurrency degree ``C`` of Eq. 6 — the number of kernels the
        hardware can have resident at once (Hyper-Q queue depth).
    uvm:
        Unified virtual memory (Pascal and later).
    tensor_cores:
        Mixed-precision matrix units (Volta and later).
    """

    streams: bool
    dynamic_parallelism: bool
    max_concurrent_kernels: int
    uvm: bool
    tensor_cores: bool


#: Paper Table 1, verbatim.
ARCH_FEATURES: dict[Architecture, ArchFeatures] = {
    Architecture.TESLA: ArchFeatures(
        streams=False, dynamic_parallelism=False, max_concurrent_kernels=1,
        uvm=False, tensor_cores=False,
    ),
    Architecture.FERMI: ArchFeatures(
        streams=True, dynamic_parallelism=False, max_concurrent_kernels=16,
        uvm=False, tensor_cores=False,
    ),
    Architecture.KEPLER: ArchFeatures(
        streams=True, dynamic_parallelism=True, max_concurrent_kernels=32,
        uvm=False, tensor_cores=False,
    ),
    Architecture.MAXWELL: ArchFeatures(
        streams=True, dynamic_parallelism=True, max_concurrent_kernels=16,
        uvm=False, tensor_cores=False,
    ),
    Architecture.PASCAL: ArchFeatures(
        streams=True, dynamic_parallelism=True, max_concurrent_kernels=128,
        uvm=True, tensor_cores=False,
    ),
    Architecture.VOLTA: ArchFeatures(
        streams=True, dynamic_parallelism=True, max_concurrent_kernels=128,
        uvm=True, tensor_cores=True,
    ),
}


def features_of(arch: Architecture) -> ArchFeatures:
    """Return the feature set of ``arch``.

    >>> features_of(Architecture.KEPLER).max_concurrent_kernels
    32
    """
    return ARCH_FEATURES[arch]


def concurrency_degree(arch: Architecture) -> int:
    """The maximum number of concurrently resident kernels, ``C`` in Eq. 6."""
    return ARCH_FEATURES[arch].max_concurrent_kernels
