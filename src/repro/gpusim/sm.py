"""Streaming-multiprocessor model: residency accounting + processor sharing.

Execution model
---------------
Thread blocks are placed on an SM in *cohorts* — groups of identical blocks
from the same kernel placed at the same instant.  Cohorts keep the event count
proportional to (kernels x SMs x waves) rather than to raw block counts,
which matters when CaffeNet-sized grids launch tens of thousands of blocks.

Each block carries *work* ``w`` measured in microseconds-at-full-SM-throughput
(computed by the roofline cost model) and a *demand* ``c`` — the fraction of
the SM's issue throughput a single such block can consume:

    c = min(1, warps_per_block / saturation_warps)

A block running alone therefore finishes in ``w / c`` (latency-bound blocks
take longer than their raw work — the under-utilization concurrent kernels
exploit), and a saturated SM processes total work at rate 1.

While several cohorts are resident the SM behaves as a processor-sharing
server: with total demand ``D = sum(n_i * c_i)`` every block progresses at
rate ``c_i * s`` where ``s = min(1, 1/D)``.  If the SM is under-saturated
(``D <= 1``) all blocks run at their solo speed — perfect overlap; beyond
saturation everyone slows down proportionally.  This reproduces both halves
of the paper's Figure 2: near-linear speedup while streams fill idle warp
slots, and a plateau once the SMs saturate.

The residency constraints (thread slots, shared memory, block slots,
registers) are the hard limits of Eqs. 4-5 plus the register file.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import LaunchConfig

#: Work below this is clamped so zero-flop kernels still take nonzero time.
MIN_BLOCK_WORK_US = 1e-3

_cohort_ids = itertools.count()


@dataclass
class Cohort:
    """A group of identical thread blocks co-resident on one SM.

    ``remaining_us`` tracks the per-block work left, in microseconds at full
    SM throughput; all blocks in the cohort progress in lockstep and finish
    together.
    """

    kernel_handle: object
    n_blocks: int
    work_per_block_us: float
    demand_per_block: float
    threads_per_block: int
    smem_per_block: int
    regs_per_block: int
    remaining_us: float = field(init=False)
    cohort_id: int = field(default_factory=lambda: next(_cohort_ids))

    def __post_init__(self) -> None:
        self.remaining_us = max(self.work_per_block_us, MIN_BLOCK_WORK_US)

    @property
    def demand(self) -> float:
        """Total issue-throughput demand of the cohort."""
        return self.n_blocks * self.demand_per_block


def block_demand(device: DeviceProperties, launch: LaunchConfig) -> float:
    """Fraction of one SM a single block of this kernel can keep busy."""
    return min(1.0, launch.warps_per_block / device.saturation_warps)


class SM:
    """One streaming multiprocessor: free-resource tracking + GPS execution.

    The engine drives the SM through three operations:

    * :meth:`fit_count` — how many more blocks of a given shape fit now;
    * :meth:`place` — admit a cohort (after advancing virtual time);
    * :meth:`advance` / :meth:`pop_finished` — progress work to ``now`` and
      collect cohorts that completed.

    ``version`` increments whenever the resident set changes so that stale
    completion events in the engine's heap can be discarded.
    """

    __slots__ = (
        "device", "index", "free_threads", "free_smem", "free_regs",
        "free_block_slots", "resident", "last_update", "version",
        "busy_integral_us", "warp_integral",
    )

    def __init__(self, device: DeviceProperties, index: int) -> None:
        self.device = device
        self.index = index
        self.free_threads = device.max_threads_per_sm
        self.free_smem = device.shared_mem_per_sm
        self.free_regs = device.registers_per_sm
        self.free_block_slots = device.max_blocks_per_sm
        self.resident: list[Cohort] = []
        self.last_update = 0.0
        self.version = 0
        # utilization accounting (microsecond-weighted integrals)
        self.busy_integral_us = 0.0
        self.warp_integral = 0.0

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def fit_count(self, launch: LaunchConfig) -> int:
        """How many additional blocks of ``launch`` fit on this SM now."""
        return self.fit_count_fast(
            launch.threads_per_block,
            launch.shared_mem_per_block,
            launch.registers_per_block,
        )

    def fit_count_fast(self, tpb: int, smem_pb: int, regs_pb: int) -> int:
        """Hot-path variant of :meth:`fit_count` taking precomputed scalars."""
        n = self.free_threads // tpb
        if n > self.free_block_slots:
            n = self.free_block_slots
        if smem_pb:
            m = self.free_smem // smem_pb
            if m < n:
                n = m
        m = self.free_regs // regs_pb
        if m < n:
            n = m
        return n if n > 0 else 0

    def place(
        self,
        now: float,
        kernel_handle: object,
        launch: LaunchConfig,
        n_blocks: int,
        work_per_block_us: float,
    ) -> Cohort:
        """Admit ``n_blocks`` identical blocks as one cohort."""
        if n_blocks < 1:
            raise SimulationError("cannot place an empty cohort")
        if n_blocks > self.fit_count(launch):
            raise SimulationError(
                f"SM{self.index}: cohort of {n_blocks} blocks does not fit"
            )
        self.advance(now)
        cohort = Cohort(
            kernel_handle=kernel_handle,
            n_blocks=n_blocks,
            work_per_block_us=work_per_block_us,
            demand_per_block=block_demand(self.device, launch),
            threads_per_block=launch.threads_per_block,
            smem_per_block=launch.shared_mem_per_block,
            regs_per_block=launch.registers_per_block,
        )
        self.free_threads -= n_blocks * cohort.threads_per_block
        self.free_smem -= n_blocks * cohort.smem_per_block
        self.free_regs -= n_blocks * cohort.regs_per_block
        self.free_block_slots -= n_blocks
        self.resident.append(cohort)
        self.version += 1
        return cohort

    def _release(self, cohort: Cohort) -> None:
        self.free_threads += cohort.n_blocks * cohort.threads_per_block
        self.free_smem += cohort.n_blocks * cohort.smem_per_block
        self.free_regs += cohort.n_blocks * cohort.regs_per_block
        self.free_block_slots += cohort.n_blocks

    # ------------------------------------------------------------------
    # Processor-sharing progress
    # ------------------------------------------------------------------
    def _scale(self) -> float:
        total_demand = sum(c.demand for c in self.resident)
        if total_demand <= 1.0:
            return 1.0
        return 1.0 / total_demand

    def advance(self, now: float) -> None:
        """Progress all resident cohorts from ``last_update`` to ``now``."""
        dt = now - self.last_update
        if dt < -1e-9:
            raise SimulationError(
                f"SM{self.index}: time went backwards ({self.last_update} -> {now})"
            )
        if dt > 0 and self.resident:
            s = self._scale()
            active_warps = 0
            for c in self.resident:
                rate = c.demand_per_block * s
                c.remaining_us = max(0.0, c.remaining_us - rate * dt)
                active_warps += c.n_blocks * math.ceil(c.threads_per_block / 32)
            self.busy_integral_us += dt
            self.warp_integral += dt * min(active_warps, self.device.max_warps_per_sm)
        self.last_update = max(self.last_update, now)

    def pop_finished(self, now: float, eps: float = 1e-9) -> list[Cohort]:
        """Advance to ``now`` and remove cohorts whose work is exhausted."""
        self.advance(now)
        done = [c for c in self.resident if c.remaining_us <= eps]
        if done:
            self.resident = [c for c in self.resident if c.remaining_us > eps]
            for c in done:
                self._release(c)
            self.version += 1
        return done

    def next_completion(self, now: float) -> Optional[float]:
        """Absolute time at which the next resident cohort will finish.

        Assumes the resident set does not change in the meantime; the engine
        re-queries after every placement/completion using ``version`` to
        invalidate stale predictions.
        """
        if not self.resident:
            return None
        self.advance(now)
        s = self._scale()
        t = min(
            c.remaining_us / (c.demand_per_block * s) for c in self.resident
        )
        return now + max(t, 0.0)

    # ------------------------------------------------------------------
    @property
    def occupancy_now(self) -> float:
        """Instantaneous fraction of warp slots occupied."""
        warps = sum(
            c.n_blocks * math.ceil(c.threads_per_block / 32)
            for c in self.resident
        )
        return min(1.0, warps / self.device.max_warps_per_sm)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SM{self.index}(resident={len(self.resident)}, "
            f"free_threads={self.free_threads}, free_smem={self.free_smem})"
        )
