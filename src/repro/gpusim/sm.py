"""Streaming-multiprocessor model: residency accounting + processor sharing.

Execution model
---------------
Thread blocks are placed on an SM in *cohorts* — groups of identical blocks
from the same kernel placed at the same instant.  Cohorts keep the event count
proportional to (kernels x SMs x waves) rather than to raw block counts,
which matters when CaffeNet-sized grids launch tens of thousands of blocks.

Each block carries *work* ``w`` measured in microseconds-at-full-SM-throughput
(computed by the roofline cost model) and a *demand* ``c`` — the fraction of
the SM's issue throughput a single such block can consume:

    c = min(1, warps_per_block / saturation_warps)

A block running alone therefore finishes in ``w / c`` (latency-bound blocks
take longer than their raw work — the under-utilization concurrent kernels
exploit), and a saturated SM processes total work at rate 1.

While several cohorts are resident the SM behaves as a processor-sharing
server: with total demand ``D = sum(n_i * c_i)`` every block progresses at
rate ``c_i * s`` where ``s = min(1, 1/D)``.  If the SM is under-saturated
(``D <= 1``) all blocks run at their solo speed — perfect overlap; beyond
saturation everyone slows down proportionally.  This reproduces both halves
of the paper's Figure 2: near-linear speedup while streams fill idle warp
slots, and a plateau once the SMs saturate.

The residency constraints (thread slots, shared memory, block slots,
registers) are the hard limits of Eqs. 4-5 plus the register file.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import LaunchConfig

#: Work below this is clamped so zero-flop kernels still take nonzero time.
MIN_BLOCK_WORK_US = 1e-3

_cohort_ids = itertools.count()


class Cohort:
    """A group of identical thread blocks co-resident on one SM.

    ``remaining_us`` tracks the per-block work left, in microseconds at full
    SM throughput; all blocks in the cohort progress in lockstep and finish
    together.

    A plain ``__slots__`` class rather than a dataclass: the engine creates
    one cohort per (kernel, SM, wave) and the dataclass machinery (field
    defaults, ``__post_init__`` dispatch) showed up in the hot-loop profile.
    """

    __slots__ = (
        "kernel_handle", "n_blocks", "work_per_block_us",
        "demand_per_block", "threads_per_block", "smem_per_block",
        "regs_per_block", "warps_per_block", "remaining_us", "cohort_id",
    )

    def __init__(
        self,
        kernel_handle: object,
        n_blocks: int,
        work_per_block_us: float,
        demand_per_block: float,
        threads_per_block: int,
        smem_per_block: int,
        regs_per_block: int,
        warps_per_block: Optional[int] = None,
    ) -> None:
        self.kernel_handle = kernel_handle
        self.n_blocks = n_blocks
        self.work_per_block_us = work_per_block_us
        self.demand_per_block = demand_per_block
        self.threads_per_block = threads_per_block
        self.smem_per_block = smem_per_block
        self.regs_per_block = regs_per_block
        self.warps_per_block = (
            math.ceil(threads_per_block / 32) if warps_per_block is None
            else warps_per_block
        )
        self.remaining_us = (
            work_per_block_us if work_per_block_us > MIN_BLOCK_WORK_US
            else MIN_BLOCK_WORK_US
        )
        self.cohort_id = next(_cohort_ids)

    @property
    def demand(self) -> float:
        """Total issue-throughput demand of the cohort."""
        return self.n_blocks * self.demand_per_block

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cohort(kernel={self.kernel_handle!r}, n={self.n_blocks}, "
            f"remaining={self.remaining_us:.3f}us)"
        )


def block_demand(device: DeviceProperties, launch: LaunchConfig) -> float:
    """Fraction of one SM a single block of this kernel can keep busy."""
    return min(1.0, launch.warps_per_block / device.saturation_warps)


class SM:
    """One streaming multiprocessor: free-resource tracking + GPS execution.

    The engine drives the SM through three operations:

    * :meth:`fit_count` — how many more blocks of a given shape fit now;
    * :meth:`place` — admit a cohort (after advancing virtual time);
    * :meth:`advance` / :meth:`pop_finished` — progress work to ``now`` and
      collect cohorts that completed.

    ``version`` increments whenever the resident set changes so that stale
    completion events in the engine's heap can be discarded.
    """

    __slots__ = (
        "device", "index", "free_threads", "free_smem", "free_regs",
        "free_block_slots", "resident", "last_update", "version",
        "busy_integral_us", "warp_integral",
        "_scale_version", "_scale_value",
    )

    def __init__(self, device: DeviceProperties, index: int) -> None:
        self.device = device
        self.index = index
        self.free_threads = device.max_threads_per_sm
        self.free_smem = device.shared_mem_per_sm
        self.free_regs = device.registers_per_sm
        self.free_block_slots = device.max_blocks_per_sm
        self.resident: list[Cohort] = []
        self.last_update = 0.0
        self.version = 0
        # utilization accounting (microsecond-weighted integrals)
        self.busy_integral_us = 0.0
        self.warp_integral = 0.0
        # processor-sharing scale memo, keyed by the residency version
        self._scale_version = -1
        self._scale_value = 1.0

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------
    def fit_count(self, launch: LaunchConfig) -> int:
        """How many additional blocks of ``launch`` fit on this SM now."""
        return self.fit_count_fast(
            launch.threads_per_block,
            launch.shared_mem_per_block,
            launch.registers_per_block,
        )

    def fit_count_fast(self, tpb: int, smem_pb: int, regs_pb: int) -> int:
        """Hot-path variant of :meth:`fit_count` taking precomputed scalars."""
        n = self.free_threads // tpb
        if n > self.free_block_slots:
            n = self.free_block_slots
        if smem_pb:
            m = self.free_smem // smem_pb
            if m < n:
                n = m
        m = self.free_regs // regs_pb
        if m < n:
            n = m
        return n if n > 0 else 0

    def place(
        self,
        now: float,
        kernel_handle: object,
        launch: LaunchConfig,
        n_blocks: int,
        work_per_block_us: float,
    ) -> Cohort:
        """Admit ``n_blocks`` identical blocks as one cohort."""
        if n_blocks < 1:
            raise SimulationError("cannot place an empty cohort")
        if n_blocks > self.fit_count(launch):
            raise SimulationError(
                f"SM{self.index}: cohort of {n_blocks} blocks does not fit"
            )
        return self.place_fast(
            now, kernel_handle, n_blocks, work_per_block_us,
            launch.threads_per_block, launch.shared_mem_per_block,
            launch.registers_per_block,
            block_demand(self.device, launch), launch.warps_per_block,
        )

    def place_fast(
        self,
        now: float,
        kernel_handle: object,
        n_blocks: int,
        work_per_block_us: float,
        tpb: int,
        smem_pb: int,
        regs_pb: int,
        demand_per_block: float,
        warps_per_block: int,
    ) -> Cohort:
        """Hot-path :meth:`place` taking precomputed per-block scalars.

        The engine has already fit-checked the cohort via
        :meth:`fit_count_fast` and carries the kernel's demand/warp
        numbers on its execution record, so the per-placement fit
        re-check and demand recomputation of :meth:`place` are skipped.
        """
        self.advance(now)
        cohort = Cohort(
            kernel_handle, n_blocks, work_per_block_us, demand_per_block,
            tpb, smem_pb, regs_pb, warps_per_block,
        )
        self.free_threads -= n_blocks * tpb
        self.free_smem -= n_blocks * smem_pb
        self.free_regs -= n_blocks * regs_pb
        self.free_block_slots -= n_blocks
        self.resident.append(cohort)
        self.version += 1
        return cohort

    def _release(self, cohort: Cohort) -> None:
        self.free_threads += cohort.n_blocks * cohort.threads_per_block
        self.free_smem += cohort.n_blocks * cohort.smem_per_block
        self.free_regs += cohort.n_blocks * cohort.regs_per_block
        self.free_block_slots += cohort.n_blocks

    # ------------------------------------------------------------------
    # Processor-sharing progress
    # ------------------------------------------------------------------
    def _scale(self) -> float:
        """Processor-sharing rate scale, memoized per residency version.

        The demand sum only changes when the resident set changes (cohort
        demands are immutable after placement), and every such change bumps
        ``version`` — so between bumps the cached value is exactly the
        ``sum()`` the uncached code would recompute, in the same order.
        """
        if self._scale_version == self.version:
            return self._scale_value
        resident = self.resident
        if len(resident) == 1:
            # Dominant case: one cohort resident.  ``sum`` over a single
            # term starts from 0 and adds it once — exact, so the fast
            # path is bit-identical.
            c = resident[0]
            total_demand = c.n_blocks * c.demand_per_block
        else:
            total_demand = sum(
                c.n_blocks * c.demand_per_block for c in resident
            )
        s = 1.0 if total_demand <= 1.0 else 1.0 / total_demand
        self._scale_version = self.version
        self._scale_value = s
        return s

    def advance(self, now: float) -> None:
        """Progress all resident cohorts from ``last_update`` to ``now``."""
        dt = now - self.last_update
        if dt <= 0.0:
            if dt < -1e-9:
                raise SimulationError(
                    f"SM{self.index}: time went backwards "
                    f"({self.last_update} -> {now})"
                )
            return
        if self.resident:
            s = self._scale()
            active_warps = 0
            for c in self.resident:
                rate = c.demand_per_block * s
                rem = c.remaining_us - rate * dt
                c.remaining_us = rem if rem > 0.0 else 0.0
                active_warps += c.n_blocks * c.warps_per_block
            max_warps = self.device.max_warps_per_sm
            self.busy_integral_us += dt
            self.warp_integral += dt * (
                active_warps if active_warps < max_warps else max_warps
            )
        self.last_update = now

    def pop_finished(self, now: float, eps: float = 1e-9) -> list[Cohort]:
        """Advance to ``now`` and remove cohorts whose work is exhausted."""
        self.advance(now)
        resident = self.resident
        if len(resident) == 1:
            # Dominant case: one cohort resident — skip the comprehensions.
            c = resident[0]
            if c.remaining_us <= eps:
                self.resident = []
                self._release(c)
                self.version += 1
                return [c]
            return []
        done = [c for c in resident if c.remaining_us <= eps]
        if done:
            self.resident = [c for c in resident if c.remaining_us > eps]
            for c in done:
                self._release(c)
            self.version += 1
        return done

    def next_completion(self, now: float) -> Optional[float]:
        """Absolute time at which the next resident cohort will finish.

        Assumes the resident set does not change in the meantime; the engine
        re-queries after every placement/completion using ``version`` to
        invalidate stale predictions.
        """
        resident = self.resident
        if not resident:
            return None
        self.advance(now)
        s = self._scale()
        if len(resident) == 1:
            c = resident[0]
            t = c.remaining_us / (c.demand_per_block * s)
        else:
            t = min(
                c.remaining_us / (c.demand_per_block * s) for c in resident
            )
        return now + (t if t > 0.0 else 0.0)

    # ------------------------------------------------------------------
    @property
    def occupancy_now(self) -> float:
        """Instantaneous fraction of warp slots occupied."""
        warps = sum(
            c.n_blocks * c.warps_per_block for c in self.resident
        )
        return min(1.0, warps / self.device.max_warps_per_sm)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SM{self.index}(resident={len(self.resident)}, "
            f"free_threads={self.free_threads}, free_smem={self.free_smem})"
        )
