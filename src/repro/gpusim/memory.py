"""Simulated device memory allocator.

A first-fit free-list allocator with coalescing, standing in for
``cudaMalloc`` / ``cudaFree``.  GLP4NN itself allocates only *host* memory
(the paper's space analysis, Eq. 10-11), but the lowered networks allocate
device blobs, and reproducing the paper's claim that the framework adds no
device memory requires accounting for device memory at all.

Allocations are 256-byte aligned like the CUDA allocator, so footprints
match what a real device would report to within alignment slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import OutOfMemoryError, SimulationError

#: cudaMalloc alignment guarantee.
ALIGNMENT = 256


def _align(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


@dataclass(frozen=True)
class Allocation:
    """Handle to one device allocation (offset is the simulated address)."""

    offset: int
    size: int
    requested: int
    label: str = ""


class DeviceAllocator:
    """First-fit free-list allocator over a flat address space."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise SimulationError("device memory capacity must be positive")
        self.capacity = capacity
        # Sorted, disjoint, coalesced list of (offset, size) holes.
        self._free: list[tuple[int, int]] = [(0, capacity)]
        self._live: dict[int, Allocation] = {}
        self.bytes_in_use = 0
        self.peak_bytes = 0
        self.alloc_count = 0

    def malloc(self, size: int, label: str = "") -> Allocation:
        """Allocate ``size`` bytes (rounded up to the 256 B alignment)."""
        if size <= 0:
            raise SimulationError(f"allocation size must be positive, got {size}")
        need = _align(size)
        for i, (off, hole) in enumerate(self._free):
            if hole >= need:
                if hole == need:
                    self._free.pop(i)
                else:
                    self._free[i] = (off + need, hole - need)
                alloc = Allocation(offset=off, size=need, requested=size,
                                   label=label)
                self._live[off] = alloc
                self.bytes_in_use += need
                self.peak_bytes = max(self.peak_bytes, self.bytes_in_use)
                self.alloc_count += 1
                return alloc
        raise OutOfMemoryError(
            f"device OOM: need {need} B, {self.bytes_free} B free "
            f"(fragmented into {len(self._free)} holes)"
        )

    def free(self, alloc: Allocation) -> None:
        """Release an allocation, coalescing adjacent holes."""
        live = self._live.pop(alloc.offset, None)
        if live is None or live.size != alloc.size:
            raise SimulationError(f"double free or foreign allocation: {alloc}")
        self.bytes_in_use -= alloc.size
        self._insert_hole(alloc.offset, alloc.size)

    def _insert_hole(self, off: int, size: int) -> None:
        lo, hi = 0, len(self._free)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._free[mid][0] < off:
                lo = mid + 1
            else:
                hi = mid
        self._free.insert(lo, (off, size))
        # Coalesce with right neighbour, then left.
        if lo + 1 < len(self._free):
            o2, s2 = self._free[lo + 1]
            if off + size == o2:
                self._free[lo] = (off, size + s2)
                self._free.pop(lo + 1)
        if lo > 0:
            o0, s0 = self._free[lo - 1]
            off1, size1 = self._free[lo]
            if o0 + s0 == off1:
                self._free[lo - 1] = (o0, s0 + size1)
                self._free.pop(lo)

    @property
    def bytes_free(self) -> int:
        return self.capacity - self.bytes_in_use

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property-based tests)."""
        covered = self.bytes_in_use + sum(s for _, s in self._free)
        if covered != self.capacity:
            raise SimulationError(
                f"allocator accounting broken: {covered} != {self.capacity}"
            )
        prev_end = -1
        for off, size in self._free:
            if size <= 0 or off <= prev_end:
                raise SimulationError("free list unsorted or zero-sized hole")
            prev_end = off + size - 1
