"""Device properties and the device catalog (paper Table 3).

A :class:`DeviceProperties` instance is the *device property* column of the
paper's Table 2: SM count, per-SM shared memory ``sm_max``, resident-thread
limit ``tau_max``, resident-block limit ``rho_max`` and the architecture's
concurrency degree ``C``.  It additionally carries the throughput numbers
(clock, core count, memory bandwidth) the roofline cost model needs, and two
host-side latencies (kernel launch overhead and stream-switch overhead) that
drive the launch-pipeline term of Eq. 7.

The catalog contains the paper's three evaluation GPUs — Tesla K40C, Tesla
P100 and Titan XP — plus a few extra devices used in tests to exercise other
architecture generations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError
from repro.gpusim.arch import Architecture, ARCH_FEATURES

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class DeviceProperties:
    """Static description of one GPU device.

    Resource limits
    ---------------
    sm_count:
        ``#SM`` of Table 2.
    max_threads_per_sm:
        ``tau_max`` — resident threads per SM (2048 on Kepler..Pascal).
    max_blocks_per_sm:
        ``rho_max`` — resident thread blocks per SM.
    shared_mem_per_sm:
        ``sm_max`` in bytes (paper Table 3's "L1 Cache / Shared Memory per
        SM" row).
    registers_per_sm:
        Register file size per SM, in 32-bit registers.

    Throughput
    ----------
    cores_per_sm, clock_ghz, mem_bandwidth_gbps:
        Used to derive the per-SM compute rate (FMA counted as 2 flops) and
        the per-SM share of DRAM bandwidth.
    saturation_warps:
        Number of resident warps needed to saturate one SM's issue pipeline;
        fewer warps leave the SM latency-bound, which is exactly the slack
        concurrent kernels exploit.

    Host-side latencies (microseconds)
    ----------------------------------
    launch_latency_us:
        ``T_launch`` of Eq. 7 — serialized host-side cost of one kernel
        launch.
    stream_switch_us:
        Extra driver cost when consecutive launches target different
        streams (work-queue switch).  This is why multi-stream execution of
        kernels too short to overlap is *slower* than the default stream —
        the effect behind the paper's CIFAR10-conv1 / Siamese-conv1
        degradations (Fig. 9).
    sync_base_us / sync_per_stream_us:
        Host cost of a device synchronization and its per-active-stream
        component.
    block_overhead_us:
        Fixed per-thread-block scheduling cost added to the roofline time.
    """

    name: str
    arch: Architecture
    sm_count: int
    cores_per_sm: int
    clock_ghz: float
    memory_bytes: int
    mem_bandwidth_gbps: float
    memory_type: str
    shared_mem_per_sm: int
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 16
    registers_per_sm: int = 65536
    max_threads_per_block: int = 1024
    max_shared_mem_per_block: int = 48 * KIB
    saturation_warps: int = 16
    launch_latency_us: float = 5.0
    stream_switch_us: float = 0.4
    sync_base_us: float = 1.5
    sync_per_stream_us: float = 0.5
    block_overhead_us: float = 0.2
    #: Host<->device transfer path (PCIe 3.0 x16 effective) and the DMA
    #: setup latency per copy.  All three evaluation GPUs are PCIe cards.
    pcie_bandwidth_gbps: float = 12.0
    copy_latency_us: float = 3.0
    cpu: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.sm_count < 1:
            raise DeviceError(f"{self.name}: sm_count must be >= 1")
        if self.max_threads_per_sm % 32:
            raise DeviceError(f"{self.name}: tau_max must be warp-aligned")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def max_concurrent_kernels(self) -> int:
        """``C`` of Eq. 6 — from the architecture feature table."""
        return ARCH_FEATURES[self.arch].max_concurrent_kernels

    @property
    def max_warps_per_sm(self) -> int:
        """``omega_SM`` of Eq. 1: maximum active warps per SM."""
        return self.max_threads_per_sm // 32

    @property
    def total_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def sm_flops_per_us(self) -> float:
        """Peak FP32 rate of one SM in flops per microsecond (FMA = 2)."""
        return self.cores_per_sm * self.clock_ghz * 2.0 * 1e3

    @property
    def sm_bytes_per_us(self) -> float:
        """One SM's fair share of DRAM bandwidth, bytes per microsecond."""
        return self.mem_bandwidth_gbps * 1e3 / self.sm_count

    @property
    def peak_gflops(self) -> float:
        return self.total_cores * self.clock_ghz * 2.0

    def describe(self) -> str:
        """One-line human summary used by examples and bench reports."""
        return (
            f"{self.name} ({self.arch.value}): {self.sm_count}x"
            f"{self.cores_per_sm} cores @ {self.clock_ghz:.3f} GHz, "
            f"{self.memory_bytes // GIB} GB {self.memory_type} @ "
            f"{self.mem_bandwidth_gbps:g} GB/s, C={self.max_concurrent_kernels}"
        )


#: Paper Table 3 plus auxiliary devices.  Shared-memory sizes follow the
#: table's "L1 Cache / Shared Memory per SM" row; Kepler exposes 16 resident
#: blocks per SM, Pascal 32.
DEVICE_CATALOG: dict[str, DeviceProperties] = {
    "K40C": DeviceProperties(
        name="K40C",
        arch=Architecture.KEPLER,
        sm_count=15,
        cores_per_sm=192,
        clock_ghz=0.745,
        memory_bytes=12 * GIB,
        mem_bandwidth_gbps=288.0,
        memory_type="GDDR5",
        shared_mem_per_sm=48 * KIB,
        max_blocks_per_sm=16,
        saturation_warps=24,
        launch_latency_us=8.0,
        stream_switch_us=0.6,
        cpu="Xeon E5-2620",
    ),
    "P100": DeviceProperties(
        name="P100",
        arch=Architecture.PASCAL,
        sm_count=56,
        cores_per_sm=64,
        clock_ghz=1.189,
        memory_bytes=12 * GIB,
        mem_bandwidth_gbps=549.0,
        memory_type="HBM2.0",
        shared_mem_per_sm=64 * KIB,
        max_blocks_per_sm=32,
        saturation_warps=8,
        launch_latency_us=5.5,
        stream_switch_us=0.4,
        cpu="Xeon E5-2640",
    ),
    "TitanXP": DeviceProperties(
        name="TitanXP",
        arch=Architecture.PASCAL,
        sm_count=30,
        cores_per_sm=128,
        clock_ghz=1.455,
        memory_bytes=12 * GIB,
        mem_bandwidth_gbps=547.7,
        memory_type="GDDR5X",
        shared_mem_per_sm=48 * KIB,
        max_blocks_per_sm=32,
        saturation_warps=16,
        launch_latency_us=5.0,
        stream_switch_us=0.4,
        cpu="Xeon E5-2650",
    ),
    # Auxiliary devices (not in the paper's Table 3) for architecture
    # coverage in tests and ablations.
    "GTX980": DeviceProperties(
        name="GTX980",
        arch=Architecture.MAXWELL,
        sm_count=16,
        cores_per_sm=128,
        clock_ghz=1.126,
        memory_bytes=4 * GIB,
        mem_bandwidth_gbps=224.0,
        memory_type="GDDR5",
        shared_mem_per_sm=96 * KIB,
        max_blocks_per_sm=32,
        saturation_warps=16,
        launch_latency_us=6.0,
    ),
    "V100": DeviceProperties(
        name="V100",
        arch=Architecture.VOLTA,
        sm_count=80,
        cores_per_sm=64,
        clock_ghz=1.53,
        memory_bytes=16 * GIB,
        mem_bandwidth_gbps=900.0,
        memory_type="HBM2.0",
        shared_mem_per_sm=96 * KIB,
        max_blocks_per_sm=32,
        saturation_warps=8,
        launch_latency_us=4.5,
    ),
    "K80": DeviceProperties(
        # one GK210 die of the dual-die board
        name="K80",
        arch=Architecture.KEPLER,
        sm_count=13,
        cores_per_sm=192,
        clock_ghz=0.875,
        memory_bytes=12 * GIB,
        mem_bandwidth_gbps=240.0,
        memory_type="GDDR5",
        shared_mem_per_sm=48 * KIB,
        max_blocks_per_sm=16,
        registers_per_sm=131072,      # GK210 doubled the register file
        saturation_warps=24,
        launch_latency_us=8.0,
        stream_switch_us=0.6,
    ),
    "GTX1080": DeviceProperties(
        name="GTX1080",
        arch=Architecture.PASCAL,
        sm_count=20,
        cores_per_sm=128,
        clock_ghz=1.607,
        memory_bytes=8 * GIB,
        mem_bandwidth_gbps=320.0,
        memory_type="GDDR5X",
        shared_mem_per_sm=48 * KIB,
        max_blocks_per_sm=32,
        saturation_warps=16,
        launch_latency_us=5.0,
    ),
    "C2050": DeviceProperties(
        name="C2050",
        arch=Architecture.FERMI,
        sm_count=14,
        cores_per_sm=32,
        clock_ghz=1.15,
        memory_bytes=3 * GIB,
        mem_bandwidth_gbps=144.0,
        memory_type="GDDR5",
        shared_mem_per_sm=48 * KIB,
        max_threads_per_sm=1536,
        max_blocks_per_sm=8,
        registers_per_sm=32768,
        saturation_warps=12,
        launch_latency_us=10.0,
    ),
}

#: GPUs used in the paper's evaluation, in presentation order.
PAPER_DEVICES = ("K40C", "P100", "TitanXP")


def get_device(name: str) -> DeviceProperties:
    """Look up a device by (case-insensitive) catalog name.

    >>> get_device("p100").sm_count
    56
    """
    for key, props in DEVICE_CATALOG.items():
        if key.lower() == name.lower():
            return props
    raise DeviceError(
        f"unknown device {name!r}; available: {', '.join(DEVICE_CATALOG)}"
    )


def list_devices() -> list[str]:
    """Names of all devices in the catalog."""
    return list(DEVICE_CATALOG)
