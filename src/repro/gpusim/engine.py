"""The discrete-event GPU engine.

This module ties the pieces together into a runnable device:

* a **host timeline** — kernel launches are serialized on the calling
  (single) host thread, each costing ``launch_latency_us`` plus a
  work-queue-switch penalty when consecutive launches target different
  streams.  This is the ``T_launch`` pipeline that bounds Eq. 7;
* **stream ordering** — per-stream FIFO dependencies plus legacy
  default-stream barrier semantics;
* **hardware work queues** — at most ``C`` kernels (the architecture's
  concurrent-kernel degree, Table 1) may be resident at once; further ready
  kernels wait for a slot in FIFO order;
* a **grid/block dispatcher** with the *leftover policy* real GPUs use:
  blocks of the oldest resident kernel are dispatched first, and a younger
  kernel's blocks only start flowing once the older kernel has no more
  blocks waiting (or none of them fit anywhere);
* per-SM **processor-sharing execution** (see :mod:`repro.gpusim.sm`).

Everything is deterministic: same launches, same timings, every run.

The engine purposely executes lazily — launches enqueue work, and the event
loop only runs when the host observes the device (synchronize / event
queries), mirroring the asynchrony of the CUDA runtime.
"""

from __future__ import annotations

import heapq
import itertools
import math
import operator
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.errors import DeviceError, SimulationError
from repro.faults.hooks import fault_check
from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.gpusim.memory import DeviceAllocator
from repro.gpusim.occupancy import validate_launch
from repro.gpusim.sm import SM, block_demand
from repro.gpusim.stream import DEFAULT_STREAM_ID, Event, Stream
from repro.gpusim.timeline import Timeline

#: Safety valve for the event loop.
MAX_EVENTS = 50_000_000

#: Interning table for per-block resource tuples (see :func:`intern_block_req`).
_block_req_intern: dict[tuple[int, int, int], tuple[int, int, int]] = {}


def intern_block_req(tpb: int, smem_pb: int,
                     regs_pb: int) -> tuple[int, int, int]:
    """Return a canonical shared tuple for one per-block resource footprint.

    Thousands of kernel executions share a handful of block shapes; interning
    the ``(threads, shared_mem, registers)`` tuple means each distinct shape
    is allocated once per process instead of once per launch.  Distinct
    shapes always map to distinct tuples — interning only aliases *equal*
    values (see ``tests/test_gpusim_properties.py``).
    """
    key = (tpb, smem_pb, regs_pb)
    got = _block_req_intern.get(key)
    if got is None:
        _block_req_intern[key] = key
        return key
    return got

# Operation lifecycle states.
_PENDING = "pending"      # created, waiting for host issue time and/or deps
_WAITING = "waiting"      # issued, waiting for a hardware kernel slot
_ACTIVE = "active"        # holds a slot; blocks being dispatched / running
_DONE = "done"


def default_block_work(spec: KernelSpec, device: DeviceProperties) -> float:
    """Roofline work of one thread block, in µs at full SM throughput.

    ``max(compute_time, memory_time)`` for the block's share of the kernel's
    flops and DRAM bytes, plus the fixed per-block scheduling overhead.  If
    the spec carries an explicit ``duration_us``, that is interpreted as the
    block's *solo* residence time and converted back to work units.
    """
    launch = spec.launch
    if spec.duration_us is not None:
        return spec.duration_us * block_demand(device, launch)
    threads = launch.threads_per_block
    compute = spec.flops_per_thread * threads / device.sm_flops_per_us
    memory = spec.bytes_per_thread * threads / device.sm_bytes_per_us
    return max(compute, memory) + device.block_overhead_us


class _Op:
    """Base class for device operations (kernels, event records)."""

    __slots__ = (
        "stream_id", "ready_time", "unresolved", "dependents", "state",
        "arrived", "complete_time", "seq",
    )

    _seq_counter = itertools.count()

    def __init__(self, stream_id: int, ready_time: float) -> None:
        self.stream_id = stream_id
        self.ready_time = ready_time
        self.unresolved = 0
        self.dependents: list[_Op] = []
        self.state = _PENDING
        self.arrived = False
        self.complete_time: Optional[float] = None
        self.seq = next(_Op._seq_counter)

    def depends_on(self, other: Optional["_Op"]) -> None:
        if other is None or other.state == _DONE or other is self:
            return
        other.dependents.append(self)
        self.unresolved += 1

    @property
    def is_complete(self) -> bool:
        return self.state == _DONE


class KernelExecution(_Op):
    """Runtime state of one launched kernel.

    Exposes the timestamps the resource tracker records: ``enqueue_time``
    (host-side launch), ``start_time`` (first block on an SM) and
    ``end_time`` (last block retired).
    """

    __slots__ = (
        "spec", "enqueue_time", "start_time", "end_time",
        "blocks_unscheduled", "blocks_inflight", "work_per_block",
        "block_req", "served_per_sm",
        "demand_per_block", "warps_per_block", "ideal_per_sm",
    )

    def __init__(self, spec: KernelSpec, stream_id: int, enqueue_time: float,
                 work_per_block: float,
                 block_req: Optional[tuple[int, int, int]] = None,
                 num_blocks: Optional[int] = None) -> None:
        super().__init__(stream_id, enqueue_time)
        self.spec = spec
        self.enqueue_time = enqueue_time
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.blocks_unscheduled = (
            spec.launch.num_blocks if num_blocks is None else num_blocks
        )
        self.blocks_inflight = 0
        self.work_per_block = work_per_block
        # Precomputed per-block resource footprint for the hot dispatch path.
        if block_req is None:
            block_req = (
                spec.launch.threads_per_block,
                spec.launch.shared_mem_per_block,
                spec.launch.registers_per_block,
            )
        self.block_req = block_req
        # Cumulative blocks dispatched per SM (fair-share dispatch).
        self.served_per_sm: dict[int, int] = {}
        # Device-dependent scheduling constants; the owning GPU fills
        # these from its per-spec cache right after construction.
        self.demand_per_block = 0.0
        self.warps_per_block = spec.launch.warps_per_block
        self.ideal_per_sm = 0

    @property
    def duration_us(self) -> float:
        """Wall-clock device time from first block start to last block end."""
        if self.start_time is None or self.end_time is None:
            raise SimulationError(f"kernel {self.spec.name} has not completed")
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<KernelExecution {self.spec.name} stream={self.stream_id} "
            f"state={self.state}>"
        )


class _EventRecord(_Op):
    """A ``cudaEventRecord`` marker inside a stream."""

    __slots__ = ("event",)

    def __init__(self, event: Event, stream_id: int, ready_time: float) -> None:
        super().__init__(stream_id, ready_time)
        self.event = event


class _EventWait(_Op):
    """A ``cudaStreamWaitEvent``: later ops in the stream wait for the event.

    Completes as soon as its dependencies (the previous op in the stream
    *and* the awaited event's record) are done — it performs no work.
    """

    __slots__ = ("event",)

    def __init__(self, event: Event, stream_id: int, ready_time: float) -> None:
        super().__init__(stream_id, ready_time)
        self.event = event


class MemcpyOp(_Op):
    """An async memcpy executing on one of the device's DMA engines.

    ``kind`` is ``"h2d"``, ``"d2h"`` (each direction has its own copy
    engine, as on real GPUs — transfers in opposite directions overlap) or
    ``"d2d"`` (runs at device-memory bandwidth, no PCIe involved).
    """

    __slots__ = ("kind", "nbytes", "start_time", "end_time")

    def __init__(self, kind: str, nbytes: int, stream_id: int,
                 ready_time: float) -> None:
        super().__init__(stream_id, ready_time)
        self.kind = kind
        self.nbytes = nbytes
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    @property
    def duration_us(self) -> float:
        if self.start_time is None or self.end_time is None:
            raise SimulationError("memcpy has not completed")
        return self.end_time - self.start_time


class GPU:
    """One simulated GPU device.

    Parameters
    ----------
    props:
        Static device description from the catalog.
    block_work_fn:
        Optional override of the per-block cost model (used by ablations).
    timeline:
        Set ``record_timeline=False`` to skip trace records on very large
        runs.
    """

    def __init__(
        self,
        props: DeviceProperties,
        block_work_fn: Callable[[KernelSpec, DeviceProperties], float] | None = None,
        record_timeline: bool = True,
    ) -> None:
        self.props = props
        self._block_work_fn = block_work_fn or default_block_work
        self.sms = [SM(props, i) for i in range(props.sm_count)]
        self.allocator = DeviceAllocator(props.memory_bytes)
        self.timeline = Timeline(device=props.name, enabled=record_timeline)

        self.host_time = 0.0      # host thread clock (µs)
        self.now = 0.0            # device clock: time of last processed event
        self._events: list = []   # heap of (time, seq, kind, payload)
        self._event_seq = itertools.count()

        self._stream_tails: dict[int, _Op] = {}
        self._last_barrier: Optional[_Op] = None
        self._pending_ops: int = 0
        self._pending_per_stream: dict[int, int] = {}

        self._slot_waiters: list[KernelExecution] = []
        self._active_kernels = 0
        self._dispatch_fifo: deque[KernelExecution] = deque()
        self._event_records: dict[int, _EventRecord] = {}
        # Per-spec launch constants, keyed by the spec's unique uid (uids
        # are allocated monotonically and never reused, so a cache entry
        # can never be observed through a different spec).
        self._spec_cache: dict[int, tuple] = {}
        # Per-direction DMA engines: time each becomes free.
        self._copy_engine_free = {"h2d": 0.0, "d2h": 0.0, "d2d": 0.0}
        self.bytes_copied = {"h2d": 0, "d2h": 0, "d2d": 0}

        self._last_launch_stream: Optional[int] = None
        self._streams_touched: set[int] = set()
        self._streams: dict[int, Stream] = {}
        self.default_stream = Stream(DEFAULT_STREAM_ID, device_name=props.name)
        self._streams[DEFAULT_STREAM_ID] = self.default_stream

        # counters exposed to tests / metrics
        self.kernels_launched = 0
        self.kernels_completed = 0
        self.graphs_launched = 0
        self.events_processed = 0
        self.launch_overhead_total = 0.0
        self.sync_overhead_total = 0.0

        # Driver hooks (used by the simulated CUPTI).  Launch hooks run on
        # the host thread at launch time and may charge host overhead by
        # advancing ``host_time``; completion hooks fire when the kernel's
        # last block retires on the device.
        self.launch_hooks: list[Callable[["GPU", KernelExecution], None]] = []
        self.completion_hooks: list[Callable[["GPU", KernelExecution], None]] = []

        # Order-permutation hook (the schedule fuzzer's device-side axis):
        # given the list of slot-waiting kernels, return the index to grant
        # next.  Every waiter is dependency-resolved by construction, so any
        # choice preserves program-order constraints — only interleaving
        # changes.  ``None`` keeps CUDA semantics (priority, then FIFO).
        self.grant_policy: Optional[
            Callable[[list[KernelExecution]], int]] = None

    # ------------------------------------------------------------------
    # Stream management
    # ------------------------------------------------------------------
    def create_stream(self, name: str = "", priority: int = 0) -> Stream:
        """Create a new non-default stream on this device.

        ``priority`` follows CUDA: lower value = higher priority; it breaks
        ties when kernels compete for hardware work-queue slots.
        """
        s = Stream.new(name=name, device_name=self.props.name,
                       priority=priority)
        self._streams[s.stream_id] = s
        return s

    def streams(self) -> list[Stream]:
        return list(self._streams.values())

    def _check_stream(self, stream: Optional[Stream]) -> Stream:
        if stream is None:
            return self.default_stream
        if stream.device_name and stream.device_name != self.props.name:
            raise DeviceError(
                f"stream {stream.name} belongs to device {stream.device_name}, "
                f"not {self.props.name}"
            )
        if stream.stream_id not in self._streams:
            self._streams[stream.stream_id] = stream
        return stream

    # ------------------------------------------------------------------
    # Launch & record
    # ------------------------------------------------------------------
    def _spec_info(self, spec: KernelSpec) -> tuple:
        """Validated, precomputed launch constants for one kernel spec.

        Keyed by ``spec.uid`` (monotonic, never reused — ``retagged()``
        copies get a fresh uid), so repeated launches of the same spec —
        the steady state of a training loop — skip re-validation and the
        per-launch geometry/demand arithmetic.  The per-block *work* is
        cached only under the default cost model; a custom
        ``block_work_fn`` may close over mutable state, so it is
        re-evaluated on every launch exactly as before.  Validation
        failures are never cached: an invalid spec raises afresh each
        launch, matching the uncached error surface.
        """
        info = self._spec_cache.get(spec.uid)
        if info is None:
            launch = spec.launch
            validate_launch(self.props, launch)
            work = (
                default_block_work(spec, self.props)
                if self._block_work_fn is default_block_work else None
            )
            info = (
                work,
                intern_block_req(
                    launch.threads_per_block,
                    launch.shared_mem_per_block,
                    launch.registers_per_block,
                ),
                block_demand(self.props, launch),
                launch.warps_per_block,
                -(-launch.num_blocks // self.props.sm_count),  # ceil
                launch.num_blocks,
            )
            self._spec_cache[spec.uid] = info
        return info

    def launch(self, spec: KernelSpec, stream: Optional[Stream] = None,
               enqueue_at: Optional[float] = None) -> KernelExecution:
        """Launch a kernel asynchronously onto ``stream``.

        Advances the host clock by the launch overhead and enqueues the
        kernel; no device work happens until the event loop runs.

        ``enqueue_at`` models *multi-threaded* host dispatch (the
        OpenMP-style alternative the paper argues against): the launch is
        stamped with an explicitly scheduled host time computed by the
        caller's per-thread clock instead of the single host thread's
        serialized pipeline.  It must not lie in the device's past.
        """
        # Fault-injection site: fires *before* any engine state changes, so
        # a rejected launch can be retried without corrupting the timeline.
        fault_check("launch", spec.name)
        stream = self._check_stream(stream)
        work, block_req, demand, warps, ideal, num_blocks = (
            self._spec_info(spec)
        )

        if enqueue_at is None:
            overhead = self.props.launch_latency_us
            if (
                self._last_launch_stream is not None
                and self._last_launch_stream != stream.stream_id
            ):
                overhead += self.props.stream_switch_us
            self._last_launch_stream = stream.stream_id
            self.host_time += overhead
            self.launch_overhead_total += overhead
        else:
            if enqueue_at < self.now - 1e-9:
                raise SimulationError(
                    f"enqueue_at {enqueue_at} lies in the device's past "
                    f"({self.now})"
                )
            self.host_time = max(self.host_time, enqueue_at)
            self._last_launch_stream = stream.stream_id

        if work is None:     # custom cost model: evaluate per launch
            work = self._block_work_fn(spec, self.props)
        ke = KernelExecution(spec, stream.stream_id, self.host_time, work,
                             block_req, num_blocks)
        ke.demand_per_block = demand
        ke.warps_per_block = warps
        ke.ideal_per_sm = ideal
        for hook in self.launch_hooks:
            hook(self, ke)
        ke.ready_time = ke.enqueue_time = (
            self.host_time if enqueue_at is None else enqueue_at
        )
        self._wire_dependencies(ke, stream)
        self._register_op(ke, stream)
        self.kernels_launched += 1
        return ke

    def record_event(self, event: Event, stream: Optional[Stream] = None
                     ) -> Event:
        """Record ``event`` into ``stream`` (completes after prior work)."""
        stream = self._check_stream(stream)
        # Event records are cheap but not free on the host.
        self.host_time += 0.2
        op = _EventRecord(event, stream.stream_id, self.host_time)
        self._wire_dependencies(op, stream)
        self._register_op(op, stream)
        self._event_records[event.event_id] = op
        return event

    def wait_event(self, event: Event, stream: Optional[Stream] = None
                   ) -> None:
        """``cudaStreamWaitEvent``: gate later ops in ``stream`` on ``event``.

        The cross-stream dependency primitive used by the DAG dispatcher
        (the paper's "complex kernel dependencies" future-work item).  An
        event that was never recorded gates nothing, as in CUDA.
        """
        stream = self._check_stream(stream)
        self.host_time += 0.2
        op = _EventWait(event, stream.stream_id, self.host_time)
        self._wire_dependencies(op, stream)
        record = self._event_records.get(event.event_id)
        if record is not None:
            op.depends_on(record)
        self._register_op(op, stream)

    def launch_graph(self, ops, name: str = "graph"):
        """Launch a whole dispatch program with one host-side operation.

        The CUDA-Graphs analogue (``cudaGraphLaunch``): the host pays a
        single ``launch_latency_us`` for the entire op list instead of one
        ``T_launch`` (plus stream-switch and event-primitive costs) per
        node — the amortization that removes the Eq. 7 launch-pipeline
        bound from sub-millisecond layers.  Device-side semantics are
        identical to eager dispatch: every node is enqueued at the same
        host timestamp with the standard dependency wiring (stream FIFO,
        default-stream barriers, event edges), so a graph admits exactly
        the interleavings its eager counterpart would.

        ``ops`` is a sequence of :class:`repro.gpusim.graph.GraphOp`; a
        ``barrier`` op reproduces a captured host ``synchronize`` as a
        zero-cost join on the legacy default stream.  Kernels inside a
        graph do not pass through the per-kernel ``launch`` fault site —
        the graph has its own site (``graph_launch``), which fires before
        any engine state changes so a rejected launch can fall back to
        eager dispatch cleanly.
        """
        from repro.gpusim.graph import GraphLaunchResult

        ops = list(ops)
        if not ops:
            raise SimulationError(f"graph {name!r} has no ops")
        # Fault-injection site + validation both run *before* any state
        # changes: a refused graph launch is retryable/fallback-safe.
        fault_check("graph_launch", name)
        for op in ops:
            if op.kind == "launch":
                validate_launch(self.props, op.spec.launch)
        overhead = self.props.launch_latency_us
        self.host_time += overhead
        self.launch_overhead_total += overhead
        self.graphs_launched += 1
        t = self.host_time
        kernels: list[KernelExecution] = []
        for op in ops:
            if op.kind == "launch":
                kernels.append(self._enqueue_graph_kernel(op.spec,
                                                          op.stream, t))
            elif op.kind == "barrier":
                marker = Event(name=f"{name}.barrier")
                bar = _EventRecord(marker, DEFAULT_STREAM_ID, t)
                self._wire_dependencies(bar, self.default_stream)
                self._register_op(bar, self.default_stream)
            elif op.kind == "record":
                stream = self._check_stream(op.stream)
                rec = _EventRecord(op.event, stream.stream_id, t)
                self._wire_dependencies(rec, stream)
                self._register_op(rec, stream)
                self._event_records[op.event.event_id] = rec
            elif op.kind == "wait":
                stream = self._check_stream(op.stream)
                wait = _EventWait(op.event, stream.stream_id, t)
                self._wire_dependencies(wait, stream)
                record = self._event_records.get(op.event.event_id)
                if record is not None:
                    wait.depends_on(record)
                self._register_op(wait, stream)
            else:  # pragma: no cover - GraphOp validates kinds
                raise SimulationError(f"unknown graph op kind {op.kind!r}")
        return GraphLaunchResult(name=name, launches=len(kernels),
                                 ops=len(ops), overhead_us=overhead,
                                 kernels=kernels)

    def _enqueue_graph_kernel(self, spec: KernelSpec,
                              stream: Optional[Stream],
                              t: float) -> KernelExecution:
        """Enqueue one replayed kernel at host time ``t``, free of charge.

        Mirrors :meth:`launch` minus the host-side costs and the
        per-kernel fault site — inside a graph those are paid once, by
        :meth:`launch_graph` itself.
        """
        stream = self._check_stream(stream)
        work, block_req, demand, warps, ideal, num_blocks = (
            self._spec_info(spec)
        )
        if work is None:     # custom cost model: evaluate per launch
            work = self._block_work_fn(spec, self.props)
        ke = KernelExecution(spec, stream.stream_id, t, work,
                             block_req, num_blocks)
        ke.demand_per_block = demand
        ke.warps_per_block = warps
        ke.ideal_per_sm = ideal
        for hook in self.launch_hooks:
            hook(self, ke)
        ke.ready_time = ke.enqueue_time = t
        self._wire_dependencies(ke, stream)
        self._register_op(ke, stream)
        self._last_launch_stream = stream.stream_id
        self.kernels_launched += 1
        return ke

    def memcpy(self, nbytes: int, kind: str = "h2d",
               stream: Optional[Stream] = None) -> MemcpyOp:
        """Enqueue an async memcpy onto ``stream`` (cudaMemcpyAsync).

        Copies obey stream order like kernels but execute on the DMA
        engines, so a transfer on one stream overlaps compute on another —
        the copy/compute overlap pattern CUDA streams were introduced for.
        """
        if kind not in self._copy_engine_free:
            raise DeviceError(f"unknown memcpy kind {kind!r}")
        if nbytes <= 0:
            raise DeviceError("memcpy size must be positive")
        stream = self._check_stream(stream)
        self.host_time += 1.0     # cudaMemcpyAsync driver overhead
        op = MemcpyOp(kind, int(nbytes), stream.stream_id, self.host_time)
        self._wire_dependencies(op, stream)
        self._register_op(op, stream)
        return op

    def _memcpy_duration(self, op: MemcpyOp) -> float:
        if op.kind == "d2d":
            # device-to-device runs at memory bandwidth (read + write)
            rate = self.props.mem_bandwidth_gbps * 1e3 / 2.0
        else:
            rate = self.props.pcie_bandwidth_gbps * 1e3
        return self.props.copy_latency_us + op.nbytes / rate

    def _wire_dependencies(self, op: _Op, stream: Stream) -> None:
        op.depends_on(self._stream_tails.get(stream.stream_id))
        if stream.is_default:
            # Legacy default stream: barrier against every other stream.
            for sid, tail in self._stream_tails.items():
                if sid != DEFAULT_STREAM_ID:
                    op.depends_on(tail)
            self._last_barrier = op
        else:
            op.depends_on(self._last_barrier)

    def _register_op(self, op: _Op, stream: Stream) -> None:
        self._stream_tails[stream.stream_id] = op
        self._pending_ops += 1
        self._pending_per_stream[stream.stream_id] = (
            self._pending_per_stream.get(stream.stream_id, 0) + 1
        )
        self._streams_touched.add(stream.stream_id)
        self._push_event(op.ready_time, "arrive", op)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def _push_event(self, time: float, kind: str, payload) -> None:
        heapq.heappush(self._events, (time, next(self._event_seq), kind, payload))

    def _push_sm_completion(self, sm: SM) -> None:
        t = sm.next_completion(self.now)
        if t is not None:
            self._push_event(t, "sm", (sm, sm.version))

    def _pop_event(self) -> tuple:
        """Pop the earliest heap event and advance the device clock to it.

        Guards the heap's time-ordering invariant: an event scheduled
        behind the device clock means the engine pushed into the past,
        and the error names the offending event so the bug is locatable
        from the message alone.
        """
        time, _, kind, payload = heapq.heappop(self._events)
        self.events_processed += 1
        if time < self.now - 1e-9:
            raise SimulationError(
                f"event heap produced out-of-order time: {kind!r} event at "
                f"t={time} behind device clock {self.now} "
                f"(payload: {payload!r})"
            )
        if time > self.now:
            self.now = time
        return kind, payload

    def _process_next_event(self) -> None:
        """Pop and handle the single earliest event on the heap."""
        kind, payload = self._pop_event()
        if kind == "arrive":
            op: _Op = payload
            op.arrived = True
            self._maybe_issue(op)
        elif kind == "sm":
            sm, version = payload
            if version != sm.version:
                return  # stale prediction; resident set changed since push
            finished = sm.pop_finished(self.now)
            for cohort in finished:
                ke: KernelExecution = cohort.kernel_handle
                ke.blocks_inflight -= cohort.n_blocks
                if ke.blocks_inflight == 0 and ke.blocks_unscheduled == 0:
                    self._complete_kernel(ke)
            self._push_sm_completion(sm)
            self._try_dispatch()
        elif kind == "copy":
            op: MemcpyOp = payload
            op.end_time = self.now
            tl = self.timeline
            if tl.enabled:
                tl.add_raw(
                    f"memcpy{op.kind.upper()}", "", op.stream_id,
                    op.ready_time,
                    op.start_time if op.start_time is not None else self.now,
                    self.now, (1, 1, 1), (1, 1, 1), 0, 0,
                )
            self._complete_op(op, self.now)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {kind!r}")

    def _run_until(self, predicate: Callable[[], bool]) -> None:
        """Process events in time order until ``predicate`` holds."""
        guard = 0
        while not predicate():
            if not self._events:
                raise SimulationError(
                    "device deadlock: pending work but no events "
                    f"({self._pending_ops} ops outstanding)"
                )
            self._process_next_event()
            guard += 1
            if guard > MAX_EVENTS:  # pragma: no cover - defensive
                raise SimulationError("event budget exhausted (runaway loop?)")

    def _maybe_issue(self, op: _Op) -> None:
        if op.state != _PENDING or not op.arrived or op.unresolved > 0:
            return
        if isinstance(op, KernelExecution):
            op.state = _WAITING
            self._slot_waiters.append(op)
            self._try_grant()
        elif isinstance(op, _EventRecord):
            t = max(self.now, op.ready_time)
            op.event.timestamp_us = t
            tl = self.timeline
            if tl.enabled:
                tl.add_sync_raw("record", op.event.event_id, op.event.name,
                                op.stream_id, op.ready_time, t)
            self._complete_op(op, t)
        elif isinstance(op, _EventWait):
            t = max(self.now, op.ready_time)
            tl = self.timeline
            if tl.enabled:
                tl.add_sync_raw("wait", op.event.event_id, op.event.name,
                                op.stream_id, op.ready_time, t)
            self._complete_op(op, t)
        elif isinstance(op, MemcpyOp):
            start = max(self.now, op.ready_time,
                        self._copy_engine_free[op.kind])
            end = start + self._memcpy_duration(op)
            op.start_time = start
            self._copy_engine_free[op.kind] = end
            self.bytes_copied[op.kind] += op.nbytes
            self._push_event(end, "copy", op)

    def _stream_priority(self, stream_id: int) -> int:
        stream = self._streams.get(stream_id)
        return stream.priority if stream is not None else 0

    def _try_grant(self) -> None:
        limit = self.props.max_concurrent_kernels
        while self._slot_waiters and self._active_kernels < limit:
            if self.grant_policy is not None:
                best = int(self.grant_policy(self._slot_waiters))
                if not 0 <= best < len(self._slot_waiters):
                    raise SimulationError(
                        f"grant_policy returned {best}, outside "
                        f"[0, {len(self._slot_waiters)})"
                    )
            else:
                # CUDA priority semantics: the highest-priority (lowest
                # value) waiting kernel takes the freed slot; FIFO within
                # a priority.  Manual scan (strict ``<`` keeps the lowest
                # index on ties, i.e. FIFO) — equivalent to ``min`` over
                # ``(priority, index)`` without the tuple/closure churn.
                waiters = self._slot_waiters
                best = 0
                if len(waiters) > 1:
                    streams = self._streams
                    s = streams.get(waiters[0].stream_id)
                    best_pr = s.priority if s is not None else 0
                    for i in range(1, len(waiters)):
                        s = streams.get(waiters[i].stream_id)
                        pr = s.priority if s is not None else 0
                        if pr < best_pr:
                            best = i
                            best_pr = pr
            ke = self._slot_waiters.pop(best)
            ke.state = _ACTIVE
            self._active_kernels += 1
            self._dispatch_fifo.append(ke)
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        """Leftover-policy block dispatcher: fill SMs from the oldest kernel."""
        while self._dispatch_fifo:
            head = self._dispatch_fifo[0]
            if head.blocks_unscheduled == 0:
                self._dispatch_fifo.popleft()
                continue
            placed = self._place_blocks(head)
            if not placed:
                return  # head stalls; younger kernels wait (leftover policy)

    def _place_blocks(self, ke: KernelExecution) -> bool:
        """Spread as many of ``ke``'s waiting blocks as fit across the SMs.

        Fair-share dispatch: over the kernel's lifetime, each SM serves at
        most ``ceil(grid / #SM)`` of its blocks.  This models the real
        hardware scheduler's fine-grained balancing — without it, the tail
        of a grid would pile onto whichever SM happens to free first, which
        never happens on silicon where blocks retire one at a time.
        """
        tpb, smem_pb, regs_pb = ke.block_req
        ideal = ke.ideal_per_sm
        served = ke.served_per_sm
        served_get = served.get
        candidates: list[tuple[int, SM, int]] = []
        for sm in self.sms:
            allowance = ideal - served_get(sm.index, 0)
            if allowance <= 0:
                continue
            # Inlined SM.fit_count_fast: this scan visits every SM per
            # placement round, and the call overhead alone was visible in
            # the hot-loop profile.  Same integer arithmetic, same result.
            free_threads = sm.free_threads
            fit = free_threads // tpb
            if fit > sm.free_block_slots:
                fit = sm.free_block_slots
            if smem_pb:
                m = sm.free_smem // smem_pb
                if m < fit:
                    fit = m
            m = sm.free_regs // regs_pb
            if m < fit:
                fit = m
            if fit > 0:
                candidates.append((
                    free_threads, sm,
                    fit if fit < allowance else allowance,
                ))
        if not candidates:
            return False
        remaining = ke.blocks_unscheduled
        # Even spread (the model's Eq. 8 assumption): split the batch across
        # all SMs with space, biggest-free first.  The sort key is the
        # pre-captured free_threads; stable sort keeps SM-index order on
        # ties, exactly as the previous key-function sort did.
        candidates.sort(key=operator.itemgetter(0), reverse=True)
        share = max(1, math.ceil(remaining / len(candidates)))
        now = self.now
        work = ke.work_per_block
        demand = ke.demand_per_block
        warps = ke.warps_per_block
        placed_any = False
        for _, sm, fit in candidates:
            if ke.blocks_unscheduled == 0:
                break
            n = min(fit, share, ke.blocks_unscheduled)
            if n <= 0:
                continue
            sm.place_fast(now, ke, n, work, tpb, smem_pb, regs_pb,
                          demand, warps)
            served[sm.index] = served.get(sm.index, 0) + n
            ke.blocks_unscheduled -= n
            ke.blocks_inflight += n
            if ke.start_time is None:
                ke.start_time = now
            self._push_sm_completion(sm)
            placed_any = True
        return placed_any

    def _complete_kernel(self, ke: KernelExecution) -> None:
        ke.end_time = self.now
        self._active_kernels -= 1
        self.kernels_completed += 1
        tl = self.timeline
        if tl.enabled:
            spec = ke.spec
            launch = spec.launch
            tl.add_raw(
                spec.name, spec.tag, ke.stream_id, ke.enqueue_time,
                ke.start_time if ke.start_time is not None else ke.end_time,
                ke.end_time, launch.grid, launch.block,
                launch.registers_per_thread, launch.shared_mem_per_block,
            )
        for hook in self.completion_hooks:
            hook(self, ke)
        self._complete_op(ke, self.now)
        self._try_grant()

    def _complete_op(self, op: _Op, time: float) -> None:
        op.state = _DONE
        op.complete_time = time
        self._pending_ops -= 1
        self._pending_per_stream[op.stream_id] -= 1
        for dep in op.dependents:
            dep.unresolved -= 1
            self._maybe_issue(dep)
        op.dependents = []

    # ------------------------------------------------------------------
    # Host-side synchronization
    # ------------------------------------------------------------------
    def synchronize(self) -> float:
        """Block the host until all device work completes; return device time.

        Adds the host-side synchronization overhead (grows with the number
        of distinct streams touched since the previous synchronization).
        """
        # Fault-injection site: fires before event processing, so a failed
        # synchronize leaves all pending work intact for the retry.
        fault_check("sync", self.props.name)
        self._run_until(lambda: self._pending_ops == 0)
        cost = (
            self.props.sync_base_us
            + self.props.sync_per_stream_us * max(0, len(self._streams_touched) - 1)
        )
        self.sync_overhead_total += cost
        self._streams_touched.clear()
        self.host_time = max(self.host_time, self.now) + cost
        return self.now

    def stream_synchronize(self, stream: Stream) -> float:
        """Block until all work previously issued to ``stream`` completes."""
        stream = self._check_stream(stream)
        sid = stream.stream_id
        self._run_until(lambda: self._pending_per_stream.get(sid, 0) == 0)
        self.host_time = max(self.host_time, self.now) + self.props.sync_base_us
        self.sync_overhead_total += self.props.sync_base_us
        return self.now

    def event_synchronize(self, event: Event) -> float:
        """Block until ``event`` completes; return its timestamp."""
        self._run_until(lambda: event.is_complete)
        assert event.timestamp_us is not None
        self.host_time = max(self.host_time, event.timestamp_us)
        return event.timestamp_us

    def query_complete(self, ke: KernelExecution) -> bool:
        """Non-blocking completion test (processes due events first)."""
        self._drain_due()
        return ke.is_complete

    def _drain_due(self) -> None:
        """Process all events at or before the host clock."""
        while self._events and self._events[0][0] <= self.host_time:
            self._process_next_event()

    # ------------------------------------------------------------------
    # Metrics & lifecycle
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Current host wall-clock, µs (device included up to last sync)."""
        return self.host_time

    def utilization(self) -> float:
        """Time-averaged warp occupancy across all SMs since reset."""
        if self.now <= 0:
            return 0.0
        total = sum(sm.warp_integral for sm in self.sms)
        return total / (self.now * self.props.sm_count * self.props.max_warps_per_sm)

    def reset(self) -> None:
        """Clear all device state and rewind clocks (new measurement run)."""
        if self._pending_ops:
            raise SimulationError("cannot reset a device with pending work")
        self.__init__(
            self.props,
            block_work_fn=self._block_work_fn,
            record_timeline=self.timeline.enabled,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GPU({self.props.name}, t={self.now:.1f}us)"
