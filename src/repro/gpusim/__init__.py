"""Discrete-event simulator of an NVIDIA-style GPU.

The simulator models the pieces of a modern GPU that GLP4NN's behaviour
depends on:

* **Architecture generations** and their feature sets (paper Table 1) in
  :mod:`repro.gpusim.arch`.
* **Devices** (paper Table 3: K40C, P100, Titan XP, and a few extras) with
  per-SM resource limits in :mod:`repro.gpusim.device`.
* **Kernels and launch configurations** (grid/block dimensions, registers,
  static + dynamic shared memory) in :mod:`repro.gpusim.kernel`.
* A CUDA-style **occupancy calculator** in :mod:`repro.gpusim.occupancy`.
* **Streams and events** with in-order-per-stream / concurrent-across-stream
  semantics and legacy default-stream synchronization in
  :mod:`repro.gpusim.stream`.
* The **discrete-event engine** — host-side serialized launch latency,
  hardware work queues bounded by the architecture's concurrent-kernel
  degree, a block dispatcher, and per-SM processor-sharing execution — in
  :mod:`repro.gpusim.engine` and :mod:`repro.gpusim.sm`.
* A device **memory allocator** in :mod:`repro.gpusim.memory` and
  **timeline tracing** (Chrome-trace export, ASCII lanes) in
  :mod:`repro.gpusim.timeline`.

Quickstart
----------
>>> from repro.gpusim import get_device, GPU
>>> gpu = GPU(get_device("P100"))
>>> s = gpu.create_stream()
>>> from repro.gpusim import KernelSpec, LaunchConfig
>>> k = KernelSpec(name="axpy", launch=LaunchConfig(grid=(56, 1, 1),
...                block=(256, 1, 1)), flops_per_thread=2.0,
...                bytes_per_thread=12.0)
>>> gpu.launch(k, stream=s)  # doctest: +ELLIPSIS
<repro.gpusim.engine.KernelExecution ...>
>>> gpu.synchronize()
>>> gpu.now > 0
True
"""

from repro.gpusim.arch import Architecture, ArchFeatures, ARCH_FEATURES
from repro.gpusim.kernel import Dim3, LaunchConfig, KernelSpec, dim3_size
from repro.gpusim.device import DeviceProperties, get_device, list_devices, DEVICE_CATALOG
from repro.gpusim.occupancy import OccupancyResult, occupancy, max_active_blocks_per_sm
from repro.gpusim.stream import Stream, Event, DEFAULT_STREAM_ID
from repro.gpusim.engine import GPU, KernelExecution
from repro.gpusim.memory import DeviceAllocator, Allocation
from repro.gpusim.timeline import Timeline, TraceRecord, ascii_timeline, to_chrome_trace
from repro.gpusim.traceanalysis import TraceStats, analyze as analyze_trace, per_stream_busy

__all__ = [
    "Architecture",
    "ArchFeatures",
    "ARCH_FEATURES",
    "Dim3",
    "LaunchConfig",
    "KernelSpec",
    "dim3_size",
    "DeviceProperties",
    "get_device",
    "list_devices",
    "DEVICE_CATALOG",
    "OccupancyResult",
    "occupancy",
    "max_active_blocks_per_sm",
    "Stream",
    "Event",
    "DEFAULT_STREAM_ID",
    "GPU",
    "KernelExecution",
    "DeviceAllocator",
    "Allocation",
    "Timeline",
    "TraceRecord",
    "ascii_timeline",
    "to_chrome_trace",
    "TraceStats",
    "analyze_trace",
    "per_stream_busy",
]
