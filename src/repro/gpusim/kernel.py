"""Kernel and launch-configuration primitives.

A :class:`KernelSpec` is the simulator's unit of GPU work: a named kernel
with a CUDA-style launch configuration (grid and block dimensions, registers
per thread, static + dynamic shared memory per block) and a per-thread work
description (floating-point operations and DRAM bytes) that the cost model in
:mod:`repro.kernels.costmodel` turns into execution time.

These are exactly the quantities GLP4NN's resource tracker collects through
CUPTI on real hardware: grid/block geometry, register count and shared-memory
footprint (profiling input of Table 2), plus the measured duration ``T_Ki``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import LaunchError

Dim3 = Tuple[int, int, int]

#: CUDA warp size on every generation covered by the paper.
WARP_SIZE = 32

_kernel_ids = itertools.count()


def dim3_size(d: Dim3) -> int:
    """Total element count of a ``dim3`` (product of its components)."""
    return d[0] * d[1] * d[2]


def as_dim3(value: int | Tuple[int, ...] ) -> Dim3:
    """Normalize an ``int`` or short tuple to a full ``(x, y, z)`` triple.

    >>> as_dim3(8)
    (8, 1, 1)
    >>> as_dim3((4, 2))
    (4, 2, 1)
    """
    if isinstance(value, int):
        return (value, 1, 1)
    t = tuple(int(v) for v in value)
    if len(t) > 3 or len(t) == 0:
        raise LaunchError(f"dim3 must have 1-3 components, got {value!r}")
    return (t + (1, 1, 1))[:3]  # type: ignore[return-value]


@dataclass(frozen=True)
class LaunchConfig:
    """CUDA ``<<<grid, block, smem>>>`` launch configuration plus registers.

    Attributes
    ----------
    grid:
        Grid dimensions; ``dim3_size(grid)`` is ``#beta_Ki`` of Table 2 (the
        total number of thread blocks of the kernel).
    block:
        Block dimensions; ``dim3_size(block)`` is ``tau_Ki`` (threads per
        block).
    shared_mem_static / shared_mem_dynamic:
        Shared-memory bytes per block.  Their sum is ``sm_Ki`` — the paper
        defines the per-block footprint as static plus dynamic allocation.
    registers_per_thread:
        Register footprint; the paper treats this as a *soft* constraint
        (spills go to local memory) but the simulator enforces the hardware
        register file when placing blocks.
    """

    grid: Dim3
    block: Dim3
    shared_mem_static: int = 0
    shared_mem_dynamic: int = 0
    registers_per_thread: int = 32

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", as_dim3(self.grid))
        object.__setattr__(self, "block", as_dim3(self.block))
        if min(self.grid) < 1 or min(self.block) < 1:
            raise LaunchError(f"grid/block dimensions must be >= 1: {self}")
        if self.shared_mem_static < 0 or self.shared_mem_dynamic < 0:
            raise LaunchError("shared memory sizes must be non-negative")
        if self.registers_per_thread < 1:
            raise LaunchError("registers_per_thread must be >= 1")
        # Precompute the derived geometry once: these are read on every
        # occupancy query, launch validation and block placement, and the
        # engine hot loop touches them millions of times per run.
        tpb = dim3_size(self.block)
        object.__setattr__(self, "_num_blocks", dim3_size(self.grid))
        object.__setattr__(self, "_threads_per_block", tpb)
        object.__setattr__(self, "_warps_per_block",
                           math.ceil(tpb / WARP_SIZE))
        object.__setattr__(self, "_shared_mem_per_block",
                           self.shared_mem_static + self.shared_mem_dynamic)
        object.__setattr__(self, "_registers_per_block",
                           self.registers_per_thread * tpb)

    @property
    def num_blocks(self) -> int:
        """``#beta_Ki``: total thread blocks in the grid."""
        return self._num_blocks

    @property
    def threads_per_block(self) -> int:
        """``tau_Ki``: threads per block."""
        return self._threads_per_block

    @property
    def warps_per_block(self) -> int:
        """Warps per block (threads rounded up to the warp size)."""
        return self._warps_per_block

    @property
    def shared_mem_per_block(self) -> int:
        """``sm_Ki``: static + dynamic shared memory per block, in bytes."""
        return self._shared_mem_per_block

    @property
    def registers_per_block(self) -> int:
        """Register file footprint of one block."""
        return self._registers_per_block

    @property
    def total_threads(self) -> int:
        """Threads launched by the whole grid."""
        return self.num_blocks * self.threads_per_block

    def with_grid(self, grid: int | Dim3) -> "LaunchConfig":
        """Return a copy with a different grid (used when splitting work)."""
        return replace(self, grid=as_dim3(grid))


@dataclass(frozen=True)
class KernelSpec:
    """A runnable kernel: launch configuration plus per-thread work.

    The duration model lives in :mod:`repro.kernels.costmodel`; this class
    only carries the inputs.  ``tag`` identifies the logical operation the
    kernel implements (e.g. ``"conv1/fwd/sample12/im2col"``) so the resource
    tracker can aggregate instances of the same kernel, mirroring how GLP4NN
    distinguishes kernels belonging to different layers — something the paper
    notes offline profilers cannot do.

    Attributes
    ----------
    name:
        Kernel symbol name (``im2col``, ``sgemm``, ``gemmk``, ...).  Kernels
        with the same name and launch configuration are treated as instances
        of the same kernel ``K_i`` by the analyzer.
    launch:
        The launch configuration.
    flops_per_thread / bytes_per_thread:
        Average arithmetic and DRAM traffic per thread, consumed by the
        roofline cost model.
    tag:
        Free-form provenance label (layer / phase / sample).
    duration_us:
        Optional override: if set, the cost model is bypassed and the kernel
        takes exactly this long when running alone at full occupancy.
    """

    name: str
    launch: LaunchConfig
    flops_per_thread: float = 1.0
    bytes_per_thread: float = 4.0
    tag: str = ""
    duration_us: Optional[float] = None
    uid: int = field(default_factory=lambda: next(_kernel_ids))

    def __post_init__(self) -> None:
        if self.flops_per_thread < 0 or self.bytes_per_thread < 0:
            raise LaunchError("per-thread work must be non-negative")
        if self.duration_us is not None and self.duration_us <= 0:
            raise LaunchError("duration override must be positive")

    @property
    def signature(self) -> tuple:
        """Grouping key used by the kernel parser to merge instances.

        Two launches with the same signature are the same ``K_i`` for the
        analytical model: same code, same geometry, same footprint.
        """
        lc = self.launch
        return (
            self.name,
            lc.grid,
            lc.block,
            lc.shared_mem_per_block,
            lc.registers_per_thread,
        )

    @property
    def total_flops(self) -> float:
        return self.flops_per_thread * self.launch.total_threads

    @property
    def total_bytes(self) -> float:
        return self.bytes_per_thread * self.launch.total_threads

    def retagged(self, tag: str) -> "KernelSpec":
        """Copy of the spec with a new provenance tag (fresh uid)."""
        return replace(self, tag=tag, uid=next(_kernel_ids))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lc = self.launch
        return (
            f"KernelSpec({self.name!r}, grid={lc.grid}, block={lc.block}, "
            f"smem={lc.shared_mem_per_block}, regs={lc.registers_per_thread}, "
            f"tag={self.tag!r})"
        )
