"""Device self-test: micro-benchmarks over a simulated GPU.

The simulator analogue of running ``bandwidthTest`` + a GEMM burn-in on new
hardware: measures the device's *effective* launch latency, H2D bandwidth
and SGEMM throughput by experiment (not by reading the spec sheet), and
checks them against the catalog values.  Useful when adding devices to the
catalog, when modifying the engine, and as an executable sanity check that
the simulation's emergent behaviour matches its configuration.

Run from the CLI::

    python -m repro selftest P100
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceProperties
from repro.gpusim.engine import GPU
from repro.kernels.ops import sgemm_spec

_MB = 1024 * 1024


@dataclass(frozen=True)
class SelfTestReport:
    """Measured device characteristics vs their configured values."""

    device: str
    launch_latency_us: float
    configured_launch_latency_us: float
    h2d_bandwidth_gbps: float
    configured_pcie_gbps: float
    gemm_tflops: float
    peak_tflops: float
    concurrency_observed: int
    concurrency_configured: int

    @property
    def gemm_efficiency(self) -> float:
        """Fraction of peak FP32 the big-GEMM benchmark achieves."""
        return self.gemm_tflops / self.peak_tflops

    def render(self) -> str:
        rows = [
            f"self-test: {self.device}",
            f"  launch latency : {self.launch_latency_us:8.2f} us   "
            f"(configured {self.configured_launch_latency_us:g})",
            f"  H2D bandwidth  : {self.h2d_bandwidth_gbps:8.2f} GB/s "
            f"(configured {self.configured_pcie_gbps:g})",
            f"  SGEMM          : {self.gemm_tflops:8.2f} TFLOP/s "
            f"({self.gemm_efficiency:.0%} of {self.peak_tflops:.1f} peak)",
            f"  concurrency    : {self.concurrency_observed:8d} kernels "
            f"(degree {self.concurrency_configured})",
        ]
        return "\n".join(rows)


def measure_launch_latency(gpu: GPU, launches: int = 64) -> float:
    """Mean host-side cost of one same-stream kernel launch."""
    spec = sgemm_spec(16, 16, 16)
    t0 = gpu.host_time
    for _ in range(launches):
        gpu.launch(spec)
    cost = (gpu.host_time - t0) / launches
    gpu.synchronize()
    return cost


def measure_h2d_bandwidth(gpu: GPU, nbytes: int = 256 * _MB) -> float:
    """Effective H2D bandwidth of one large transfer, GB/s."""
    op = gpu.memcpy(nbytes, "h2d")
    gpu.synchronize()
    return nbytes / op.duration_us / 1e3


def measure_gemm_tflops(gpu: GPU, n: int = 2048) -> float:
    """Achieved throughput of one large square SGEMM, TFLOP/s."""
    spec = sgemm_spec(n, n, n)
    gpu.launch(spec)
    gpu.synchronize()
    duration = gpu.timeline.records[-1].duration_us if gpu.timeline.enabled \
        else None
    if duration is None:
        raise RuntimeError("selftest needs timeline recording enabled")
    return spec.total_flops / duration / 1e6


def measure_concurrency(gpu: GPU, kernels: int = 256) -> int:
    """Peak concurrent kernels observed under a many-stream flood.

    Kernels must be long relative to the launch pipeline or the host
    serializes them (Eq. 7); a skinny long-K GEMM keeps each resident for
    hundreds of launches' worth of time.
    """
    spec = sgemm_spec(16, 16, 300_000)
    streams = [gpu.create_stream() for _ in range(kernels)]
    for i, s in enumerate(streams):
        gpu.launch(spec.retagged(f"flood{i}"), stream=s)
    gpu.synchronize()
    return gpu.timeline.max_concurrency()


def run_selftest(props: DeviceProperties) -> SelfTestReport:
    """Run all micro-benchmarks on a fresh device instance."""
    latency = measure_launch_latency(GPU(props, record_timeline=False))
    bandwidth = measure_h2d_bandwidth(GPU(props, record_timeline=False))
    tflops = measure_gemm_tflops(GPU(props))
    concurrency = measure_concurrency(GPU(props))
    return SelfTestReport(
        device=props.name,
        launch_latency_us=latency,
        configured_launch_latency_us=props.launch_latency_us,
        h2d_bandwidth_gbps=bandwidth,
        configured_pcie_gbps=props.pcie_bandwidth_gbps,
        gemm_tflops=tflops,
        peak_tflops=props.peak_gflops / 1e3,
        concurrency_observed=concurrency,
        concurrency_configured=props.max_concurrent_kernels,
    )
