"""CUDA streams and events (host-visible handles).

A :class:`Stream` is a lightweight handle; ordering and execution state live
in the engine.  Semantics follow the CUDA programming model the paper relies
on:

* operations within one stream execute in issue order;
* operations in different non-default streams may overlap;
* the **legacy default stream** is a global synchronization point — a kernel
  launched there waits for all previously issued work on every stream, and
  work issued afterwards on any stream waits for it.  GLP4NN's stream
  manager exploits exactly this to implement layer barriers without host
  threads.

:class:`Event` mirrors ``cudaEvent_t``: it is recorded into a stream and
completes when all prior work in that stream has completed; the elapsed time
between two events is the usual GPU timing primitive (and is what our
simulated CUPTI uses for kernel timestamps).
"""

from __future__ import annotations

import itertools
from typing import Optional

#: Stream id of the legacy default stream (CUDA's stream 0).
DEFAULT_STREAM_ID = 0

_stream_ids = itertools.count(1)
_event_ids = itertools.count(1)


def reset_handle_ids() -> None:
    """Restart stream/event id allocation from 1 (fresh-process state).

    Handle ids are process-global, so a second run of the same experiment
    in one process names its streams differently — harmless for execution
    (equality is ``(device, id)``-scoped) but fatal for byte-reproducible
    trace exports, whose track names embed the ids.  Scenario runners
    (:mod:`repro.obs.scenarios`) call this before each run; production
    code never needs to.
    """
    global _stream_ids, _event_ids
    _stream_ids = itertools.count(1)
    _event_ids = itertools.count(1)


class Stream:
    """Handle to one simulated CUDA stream.

    Created through :meth:`repro.gpusim.engine.GPU.create_stream`; user code
    should not instantiate streams directly except for tests.

    ``priority`` follows CUDA's convention: *lower* numeric values are
    higher priority (``cudaStreamCreateWithPriority``); it biases which
    waiting kernel receives a hardware work-queue slot first when the
    device's concurrency degree is exhausted.
    """

    __slots__ = ("stream_id", "name", "device_name", "priority")

    def __init__(self, stream_id: Optional[int] = None, name: str = "",
                 device_name: str = "", priority: int = 0) -> None:
        self.stream_id = DEFAULT_STREAM_ID if stream_id is None else stream_id
        self.name = name or (
            "default" if self.stream_id == DEFAULT_STREAM_ID
            else f"stream{self.stream_id}"
        )
        self.device_name = device_name
        self.priority = priority

    @classmethod
    def new(cls, name: str = "", device_name: str = "",
            priority: int = 0) -> "Stream":
        """Allocate a fresh non-default stream handle."""
        return cls(next(_stream_ids), name=name, device_name=device_name,
                   priority=priority)

    @property
    def is_default(self) -> bool:
        return self.stream_id == DEFAULT_STREAM_ID

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Stream({self.name!r}, id={self.stream_id})"

    def __hash__(self) -> int:
        return hash((self.device_name, self.stream_id))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Stream)
            and other.stream_id == self.stream_id
            and other.device_name == self.device_name
        )


class Event:
    """Handle to one simulated CUDA event.

    ``timestamp_us`` is ``None`` until the event completes on the device.
    """

    __slots__ = ("event_id", "name", "timestamp_us")

    def __init__(self, name: str = "") -> None:
        self.event_id = next(_event_ids)
        self.name = name or f"event{self.event_id}"
        self.timestamp_us: Optional[float] = None

    @property
    def is_complete(self) -> bool:
        return self.timestamp_us is not None

    def elapsed_us(self, later: "Event") -> float:
        """Microseconds between this event and ``later`` (both complete)."""
        if self.timestamp_us is None or later.timestamp_us is None:
            raise ValueError("both events must be complete to take elapsed time")
        return later.timestamp_us - self.timestamp_us

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"t={self.timestamp_us:.3f}us" if self.is_complete else "pending"
        return f"Event({self.name!r}, {state})"
