"""Fault-plan fuzzer: degraded and retried runs must match serial numerics.

Graceful degradation (PR 1) promises that every fallback — transient
retries with backoff, serial dispatch on stream-pool failure, analyzer
timeouts, dropped profiler records — affects only the *simulated timing*,
never the training numerics.  This fuzzer turns that promise into a
checked property: each round draws a random-but-survivable
:class:`~repro.faults.plan.FaultPlan` from curated templates, runs a
GLP4NN training session under :func:`~repro.faults.chaos_session`, and
fingerprints the numeric state after every iteration against a fault-free
serial baseline.

Template curation keeps the fuzz *productive*: transient specs are capped
(``max_fires``) below the scheduler's retry budget so they exercise the
retry path without exhausting it, and persistent specs target only sites
with a serial fallback.  A plan that still exhausts the budget raises
:class:`~repro.errors.DegradedError`; the run is recorded as *aborted*
(the documented contract) and the iterations completed before the abort
are still compared — an abort is acceptable, silent divergence is not.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DegradedError, FaultInjected
from repro.faults import FaultPlan, FaultSpec, chaos_session
from repro.gpusim.engine import GPU
from repro.gpusim.stream import reset_handle_ids
from repro.obs.metrics import counter_inc
from repro.obs.spans import span
from repro.runtime.executor import NaiveExecutor
from repro.runtime.session import TrainingSession
from repro.serve.engine import make_executor, resolve_device, resolve_net
from repro.verify.differential import make_batches
from repro.verify.fingerprint import (
    NetFingerprint,
    fingerprint_net,
    first_divergence,
)


def _t_launch(rng: random.Random) -> FaultSpec:
    return FaultSpec(site="launch", kind="transient",
                     nth=rng.randint(1, 40), max_fires=2)


def _t_sync(rng: random.Random) -> FaultSpec:
    return FaultSpec(site="sync", kind="transient",
                     nth=rng.randint(1, 12), max_fires=2)


def _t_launch_every(rng: random.Random) -> FaultSpec:
    # every >= 2: the retry (the next matching call) never re-fires.
    return FaultSpec(site="launch", kind="transient",
                     every=rng.randint(5, 60),
                     max_fires=rng.randint(1, 3))


def _p_streams(rng: random.Random) -> FaultSpec:
    return FaultSpec(site="stream_create", kind="persistent",
                     nth=rng.randint(1, 4), max_fires=1)


def _p_milp(rng: random.Random) -> FaultSpec:
    return FaultSpec(site="milp_solve", kind="persistent",
                     effect=rng.choice(["timeout", "infeasible"]),
                     nth=rng.randint(1, 6), max_fires=1)


def _p_profiler(rng: random.Random) -> FaultSpec:
    return FaultSpec(site="profiler_record", kind="persistent",
                     effect="drop", every=rng.randint(3, 9),
                     max_fires=rng.randint(1, 4))


#: Survivable fault templates; each draws its trigger from the round rng.
FAULT_TEMPLATES = (
    _t_launch, _t_sync, _t_launch_every, _p_streams, _p_milp, _p_profiler,
)


def random_fault_plan(seed: int, round_: int) -> FaultPlan:
    """A seeded, survivable fault plan for fuzz round ``round_``."""
    rng = random.Random((seed * 7_368_787) ^ (round_ * 104_729) ^ 0xFA17)
    n = rng.randint(1, 3)
    specs = tuple(rng.choice(FAULT_TEMPLATES)(rng) for _ in range(n))
    return FaultPlan(specs=specs, seed=(seed << 8) ^ round_,
                     name=f"fuzz-r{round_}")


@dataclass
class FaultRoundOutcome:
    """One fuzzed chaos run compared against the clean serial baseline."""

    round: int
    plan_name: str
    fires: int = 0
    iterations_completed: int = 0
    degraded_layers: int = 0
    retries: int = 0
    aborted: bool = False
    abort_reason: str = ""
    divergence: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Aborting loudly is allowed; diverging silently is not."""
        return self.divergence is None

    def to_dict(self) -> dict:
        return {
            "round": self.round, "plan": self.plan_name,
            "fires": self.fires,
            "iterations_completed": self.iterations_completed,
            "degraded_layers": self.degraded_layers,
            "retries": self.retries, "aborted": self.aborted,
            "abort_reason": self.abort_reason,
            "divergence": self.divergence, "ok": self.ok,
        }


@dataclass
class FaultFuzzReport:
    """Outcome of one bounded fault-fuzz campaign."""

    network: str
    device: str
    seed: int
    batch: int
    iterations: int
    rounds_requested: int
    rounds: list[FaultRoundOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rounds)

    @property
    def total_fires(self) -> int:
        return sum(r.fires for r in self.rounds)

    @property
    def aborted_rounds(self) -> int:
        return sum(1 for r in self.rounds if r.aborted)

    def failures(self) -> list[FaultRoundOutcome]:
        return [r for r in self.rounds if not r.ok]

    def to_dict(self) -> dict:
        return {
            "network": self.network, "device": self.device,
            "seed": self.seed, "batch": self.batch,
            "iterations": self.iterations,
            "rounds_requested": self.rounds_requested,
            "ok": self.ok, "total_fires": self.total_fires,
            "aborted_rounds": self.aborted_rounds,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"fault-fuzz: {self.network} on {self.device} "
            f"(seed {self.seed}) — {status}: {len(self.rounds)}/"
            f"{self.rounds_requested} round(s), {self.total_fires} "
            f"fault(s) fired, {self.aborted_rounds} aborted"
        ]
        for r in self.failures():
            lines.append(f"  round {r.round} ({r.plan_name}): "
                         f"DIVERGED {r.divergence}")
        return "\n".join(lines)


def fuzz_faults(
    network: str = "cifar10",
    device: str = "p100",
    seed: int = 0,
    rounds: int = 10,
    batch: int = 8,
    iterations: int = 2,
) -> FaultFuzzReport:
    """Fuzz ``rounds`` random fault plans against the serial baseline."""
    builder = resolve_net(network)
    props = resolve_device(device)
    batches = make_batches(builder(batch=batch, seed=seed), iterations,
                           seed)

    # Fault-free serial baseline fingerprints, one per iteration.
    reset_handle_ids()
    base_net = builder(batch=batch, seed=seed)
    base_session = TrainingSession(base_net, NaiveExecutor(GPU(props)))
    baseline: list[NetFingerprint] = []
    for b in batches:
        base_session.run_iteration(b)
        baseline.append(fingerprint_net(base_net))

    report = FaultFuzzReport(network=network, device=device, seed=seed,
                             batch=batch, iterations=iterations,
                             rounds_requested=rounds)
    for r in range(rounds):
        plan = random_fault_plan(seed, r)
        outcome = FaultRoundOutcome(round=r, plan_name=plan.name)
        reset_handle_ids()
        net = builder(batch=batch, seed=seed)
        session = TrainingSession(net, make_executor("glp4nn", GPU(props)))
        fps: list[NetFingerprint] = []
        with span("verify.faults.round", cat="verify", round=r,
                  plan=plan.name):
            with chaos_session(plan) as injector:
                try:
                    for b in batches:
                        session.run_iteration(b)
                        fps.append(fingerprint_net(net))
                except (DegradedError, FaultInjected) as e:
                    outcome.aborted = True
                    outcome.abort_reason = f"{type(e).__name__}: {e}"
                outcome.fires = injector.fires
        counter_inc("verify.faults.rounds")
        outcome.iterations_completed = len(fps)
        outcome.degraded_layers = len(session.degraded_layers())
        outcome.retries = session.total_retries()
        for i, fp in enumerate(fps):
            d = first_divergence(baseline[i], fp)
            if d is not None:
                outcome.divergence = f"iteration {i}: {d}"
                counter_inc("verify.divergences")
                break
        report.rounds.append(outcome)
    return report
