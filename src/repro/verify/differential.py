"""Differential equivalence checker across every execution path.

Runs the same seeded network + batch stream through each executor the repo
offers — serial baseline, GLP4NN stream pool, multi-threaded host dispatch,
fused-kernel GLP4NN and data parallelism — and asserts the numeric state is
*bit-identical* to the serial run after every iteration (forward
activations, backward gradients, parameter updates; see
:mod:`repro.verify.fingerprint`).

By the repo's architecture the executors only meter simulated time, so
these paths are equivalent *by construction today*.  The checker exists to
keep it that way: a work transform that mutates shared state, an executor
that changes control flow on degradation, or a global-RNG leak would all
surface here as a first-divergence report naming the executor, iteration,
section and blob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ReproError
from repro.gpusim.engine import GPU
from repro.gpusim.stream import reset_handle_ids
from repro.nn.net import Net
from repro.obs.metrics import counter_inc
from repro.obs.spans import span
from repro.runtime.data_parallel import DataParallelExecutor
from repro.runtime.executor import Executor, FusedExecutor, NaiveExecutor
from repro.runtime.multithread import MultiThreadExecutor
from repro.runtime.session import TrainingSession
from repro.serve.engine import (
    deterministic_analyze_fn,
    make_executor,
    resolve_device,
    resolve_net,
)
from repro.verify.fingerprint import (
    Divergence,
    NetFingerprint,
    fingerprint_net,
    first_divergence,
)

#: Every execution path under differential test, serial baseline first.
EXECUTOR_PATHS: tuple[str, ...] = (
    "serial", "stream-pool", "multithread", "fused", "data-parallel",
)

#: Default per-path verification batch: small enough that 25 fuzz rounds of
#: NumPy convolutions stay fast, large enough for several chains per pool.
DEFAULT_BATCH = 8


def make_batches(net: Net, iterations: int, seed: int
                 ) -> list[dict[str, np.ndarray]]:
    """Deterministic synthetic batches matching ``net``'s input blobs.

    Gaussian data for tensor inputs; class indices in ``[0, 10)`` for
    ``label`` blobs (valid for every zoo network — all have >= 10 classes)
    and ``{0, 1}`` for Siamese ``sim`` targets.  The same ``(net, seed)``
    always yields the same bytes.
    """
    rng = np.random.default_rng(seed + 0x5EED)
    batches = []
    for _ in range(iterations):
        batch: dict[str, np.ndarray] = {}
        for name in net.input_names:
            shape = net.blob_shapes[name]
            if name == "sim":
                batch[name] = rng.integers(0, 2, size=shape
                                           ).astype(np.float32)
            elif "label" in name:
                batch[name] = rng.integers(0, 10, size=shape
                                           ).astype(np.float32)
            else:
                batch[name] = rng.normal(0.0, 1.0, size=shape
                                         ).astype(np.float32)
        batches.append(batch)
    return batches


def build_path_executor(kind: str, device: str, threads: int = 4,
                        replicas: int = 2, grad_bytes: float = 0.0
                        ) -> Executor:
    """A fresh, deterministic executor for one differential path.

    GLP4NN-based paths use the deterministic-``T_a`` analyzer so repeated
    harness runs are byte-identical.  The data-parallel path shards chains
    over ``replicas`` naive executors, each on its own GPU.
    """
    props = resolve_device(device)
    if kind == "serial":
        return NaiveExecutor(GPU(props))
    if kind == "stream-pool":
        return make_executor("glp4nn", GPU(props))
    if kind == "multithread":
        return MultiThreadExecutor(GPU(props), threads=threads)
    if kind == "fused":
        gpu = GPU(props)
        return FusedExecutor(gpu, analyze_fn=deterministic_analyze_fn(gpu))
    if kind == "data-parallel":
        reps = [NaiveExecutor(GPU(resolve_device(device)))
                for _ in range(replicas)]
        return DataParallelExecutor(reps, grad_bytes=grad_bytes)
    raise ReproError(
        f"unknown executor path {kind!r}; expected one of {EXECUTOR_PATHS}"
    )


@dataclass(frozen=True)
class IterationDivergence:
    """First divergence of one path, located in time and space."""

    iteration: int
    divergence: Divergence

    def __str__(self) -> str:
        return f"iteration {self.iteration}: {self.divergence}"


@dataclass
class PathOutcome:
    """Result of running one execution path against the baseline."""

    executor: str
    iterations: int
    sim_time_us: float
    losses: list[float] = field(default_factory=list)
    divergence: Optional[IterationDivergence] = None
    degraded_layers: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.error

    def to_dict(self) -> dict:
        return {
            "executor": self.executor,
            "iterations": self.iterations,
            "sim_time_us": round(self.sim_time_us, 3),
            "losses": self.losses,
            "ok": self.ok,
            "divergence": str(self.divergence) if self.divergence else None,
            "degraded_layers": self.degraded_layers,
            "error": self.error,
        }


@dataclass
class DifferentialReport:
    """Every path's verdict for one (network, device, seed) triple."""

    network: str
    device: str
    seed: int
    batch: int
    iterations: int
    baseline: str = "serial"
    outcomes: list[PathOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def failures(self) -> list[PathOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "device": self.device,
            "seed": self.seed,
            "batch": self.batch,
            "iterations": self.iterations,
            "baseline": self.baseline,
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        lines = [
            f"differential: {self.network} on {self.device} "
            f"(seed {self.seed}, batch {self.batch}, "
            f"{self.iterations} iteration(s))"
        ]
        for o in self.outcomes:
            status = "OK" if o.ok else "DIVERGED"
            lines.append(
                f"  {o.executor:13s} {status:8s} "
                f"sim={o.sim_time_us:10.1f}us"
                + (f"  {o.divergence}" if o.divergence else "")
                + (f"  error: {o.error}" if o.error else "")
            )
        return "\n".join(lines)


def run_differential(
    network: str = "cifar10",
    device: str = "p100",
    seed: int = 0,
    iterations: int = 2,
    batch: int = DEFAULT_BATCH,
    executors: Optional[Sequence[str]] = None,
    threads: int = 4,
    replicas: int = 2,
    net_builder: Optional[Callable[..., Net]] = None,
) -> DifferentialReport:
    """Run the differential check; returns the per-path report.

    Every path gets a freshly built network with the same seed (the zoo
    builders are seed-deterministic) and the identical synthetic batch
    stream, so any post-iteration fingerprint mismatch against the serial
    baseline is caused by the execution path itself.
    """
    builder = net_builder or resolve_net(network)
    paths = list(executors) if executors else list(EXECUTOR_PATHS)
    if "serial" not in paths:
        paths.insert(0, "serial")
    if "data-parallel" in paths and batch % replicas:
        raise ReproError(
            f"batch {batch} does not divide over {replicas} replicas"
        )
    probe = builder(batch=batch, seed=seed)
    batches = make_batches(probe, iterations, seed)
    grad_bytes = 4.0 * probe.num_learnable()

    report = DifferentialReport(network=network, device=device, seed=seed,
                                batch=batch, iterations=iterations)
    baseline_fps: list[NetFingerprint] = []
    for kind in paths:
        with span("verify.differential.path", cat="verify",
                  executor=kind, network=network):
            reset_handle_ids()
            net = builder(batch=batch, seed=seed)
            ex = build_path_executor(kind, device, threads=threads,
                                     replicas=replicas,
                                     grad_bytes=grad_bytes)
            session = TrainingSession(net, ex)
            outcome = PathOutcome(executor=kind, iterations=0,
                                  sim_time_us=0.0)
            fps: list[NetFingerprint] = []
            try:
                for b in batches:
                    t = session.run_iteration(b)
                    outcome.sim_time_us += t.sim_time_us
                    outcome.losses.append(t.loss)
                    outcome.iterations += 1
                    fps.append(fingerprint_net(net))
            except ReproError as e:
                outcome.error = f"{type(e).__name__}: {e}"
            try:
                outcome.degraded_layers = len(session.degraded_layers())
            except NotImplementedError:
                outcome.degraded_layers = 0
        if kind == "serial":
            baseline_fps = fps
        else:
            for i, (exp, act) in enumerate(zip(baseline_fps, fps)):
                d = first_divergence(exp, act)
                if d is not None:
                    outcome.divergence = IterationDivergence(i, d)
                    counter_inc("verify.divergences")
                    break
        counter_inc("verify.paths")
        report.outcomes.append(outcome)
    return report
