"""Fleet-level chaos harness: safety invariants under adversarial weather.

The fleet (:mod:`repro.fleet`) makes a three-part safety promise that no
amount of crashing, slowdown or packet loss may break:

1. **Exactly one terminal outcome** — every request admitted to the
   front end ends up served, rejected or deadline-expired exactly once;
   nothing is silently dropped and nothing is double-counted.
2. **No duplicate accounting** — hedged and failed-over copies may
   *execute* more than once, but at most one execution is accounted;
   every surplus completion is suppressed and tallied as such.
3. **Bit-determinism per seed** — the same trace, fleet and fault plan
   produce a byte-identical report (text and JSON) on every run.

Each fuzz round draws a random-but-survivable fleet fault plan (at most
``N - 1`` replicas crashed at once, bounded link drops, bounded
slowdowns), serves one trace through a fresh fleet under
:func:`~repro.faults.chaos_session`, checks invariants 1–2 against the
engine's ledger, then replays the identical round and checks invariant 3
by JSON equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.faults import FaultPlan, FaultSpec, chaos_session
from repro.fleet.engine import FleetEngine, build_fleet
from repro.fleet.report import FleetReport
from repro.obs.metrics import counter_inc
from repro.obs.spans import span
from repro.serve.request import ArrivalTrace, make_trace
from repro.serve.slo import Outcome


# ----------------------------------------------------------------------
# Survivable fleet fault templates
# ----------------------------------------------------------------------
def _crash(rng: random.Random, n: int) -> FaultSpec:
    # Restarting crash on one replica; the fleet never loses everything.
    return FaultSpec(site="replica_crash", key=f"r{rng.randrange(n)}",
                     nth=rng.randint(2, 5), effect="restart", max_fires=1)


def _crash_permanent(rng: random.Random, n: int) -> FaultSpec:
    return FaultSpec(site="replica_crash", key=f"r{rng.randrange(n)}",
                     nth=rng.randint(2, 4), effect="permanent", max_fires=1)


def _slow(rng: random.Random, n: int) -> FaultSpec:
    return FaultSpec(site="replica_slow", key=f"r{rng.randrange(n)}",
                     every=rng.randint(2, 5),
                     effect=rng.choice(["mild", "severe"]),
                     max_fires=rng.randint(1, 4))


def _link(rng: random.Random, n: int) -> FaultSpec:
    return FaultSpec(site="link_drop", key=f"fe->r{rng.randrange(n)}",
                     nth=rng.randint(1, 8), max_fires=rng.randint(1, 2))


def random_fleet_plan(n_replicas: int, seed: int, round_: int) -> FaultPlan:
    """A seeded, survivable fleet fault plan for fuzz round ``round_``.

    At most one crash spec per plan (so at most one replica is down at a
    time), and permanent crashes only when a spare replica exists.
    """
    rng = random.Random((seed * 2_750_159) ^ (round_ * 65_537) ^ 0xF1EE7)
    templates = [_slow, _link]
    specs = [rng.choice(templates)(rng, n_replicas)
             for _ in range(rng.randint(1, 3))]
    if n_replicas >= 2:
        crash = rng.choice([_crash, _crash, _crash_permanent, None])
        if crash is not None:
            specs.insert(0, crash(rng, n_replicas))
    return FaultPlan(specs=tuple(specs), seed=(seed << 8) ^ round_,
                     name=f"fleet-fuzz-r{round_}")


# ----------------------------------------------------------------------
# Invariant checking
# ----------------------------------------------------------------------
def check_fleet_invariants(engine: FleetEngine,
                           trace: ArrivalTrace) -> list[str]:
    """Violations of the exactly-once contract after one served trace.

    Returns human-readable violation strings (empty list = all good).
    Shared with the unit tests, so the harness and the test suite agree
    on what the contract *is*.
    """
    violations: list[str] = []
    records = engine.slo.records
    seen: dict[int, int] = {}
    for rec in records:
        seen[rec.rid] = seen.get(rec.rid, 0) + 1
    for rid, count in sorted(seen.items()):
        if count > 1:
            violations.append(
                f"request {rid} has {count} terminal records")
    trace_rids = {r.rid for r in trace.requests}
    missing = sorted(trace_rids - set(seen))
    for rid in missing:
        violations.append(f"request {rid} has no terminal record")
    phantom = sorted(set(seen) - trace_rids)
    for rid in phantom:
        violations.append(f"terminal record for unknown request {rid}")
    for rid, led in sorted(engine.ledger.items()):
        if led.terminal is None:
            violations.append(f"request {rid} left without a terminal "
                              "outcome in the ledger")
            continue
        if led.live:
            violations.append(
                f"request {rid} still has live copies {sorted(led.live)} "
                "after the run")
        counted = led.executions - led.suppressed
        if led.terminal in (Outcome.OK, Outcome.LATE):
            if counted != 1:
                violations.append(
                    f"request {rid} completed with {led.executions} "
                    f"execution(s) and {led.suppressed} suppressed — "
                    f"{counted} counted, expected exactly 1")
        elif counted != 0:
            violations.append(
                f"request {rid} ended {led.terminal.value} yet has "
                f"{counted} counted execution(s)")
    return violations


# ----------------------------------------------------------------------
# The fuzz campaign
# ----------------------------------------------------------------------
@dataclass
class FleetRoundOutcome:
    """One chaos round: invariants 1–2 plus the determinism replay."""

    round: int
    plan_name: str
    fires: int = 0
    requests: int = 0
    crashes: int = 0
    failovers: int = 0
    link_drops: int = 0
    hedges_suppressed: int = 0
    violations: list[str] = field(default_factory=list)
    deterministic: bool = True

    @property
    def ok(self) -> bool:
        return not self.violations and self.deterministic

    def to_dict(self) -> dict:
        return {
            "round": self.round, "plan": self.plan_name,
            "fires": self.fires, "requests": self.requests,
            "crashes": self.crashes, "failovers": self.failovers,
            "link_drops": self.link_drops,
            "hedges_suppressed": self.hedges_suppressed,
            "violations": list(self.violations),
            "deterministic": self.deterministic, "ok": self.ok,
        }


@dataclass
class FleetChaosReport:
    """Outcome of one bounded fleet-chaos campaign."""

    network: str
    devices: tuple[str, ...]
    executor: str
    replicas: int
    seed: int
    rounds_requested: int
    rounds: list[FleetRoundOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.rounds)

    @property
    def total_fires(self) -> int:
        return sum(r.fires for r in self.rounds)

    def failures(self) -> list[FleetRoundOutcome]:
        return [r for r in self.rounds if not r.ok]

    def to_dict(self) -> dict:
        return {
            "network": self.network, "devices": list(self.devices),
            "executor": self.executor, "replicas": self.replicas,
            "seed": self.seed, "rounds_requested": self.rounds_requested,
            "ok": self.ok, "total_fires": self.total_fires,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"fleet-chaos: {self.network} x{self.replicas} on "
            f"{', '.join(self.devices)} (seed {self.seed}) — {status}: "
            f"{len(self.rounds)}/{self.rounds_requested} round(s), "
            f"{self.total_fires} fault(s) fired"
        ]
        for r in self.failures():
            if not r.deterministic:
                lines.append(f"  round {r.round} ({r.plan_name}): "
                             "NON-DETERMINISTIC replay")
            for v in r.violations:
                lines.append(f"  round {r.round} ({r.plan_name}): {v}")
        return "\n".join(lines)


def fuzz_fleet(
    network: str = "lenet",
    devices: tuple[str, ...] = ("titanxp",),
    executor: str = "fixed",
    replicas: int = 2,
    seed: int = 0,
    rounds: int = 5,
    rps: float = 4_000.0,
    duration_us: float = 6_000.0,
    slo_us: float = 3_000.0,
    trace_kind: str = "poisson",
    hedge_after_us: float = 1_500.0,
    **fleet_kwargs,
) -> FleetChaosReport:
    """Fuzz ``rounds`` random fleet fault plans against the safety contract.

    Hedging is on by default — the exactly-once invariant is only
    interesting when duplicates exist to suppress.
    """
    trace = make_trace(trace_kind, rps, duration_us, slo_us, seed=seed)
    report = FleetChaosReport(network=network, devices=tuple(devices),
                              executor=executor, replicas=replicas,
                              seed=seed, rounds_requested=rounds)

    def run_once(plan: FaultPlan) -> tuple[FleetEngine, FleetReport, int]:
        engine = build_fleet(network, devices, executor, replicas,
                             seed=seed, hedge_after_us=hedge_after_us,
                             **fleet_kwargs)
        with chaos_session(plan) as injector:
            rep = engine.serve(trace)
            return engine, rep, injector.fires

    for r in range(rounds):
        plan = random_fleet_plan(replicas, seed, r)
        outcome = FleetRoundOutcome(round=r, plan_name=plan.name)
        with span("verify.fleet.round", cat="verify", round=r,
                  plan=plan.name):
            engine, rep, outcome.fires = run_once(plan)
            outcome.requests = rep.requests
            outcome.crashes = rep.crashes
            outcome.failovers = rep.failovers
            outcome.link_drops = rep.link_drops
            outcome.hedges_suppressed = rep.hedges_suppressed
            outcome.violations = check_fleet_invariants(engine, trace)
            _, replay, _ = run_once(plan)
            outcome.deterministic = (rep.to_json() == replay.to_json()
                                     and rep.render() == replay.render())
        counter_inc("verify.fleet.rounds")
        if outcome.violations:
            counter_inc("verify.fleet.violations", len(outcome.violations))
        report.rounds.append(outcome)
    return report
