"""Seeded replay files for schedule-fuzzer failures.

A witness is the shrunk :class:`~repro.verify.schedule.SchedulePlan` plus
everything needed to reproduce and triage the failure offline: the
violations observed on the shrunk plan, any numeric divergence, and the
shrink statistics.  The file is plain JSON so it can be attached to a CI
run, diffed, or hand-edited while bisecting.

``python -m repro verify --replay witness.json`` (or
:func:`replay_witness`) rebuilds the network's lowered works from the
plan's own ``(network, batch, seed)`` triple, re-executes the plan through
a fresh :class:`~repro.verify.schedule.ScheduleRunner`, and reports
whether the violation reproduces — exit status 1 when it does, so a replay
doubles as a regression test for the fix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.errors import ReproError
from repro.verify.schedule import (
    SchedulePlan,
    ScheduleRunner,
    ScheduleRunResult,
    works_for,
)

#: Format version stamped into every witness file.  Version 2 added the
#: ``sync`` / ``serial_stream`` mutation fields to each layer schedule
#: (absent fields default to the historical behavior, so version-1 files
#: still load).
WITNESS_VERSION = 2


@dataclass
class ScheduleWitness:
    """A minimal failing schedule, ready to replay."""

    plan: SchedulePlan
    violations: list[str] = field(default_factory=list)
    divergence: Optional[str] = None
    shrink_attempts: int = 0
    original_layers: int = 0
    version: int = WITNESS_VERSION

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "kind": "schedule-witness",
            "plan": self.plan.to_dict(),
            "violations": list(self.violations),
            "divergence": self.divergence,
            "shrink": {
                "attempts": self.shrink_attempts,
                "layers_before": self.original_layers,
                "layers_after": len(self.plan.layers),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json(), encoding="utf-8")
        return str(p)

    @classmethod
    def from_dict(cls, d: dict) -> "ScheduleWitness":
        if not isinstance(d, dict) or d.get("kind") != "schedule-witness":
            raise ReproError("not a schedule witness file")
        version = int(d.get("version", 0))
        if version > WITNESS_VERSION:
            raise ReproError(
                f"witness version {version} is newer than supported "
                f"({WITNESS_VERSION})"
            )
        shrink = d.get("shrink", {})
        return cls(
            plan=SchedulePlan.from_dict(d["plan"]),
            violations=[str(v) for v in d.get("violations", [])],
            divergence=d.get("divergence"),
            shrink_attempts=int(shrink.get("attempts", 0)),
            original_layers=int(shrink.get("layers_before", 0)),
            version=version,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScheduleWitness":
        try:
            doc = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as e:
            raise ReproError(f"cannot read witness {path}: {e}") from e
        except json.JSONDecodeError as e:
            raise ReproError(f"witness {path} is not valid JSON: {e}"
                             ) from e
        return cls.from_dict(doc)


@dataclass
class ReplayResult:
    """What replaying a witness produced."""

    witness: ScheduleWitness
    result: ScheduleRunResult
    #: True when the replay still violates dependencies — the bug is live.
    reproduced: bool

    def render(self) -> str:
        plan = self.witness.plan
        status = "REPRODUCED" if self.reproduced else "did not reproduce"
        lines = [
            f"replay: {plan.network} on {plan.device} "
            f"(seed {plan.seed}, round {plan.round}, "
            f"{len(plan.layers)} layer(s)) — {status}"
        ]
        for v in self.result.violations[:10]:
            lines.append(f"  {v}")
        extra = len(self.result.violations) - 10
        if extra > 0:
            lines.append(f"  ... and {extra} more")
        return "\n".join(lines)


def replay_witness(path: Union[str, Path],
                   runner: Optional[ScheduleRunner] = None) -> ReplayResult:
    """Load and re-execute a witness; report whether it still fails.

    A custom ``runner`` (e.g. one whose ``_launch_chain`` carries a
    planted bug under test) can be supplied; by default the works are
    rebuilt from the plan's own network/batch/seed triple.
    """
    witness = ScheduleWitness.load(path)
    plan = witness.plan
    if runner is None:
        runner = ScheduleRunner(
            works_for(plan.network, plan.batch, plan.seed),
            pool_size=plan.pool_size,
        )
    result = runner.run(plan)
    return ReplayResult(witness=witness, result=result,
                        reproduced=bool(result.violations))
