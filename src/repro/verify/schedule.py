"""Schedule fuzzer: random stream assignment + dispatch-order permutation.

The paper's round-robin chain dispatch is one point in a large space of
legal schedules: any assignment of whole chains to pool streams, in any
issue order, must preserve the numerics *and* produce a timeline that
violates no dependency (intra-chain order, layer-boundary syncs, legacy
default-stream barriers).  Gilman & Walls observed that GPU concurrency
mechanisms silently reorder work — this fuzzer exercises exactly that
freedom against the simulator:

* **host axis** — a :class:`SchedulePlan` permutes, per layer, the order
  chains are issued in and the pool stream each chain lands on;
* **device axis** — an optional seeded ``grant_policy``
  (:attr:`repro.gpusim.engine.GPU.grant_policy`) randomizes which
  dependency-ready kernel takes each freed hardware work-queue slot.

After every fuzzed run the timeline is validated structurally
(:func:`repro.gpusim.timeline.check_timeline`), chain program order is
checked against the recorded kernel executions, and the network numerics
are re-fingerprinted.  On failure the plan is *shrunk* — layers dropped,
then perturbations reverted, greedily re-running after each step — down to
a minimal witness that still fails, and saved as a seeded replay file
(:mod:`repro.verify.witness`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.core.stream_manager import round_robin_slots
from repro.errors import ReproError
from repro.gpusim.engine import GPU, KernelExecution
from repro.gpusim.stream import Stream, reset_handle_ids
from repro.gpusim.timeline import check_timeline
from repro.kernels.ir import KernelChain, LayerWork
from repro.obs.metrics import counter_inc
from repro.obs.spans import span
from repro.runtime.lowering import lower_net
from repro.serve.engine import resolve_device, resolve_net
from repro.verify.fingerprint import (
    NetFingerprint,
    fingerprint_net,
    first_divergence,
)

#: Timestamp slack for kernel-order comparisons, µs.
_EPS = 1e-6

#: Default fuzz pool width (the typical model-sized C_out range).
DEFAULT_POOL = 4


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LayerSchedule:
    """One layer's fuzzed dispatch: chain issue order + stream targets.

    ``chain_order`` is a permutation of the layer's chain indices;
    ``stream_of[k]`` is the pool slot the ``k``-th *issued* chain runs on.
    """

    index: int
    key: str
    chain_order: tuple[int, ...]
    stream_of: tuple[int, ...]
    #: Issue the layer-boundary ``synchronize`` after this layer.  False
    #: models a deleted sync edge — the mutation the static analyzer
    #: (:mod:`repro.analyze.mutate`) and the fuzzer cross-check on.
    sync: bool = True
    #: Pool slot for the whole-batch serial kernels, or ``None`` for the
    #: legacy default stream.  A non-default slot removes the implicit
    #: barrier that default-stream launches provide, which is what makes
    #: a deleted sync actually observable.
    serial_stream: Optional[int] = None

    def to_dict(self) -> dict:
        return {"index": self.index, "key": self.key,
                "chain_order": list(self.chain_order),
                "stream_of": list(self.stream_of),
                "sync": self.sync, "serial_stream": self.serial_stream}

    @classmethod
    def from_dict(cls, d: dict) -> "LayerSchedule":
        serial = d.get("serial_stream")
        return cls(index=int(d["index"]), key=str(d.get("key", "")),
                   chain_order=tuple(int(x) for x in d["chain_order"]),
                   stream_of=tuple(int(x) for x in d["stream_of"]),
                   sync=bool(d.get("sync", True)),
                   serial_stream=None if serial is None else int(serial))


@dataclass(frozen=True)
class SchedulePlan:
    """A complete, replayable fuzzed schedule for one network pass."""

    network: str
    device: str
    batch: int
    seed: int
    round: int
    pool_size: int
    layers: tuple[LayerSchedule, ...]
    grant_seed: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "network": self.network, "device": self.device,
            "batch": self.batch, "seed": self.seed, "round": self.round,
            "pool_size": self.pool_size, "grant_seed": self.grant_seed,
            "layers": [ls.to_dict() for ls in self.layers],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SchedulePlan":
        return cls(
            network=str(d["network"]), device=str(d["device"]),
            batch=int(d["batch"]), seed=int(d["seed"]),
            round=int(d.get("round", 0)), pool_size=int(d["pool_size"]),
            grant_seed=(None if d.get("grant_seed") is None
                        else int(d["grant_seed"])),
            layers=tuple(LayerSchedule.from_dict(ls)
                         for ls in d.get("layers", [])),
        )


def works_for(network: str, batch: int, seed: int) -> list[LayerWork]:
    """The full forward+backward lowered work list of a zoo network."""
    net = resolve_net(network)(batch=batch, seed=seed)
    return list(lower_net(net, "forward")) + list(lower_net(net, "backward"))


def identity_plan(works: Sequence[LayerWork], network: str, device: str,
                  batch: int, seed: int, pool_size: int = DEFAULT_POOL
                  ) -> SchedulePlan:
    """The unfuzzed schedule: natural chain order, round-robin streams."""
    layers = tuple(
        LayerSchedule(
            index=i, key=w.key,
            chain_order=tuple(range(len(w.parallel_chains))),
            stream_of=round_robin_slots(len(w.parallel_chains), pool_size),
        )
        for i, w in enumerate(works)
    )
    return SchedulePlan(network=network, device=device, batch=batch,
                        seed=seed, round=-1, pool_size=pool_size,
                        layers=layers)


def random_plan(works: Sequence[LayerWork], network: str, device: str,
                batch: int, seed: int, round_: int,
                pool_size: int = DEFAULT_POOL) -> SchedulePlan:
    """A seeded random schedule for fuzz round ``round_``."""
    rng = random.Random((seed * 1_000_003) ^ (round_ * 7919) ^ 0xC0FFEE)
    layers = []
    for i, w in enumerate(works):
        n = len(w.parallel_chains)
        order = list(range(n))
        rng.shuffle(order)
        layers.append(LayerSchedule(
            index=i, key=w.key, chain_order=tuple(order),
            stream_of=tuple(rng.randrange(pool_size) for _ in range(n)),
        ))
    grant_seed = rng.randrange(1 << 30) if rng.random() < 0.5 else None
    return SchedulePlan(network=network, device=device, batch=batch,
                        seed=seed, round=round_, pool_size=pool_size,
                        layers=tuple(layers), grant_seed=grant_seed)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class ScheduleRunResult:
    """Everything one plan execution produced."""

    violations: list[str] = field(default_factory=list)
    elapsed_us: float = 0.0
    kernels: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class ScheduleRunner:
    """Execute :class:`SchedulePlan` s against a fresh simulated GPU.

    Each :meth:`run` builds a new device (after
    :func:`~repro.gpusim.stream.reset_handle_ids`, for byte-stable stream
    names), creates the fuzz pool, issues every scheduled layer —
    permuted chains onto their assigned pool streams, whole-batch serial
    kernels onto the default stream, one ``synchronize`` per layer — and
    validates the result three ways: structural timeline invariants,
    intra-chain program order (via the live kernel-execution handles,
    which catches cross-stream chain splits the trace alone cannot
    attribute), and layer-boundary ordering.
    """

    def __init__(self, works: Sequence[LayerWork],
                 pool_size: int = DEFAULT_POOL) -> None:
        self.works = list(works)
        self.pool_size = pool_size

    # The planted-bug hook: tests monkeypatch this to model a dispatcher
    # that breaks intra-chain stream affinity.
    def _launch_chain(self, gpu: GPU, chain: KernelChain,
                      pool: Sequence[Stream], slot: int
                      ) -> list[KernelExecution]:
        """Issue one chain, in order, onto its assigned pool stream."""
        stream = pool[slot % len(pool)]
        return [gpu.launch(spec, stream=stream) for spec in chain]

    def run(self, plan: SchedulePlan, device: Optional[str] = None,
            gpu: Optional[GPU] = None) -> ScheduleRunResult:
        """Execute ``plan``; returns the validated result.

        By default each run gets a fresh device (with stream handle ids
        reset for byte-stable names).  Pass ``gpu`` to accumulate several
        runs on one observed device — the ``verify`` trace scenario does
        this to capture a whole fuzz session in a single timeline.
        """
        if gpu is None:
            reset_handle_ids()
            gpu = GPU(resolve_device(device or plan.device))
        pool = [gpu.create_stream(name=f"fuzz{i}")
                for i in range(plan.pool_size)]
        if plan.grant_seed is not None:
            rng = random.Random(plan.grant_seed)
            gpu.grant_policy = lambda waiters: rng.randrange(len(waiters))
        result = ScheduleRunResult()
        chain_execs: list[tuple[str, int, list[KernelExecution]]] = []
        layer_execs: list[tuple[str, list[KernelExecution]]] = []
        skipped_sync = False
        for ls in plan.layers:
            if not 0 <= ls.index < len(self.works):
                raise ReproError(
                    f"schedule references layer index {ls.index}, but only "
                    f"{len(self.works)} works are lowered"
                )
            work = self.works[ls.index]
            if len(ls.chain_order) != len(work.parallel_chains) \
                    or sorted(ls.chain_order) != \
                    list(range(len(work.parallel_chains))):
                raise ReproError(
                    f"{work.key}: chain_order {ls.chain_order} is not a "
                    f"permutation of {len(work.parallel_chains)} chains"
                )
            this_layer: list[KernelExecution] = []
            for pos, ci in enumerate(ls.chain_order):
                execs = self._launch_chain(
                    gpu, work.parallel_chains[ci], pool, ls.stream_of[pos])
                chain_execs.append((work.key, ci, execs))
                this_layer.extend(execs)
                result.kernels += len(execs)
            serial_stream = (None if ls.serial_stream is None
                             else pool[ls.serial_stream % len(pool)])
            for spec in work.serial_kernels:
                this_layer.append(gpu.launch(spec, stream=serial_stream))
                result.kernels += 1
            if ls.sync:
                gpu.synchronize()
            else:
                skipped_sync = True
            layer_execs.append((work.key, this_layer))
        if skipped_sync:
            # Drain whatever a skipped layer boundary left in flight so the
            # timeline is complete before validation (and elapsed_us is
            # meaningful).
            gpu.synchronize()
        gpu.grant_policy = None
        result.elapsed_us = gpu.host_time
        result.violations.extend(
            str(v) for v in check_timeline(gpu.timeline.records,
                                           gpu.timeline.syncs))
        result.violations.extend(self._check_chains(chain_execs))
        result.violations.extend(self._check_layer_order(layer_execs))
        return result

    @staticmethod
    def _check_chains(
        chain_execs: Sequence[tuple[str, int, list[KernelExecution]]],
    ) -> list[str]:
        """Intra-chain program order: kernel k+1 starts after k ends."""
        out = []
        for key, ci, execs in chain_execs:
            for prev, cur in zip(execs, execs[1:]):
                if cur.start_time is None or prev.end_time is None:
                    out.append(f"[chain-order] {key} chain {ci}: "
                               f"{cur.spec.name} never completed")
                elif cur.start_time < prev.end_time - _EPS:
                    out.append(
                        f"[chain-order] {key} chain {ci}: "
                        f"{cur.spec.name} starts at {cur.start_time:.3f} "
                        f"before {prev.spec.name} ends at "
                        f"{prev.end_time:.3f}"
                    )
        return out

    @staticmethod
    def _check_layer_order(
        layer_execs: Sequence[tuple[str, list[KernelExecution]]],
    ) -> list[str]:
        """Layer-boundary syncs: no layer overlaps its predecessor.

        Works from the live kernel-execution handles, not timeline
        slices — the timeline appends records at *completion*, so when a
        plan skips a sync a layer's records land in a later layer's
        slice and index-based slicing goes blind exactly when the
        overlap it must catch happens.
        """
        out = []
        prev_end = 0.0
        prev_key = ""
        for key, execs in layer_execs:
            timed = [e for e in execs
                     if e.start_time is not None and e.end_time is not None]
            for e in execs:
                if e.start_time is None or e.end_time is None:
                    out.append(f"[layer-order] {key}: {e.spec.name} "
                               f"never completed")
            if not timed:
                continue
            start = min(e.start_time for e in timed)
            if prev_key and start < prev_end - _EPS:
                out.append(
                    f"[layer-order] {key} starts at {start:.3f} before "
                    f"{prev_key} ends at {prev_end:.3f}"
                )
            prev_end = max(e.end_time for e in timed)
            prev_key = key
        return out


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_plan(plan: SchedulePlan,
                failing: Callable[[SchedulePlan], bool],
                ) -> tuple[SchedulePlan, int]:
    """Greedily minimize a failing plan; returns ``(minimal, attempts)``.

    Three passes, each keeping a candidate only if it still fails:

    1. drop the device-side grant permutation (``grant_seed``);
    2. drop whole layers from the executed set (lowered works are
       independent timing units, so any subset is executable);
    3. per remaining layer, revert ``chain_order`` to natural order and
       ``stream_of`` to round-robin.

    The result is the minimal kernel-order witness: only the layers and
    perturbations that actually provoke the failure survive.
    """
    attempts = 0

    def still_fails(candidate: SchedulePlan) -> bool:
        nonlocal attempts
        attempts += 1
        return failing(candidate)

    current = plan
    if current.grant_seed is not None:
        cand = replace(current, grant_seed=None)
        if still_fails(cand):
            current = cand

    layers = list(current.layers)
    i = 0
    while i < len(layers):
        cand_layers = layers[:i] + layers[i + 1:]
        if cand_layers:
            cand = replace(current, layers=tuple(cand_layers))
            if still_fails(cand):
                layers = cand_layers
                current = cand
                continue
        i += 1

    for j, ls in enumerate(layers):
        n = len(ls.chain_order)
        natural = replace(ls, chain_order=tuple(range(n)))
        if ls.chain_order != natural.chain_order:
            cand_layers = layers[:j] + [natural] + layers[j + 1:]
            cand = replace(current, layers=tuple(cand_layers))
            if still_fails(cand):
                layers = cand_layers
                current = cand
        ls = layers[j]
        round_robin = replace(
            ls, stream_of=round_robin_slots(n, current.pool_size))
        if ls.stream_of != round_robin.stream_of:
            cand_layers = layers[:j] + [round_robin] + layers[j + 1:]
            cand = replace(current, layers=tuple(cand_layers))
            if still_fails(cand):
                layers = cand_layers
                current = cand
    return current, attempts


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
@dataclass
class ScheduleFailure:
    """A fuzz round that violated a dependency or perturbed numerics."""

    round: int
    violations: list[str]
    divergence: Optional[str]
    plan: SchedulePlan
    shrunk_plan: SchedulePlan
    shrink_attempts: int
    witness_path: Optional[str] = None

    def summary(self) -> str:
        head = self.violations[0] if self.violations else self.divergence
        return (f"round {self.round}: {len(self.violations)} violation(s), "
                f"first: {head}; witness has "
                f"{len(self.shrunk_plan.layers)} layer(s) "
                f"(from {len(self.plan.layers)})")


@dataclass
class ScheduleFuzzReport:
    """Outcome of one bounded schedule-fuzz campaign."""

    network: str
    device: str
    seed: int
    batch: int
    pool_size: int
    rounds_requested: int
    rounds_run: int = 0
    kernels_checked: int = 0
    failure: Optional[ScheduleFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None

    def to_dict(self) -> dict:
        return {
            "network": self.network, "device": self.device,
            "seed": self.seed, "batch": self.batch,
            "pool_size": self.pool_size,
            "rounds_requested": self.rounds_requested,
            "rounds_run": self.rounds_run,
            "kernels_checked": self.kernels_checked,
            "ok": self.ok,
            "failure": None if self.failure is None else {
                "round": self.failure.round,
                "violations": self.failure.violations,
                "divergence": self.failure.divergence,
                "witness_path": self.failure.witness_path,
                "shrink_attempts": self.failure.shrink_attempts,
            },
        }

    def render(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"schedule-fuzz: {self.network} on {self.device} "
            f"(seed {self.seed}, pool {self.pool_size}) — {status}: "
            f"{self.rounds_run}/{self.rounds_requested} round(s), "
            f"{self.kernels_checked} kernel(s) checked"
        ]
        if self.failure is not None:
            lines.append("  " + self.failure.summary())
            if self.failure.witness_path:
                lines.append(f"  witness: {self.failure.witness_path}")
        return "\n".join(lines)


def fuzz_schedules(
    network: str = "cifar10",
    device: str = "p100",
    seed: int = 0,
    rounds: int = 25,
    batch: int = 8,
    pool_size: int = DEFAULT_POOL,
    witness_path: Optional[str] = None,
    runner: Optional[ScheduleRunner] = None,
) -> ScheduleFuzzReport:
    """Fuzz ``rounds`` random schedules; shrink + save a witness on failure.

    The numeric cross-check re-runs the network's forward/backward each
    round on the untouched NumPy state and fingerprints it against the
    pre-fuzz baseline: device-side scheduling has no handle on the
    numerics, and this asserts that stays true.
    """
    builder = resolve_net(network)
    net = builder(batch=batch, seed=seed)
    works = (list(lower_net(net, "forward"))
             + list(lower_net(net, "backward")))
    runner = runner or ScheduleRunner(works, pool_size=pool_size)
    report = ScheduleFuzzReport(network=network, device=device, seed=seed,
                                batch=batch, pool_size=pool_size,
                                rounds_requested=rounds)

    batch_inputs = _single_batch(net, seed)
    net.forward(batch_inputs)
    net.backward()
    baseline_fp = fingerprint_net(net)

    # Round -1: the identity schedule itself.  A violation here means the
    # dispatcher breaks dependencies without any fuzzing — still shrunk
    # and witnessed like any other failure.
    ident = identity_plan(works, network, device, batch, seed, pool_size)
    base = runner.run(ident, device=device)
    report.kernels_checked += base.kernels
    if not base.ok:
        counter_inc("verify.schedule.failures")
        report.failure = _handle_failure(runner, device, ident, base, None,
                                         witness_path)
        return report

    for r in range(rounds):
        plan = random_plan(works, network, device, batch, seed, r,
                           pool_size=pool_size)
        with span("verify.schedule.round", cat="verify", round=r,
                  network=network):
            result = runner.run(plan, device=device)
        counter_inc("verify.schedule.rounds")
        report.rounds_run += 1
        report.kernels_checked += result.kernels

        net.forward(batch_inputs)
        net.backward()
        div = first_divergence(baseline_fp, fingerprint_net(net))

        if result.violations or div is not None:
            counter_inc("verify.schedule.failures")
            failure = _handle_failure(runner, device, plan, result, div,
                                      witness_path)
            report.failure = failure
            break
    return report


def _single_batch(net, seed: int) -> dict:
    from repro.verify.differential import make_batches
    return make_batches(net, 1, seed)[0]


def _handle_failure(runner: ScheduleRunner, device: str, plan: SchedulePlan,
                    result: ScheduleRunResult, divergence,
                    witness_path: Optional[str]) -> ScheduleFailure:
    from repro.verify.witness import ScheduleWitness

    if result.violations:
        with span("verify.schedule.shrink", cat="verify"):
            shrunk, attempts = shrink_plan(
                plan,
                lambda p: not runner.run(p, device=device).ok,
            )
    else:
        # A pure numeric divergence cannot be localized by re-running the
        # (timing-only) schedule; the full plan is the witness.
        shrunk, attempts = plan, 0
    failure = ScheduleFailure(
        round=plan.round,
        violations=list(result.violations),
        divergence=None if divergence is None else str(divergence),
        plan=plan,
        shrunk_plan=shrunk,
        shrink_attempts=attempts,
    )
    path = witness_path or (
        f"schedule_witness_{plan.network}_s{plan.seed}_r{plan.round}.json"
    )
    witness = ScheduleWitness(
        plan=shrunk,
        violations=runner.run(shrunk, device=device).violations
        if result.violations else [],
        divergence=failure.divergence,
        shrink_attempts=attempts,
        original_layers=len(plan.layers),
    )
    failure.witness_path = witness.save(path)
    return failure
