"""The combined verification report: one verdict over all three checks.

``python -m repro verify`` runs the differential checker, the schedule
fuzzer and the fault fuzzer in sequence and folds their individual reports
into a single :class:`VerifyReport` with one exit-status-shaping ``ok``
bit.  The JSON form (``--report out.json``) is what CI publishes as the
divergence-report artifact when a run fails.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.verify.differential import DifferentialReport
from repro.verify.elision_equiv import ElisionEquivReport
from repro.verify.fault_fuzz import FaultFuzzReport
from repro.verify.graph_replay import GraphReplayReport
from repro.verify.schedule import ScheduleFuzzReport


@dataclass
class VerifyReport:
    """Results of one full ``repro verify`` run."""

    network: str
    device: str
    seed: int
    differential: Optional[DifferentialReport] = None
    schedule: Optional[ScheduleFuzzReport] = None
    faults: Optional[FaultFuzzReport] = None
    graph: Optional[GraphReplayReport] = None
    elision: Optional[ElisionEquivReport] = None

    @property
    def ok(self) -> bool:
        return all(part.ok for part in
                   (self.differential, self.schedule, self.faults,
                    self.graph, self.elision)
                   if part is not None)

    def to_dict(self) -> dict:
        return {
            "network": self.network,
            "device": self.device,
            "seed": self.seed,
            "ok": self.ok,
            "differential": (None if self.differential is None
                             else self.differential.to_dict()),
            "schedule": (None if self.schedule is None
                         else self.schedule.to_dict()),
            "faults": (None if self.faults is None
                       else self.faults.to_dict()),
            "graph": (None if self.graph is None
                      else self.graph.to_dict()),
            "elision": (None if self.elision is None
                        else self.elision.to_dict()),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        parts = []
        for part in (self.differential, self.schedule, self.faults,
                     self.graph, self.elision):
            if part is not None:
                parts.append(part.render())
        verdict = "PASS" if self.ok else "FAIL"
        parts.append(f"verify: {verdict} ({self.network} on {self.device}, "
                     f"seed {self.seed})")
        return "\n".join(parts)
