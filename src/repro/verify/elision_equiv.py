"""Differential check: certified sync-elision replays bit-identically.

The static certificate (:mod:`repro.analyze.elide`) promises that a
minimized program preserves the launch closure — every kernel-ordering
guarantee of the original.  This harness holds that promise to the
dynamic machinery on both producer paths:

* **Graph-mode training** — a session whose runtime minimizes captured
  graphs before admission (``enable_graph_mode(minimize=True)``) must
  produce exactly the bytes the eager session produces, tensor by
  tensor across seeds and iterations (the PR-7 differential with the
  elider switched on);
* **Interop plans** — for every inception-unit plan the certifier
  minimizes, both the original and the minimized lowerings replay as
  single graph launches on fresh devices, and every launch pair the
  original closure orders must *actually* execute in order in the
  minimized run (``end_time(i) <= start_time(j)`` on the simulated
  device), not merely be provably ordered on paper.

The interop half is anti-vacuous: the report fails if no plan removed
any wait, because then the elider was never exercised and "nothing
diverged" is meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.gpusim.engine import GPU
from repro.gpusim.stream import reset_handle_ids
from repro.obs.metrics import counter_inc
from repro.obs.spans import span
from repro.runtime.session import TrainingSession
from repro.serve.engine import make_executor, resolve_device, resolve_net
from repro.verify.differential import make_batches
from repro.verify.fingerprint import (
    NetFingerprint,
    fingerprint_net,
    first_divergence,
)

#: Iterations per seed: warmup + capture + at least two minimized replays.
DEFAULT_ITERATIONS = 4

#: Interop plan policies whose lowerings carry elidable event waits.
DEFAULT_POLICIES = ("opara", "round-robin")


@dataclass
class ElisionSeedOutcome:
    """Eager vs minimized-graph-mode verdict for one training seed."""

    seed: int
    iterations: int = 0
    replays: int = 0
    waits_elided: int = 0
    records_elided: int = 0
    divergence: Optional[str] = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return (self.divergence is None and not self.error
                and self.replays >= 1)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "iterations": self.iterations,
            "replays": self.replays,
            "waits_elided": self.waits_elided,
            "records_elided": self.records_elided,
            "ok": self.ok, "divergence": self.divergence,
            "error": self.error,
        }


@dataclass
class ElisionPlanOutcome:
    """Original vs minimized replay of one certified interop plan."""

    unit: str
    policy: str
    waits_removed: int = 0
    records_removed: int = 0
    certificate: bool = True     # static launch-closure equality
    pairs_checked: int = 0       # hb-ordered launch pairs re-verified
    violations: int = 0          # pairs that executed out of order
    launches: int = 0
    graph_us: float = 0.0
    graph_min_us: float = 0.0
    error: str = ""

    @property
    def ok(self) -> bool:
        return (self.certificate and self.violations == 0
                and not self.error)

    def to_dict(self) -> dict:
        return {
            "unit": self.unit, "policy": self.policy,
            "waits_removed": self.waits_removed,
            "records_removed": self.records_removed,
            "certificate": self.certificate,
            "pairs_checked": self.pairs_checked,
            "violations": self.violations,
            "launches": self.launches,
            "graph_us": round(self.graph_us, 3),
            "graph_min_us": round(self.graph_min_us, 3),
            "ok": self.ok, "error": self.error,
        }


@dataclass
class ElisionEquivReport:
    """Elision-equivalence verdict across seeds and interop plans."""

    network: str
    device: str
    batch: int
    iterations: int
    units: tuple = ()
    seeds: list[ElisionSeedOutcome] = field(default_factory=list)
    plans: list[ElisionPlanOutcome] = field(default_factory=list)

    @property
    def exercised(self) -> bool:
        """At least one interop plan actually lost a wait."""
        return any(p.waits_removed for p in self.plans)

    @property
    def ok(self) -> bool:
        return (bool(self.seeds) and all(o.ok for o in self.seeds)
                and bool(self.plans) and all(p.ok for p in self.plans)
                and self.exercised)

    def to_dict(self) -> dict:
        return {
            "network": self.network, "device": self.device,
            "batch": self.batch, "iterations": self.iterations,
            "units": list(self.units),
            "ok": self.ok, "exercised": self.exercised,
            "seeds": [o.to_dict() for o in self.seeds],
            "plans": [p.to_dict() for p in self.plans],
        }

    def render(self) -> str:
        lines = [
            f"elision-equiv: {self.network} on {self.device} "
            f"(batch {self.batch}, {self.iterations} iteration(s), "
            f"units {', '.join(self.units)})"
        ]
        for o in self.seeds:
            status = "OK" if o.ok else "FAIL"
            detail = ""
            if o.divergence:
                detail = f"  {o.divergence}"
            elif o.error:
                detail = f"  error: {o.error}"
            elif o.replays < 1:
                detail = "  minimized graph never replayed (stuck eager)"
            lines.append(
                f"  seed {o.seed}: {status}  {o.replays} replay(s), "
                f"{o.waits_elided} wait(s) + {o.records_elided} "
                f"record(s) elided{detail}")
        for p in self.plans:
            status = "OK" if p.ok else "FAIL"
            detail = f"  error: {p.error}" if p.error else ""
            if not p.certificate:
                detail = "  closure certificate BROKEN"
            elif p.violations:
                detail = (f"  {p.violations} ordered pair(s) executed "
                          f"out of order")
            timing = ""
            if p.graph_us:
                timing = (f", graph {p.graph_us:.1f}us vs minimized "
                          f"{p.graph_min_us:.1f}us")
            lines.append(
                f"  {p.unit}/{p.policy}: {status}  "
                f"{p.waits_removed} wait(s) removed, "
                f"{p.pairs_checked} pair(s) re-verified{timing}{detail}")
        if self.plans and not self.exercised:
            lines.append("  FAIL: no plan removed any wait — the elider "
                         "was never exercised (vacuous pass)")
        return "\n".join(lines)


def verify_elision(network: str = "cifar10",
                   device: str = "p100",
                   seeds: Sequence[int] = (0, 1),
                   iterations: int = DEFAULT_ITERATIONS,
                   batch: int = 8,
                   units: Sequence[str] = ("5b",),
                   policies: Sequence[str] = DEFAULT_POLICIES,
                   interop_batch: int = 2) -> ElisionEquivReport:
    """Run both halves of the elision differential."""
    if iterations < DEFAULT_ITERATIONS:
        raise ReproError(
            f"elision verification needs >= {DEFAULT_ITERATIONS} "
            f"iterations (warmup + capture + replays), got {iterations}")
    builder = resolve_net(network)
    props = resolve_device(device)
    report = ElisionEquivReport(network=network, device=props.name,
                                batch=batch, iterations=iterations,
                                units=tuple(units))
    for seed in seeds:
        outcome = ElisionSeedOutcome(seed=seed)
        with span("verify.elision.seed", cat="verify", seed=seed,
                  network=network):
            batches = make_batches(builder(batch=batch, seed=seed),
                                   iterations, seed)
            try:
                eager_fps = _run_side(builder, props, batch, seed,
                                      batches, minimize=False)[0]
                min_fps, runtime = _run_side(builder, props, batch, seed,
                                             batches, minimize=True)
                outcome.iterations = len(batches)
                outcome.replays = runtime.stats.replays
                outcome.waits_elided = runtime.stats.waits_elided
                outcome.records_elided = runtime.stats.records_elided
                for i, (exp, act) in enumerate(zip(eager_fps, min_fps)):
                    d = first_divergence(exp, act)
                    if d is not None:
                        outcome.divergence = f"iteration {i}: {d}"
                        counter_inc("verify.divergences")
                        break
            except ReproError as e:
                outcome.error = f"{type(e).__name__}: {e}"
        report.seeds.append(outcome)

    for unit in units:
        for policy in policies:
            with span("verify.elision.plan", cat="verify", unit=unit,
                      policy=policy):
                report.plans.append(
                    _check_plan(unit, policy, interop_batch, props))
    return report


def _run_side(builder, props, batch: int, seed: int, batches,
              minimize: bool):
    """One graph-mode session; returns fingerprints (+ runtime)."""
    reset_handle_ids()
    net = builder(batch=batch, seed=seed)
    ex = make_executor("glp4nn", GPU(props))
    runtime = None
    if minimize:
        runtime = ex.enable_graph_mode(
            net=net, network=getattr(net, "name", ""), minimize=True)
    session = TrainingSession(net, ex)
    fps: list[NetFingerprint] = []
    for b in batches:
        session.run_iteration(b)
        fps.append(fingerprint_net(net))
    return fps, runtime


def _check_plan(unit: str, policy: str, batch: int,
                props) -> ElisionPlanOutcome:
    """Replay one plan original-vs-minimized and re-check every edge."""
    from repro.analyze.elide import launch_closure
    from repro.interop.certify import certify, structural_effects
    from repro.interop.planner import build_plan
    from repro.interop.resources import estimate_graph, suggest_pool_size
    from repro.interop.workloads import inception_unit

    outcome = ElisionPlanOutcome(unit=unit, policy=policy)
    try:
        workload = inception_unit(unit, batch)
        graph = workload.graph
        estimates = estimate_graph(graph, props)
        effects = structural_effects(graph, in_place=workload.in_place)
        streams = suggest_pool_size(graph, props)
        plan = build_plan(graph, policy, streams, device=props,
                          estimates=estimates)
        cert = certify(graph, plan, effects=effects, device=props,
                       estimates=estimates)
        outcome.policy = cert.plan.policy
        outcome.waits_removed = cert.waits_removed
        outcome.records_removed = (cert.elision.records_removed
                                   if cert.elision else 0)
        outcome.certificate = (cert.elision.equivalent
                               if cert.elision else True)
        if not cert.waits_removed:
            return outcome    # nothing elided; nothing to replay-check

        _, closure = launch_closure(cert.program.ops)
        korig, outcome.graph_us = _replay(
            graph, cert.plan, cert.program, effects, props)
        kmin, outcome.graph_min_us = _replay(
            graph, cert.plan, cert.minimized, effects, props)
        outcome.launches = len(kmin)
        if len(korig) != len(kmin):
            outcome.error = (f"launch count changed: {len(korig)} -> "
                             f"{len(kmin)}")
            return outcome
        # Every hb-ordered pair of the ORIGINAL closure must execute in
        # order on the minimized replay's simulated timeline.
        for j, preds in enumerate(closure):
            for i in preds:
                outcome.pairs_checked += 1
                if kmin[i].end_time > kmin[j].start_time + 1e-9:
                    outcome.violations += 1
                    counter_inc("verify.elision.order_violations")
    except ReproError as e:
        outcome.error = f"{type(e).__name__}: {e}"
    return outcome


def _replay(graph, plan, program, effects, props):
    """Replay ``program`` as one graph launch; returns (kernels, µs)."""
    from repro.graphs.admission import admit
    from repro.graphs.replay import instantiate
    from repro.interop.execute import compile_program

    gpu = GPU(props)
    compiled = compile_program(graph, plan, program, effects=effects,
                               device=props.name)
    admit(compiled)
    exec_ = instantiate(compiled, gpu)
    start = gpu.host_time
    result = exec_.launch()
    gpu.synchronize()
    return result.kernels, gpu.host_time - start
