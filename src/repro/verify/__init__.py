"""Convergence-invariance verification: differential + fuzz harnesses.

The paper's headline property — stream-pool dispatch trains *bit
identically* to serial execution — is enforced here three ways:

* :mod:`repro.verify.differential` — every executor path (serial,
  stream-pool, multithread, fused, data-parallel) against the serial
  baseline, fingerprinted tensor-by-tensor;
* :mod:`repro.verify.schedule` — randomized stream assignment and
  dispatch/grant order against the dependency invariants of the timeline,
  with shrinking to a minimal replayable witness
  (:mod:`repro.verify.witness`);
* :mod:`repro.verify.fault_fuzz` — random survivable fault plans against
  the degraded/retried execution paths;
* :mod:`repro.verify.fleet_chaos` — fleet-level chaos: random replica
  crashes, slowdowns and link drops against the serving fleet's
  exactly-once and determinism contract (see :mod:`repro.fleet`);
* :mod:`repro.verify.graph_replay` — graph-launch replay
  (:mod:`repro.graphs`) against eager dispatch, bit-identical
  fingerprints across seeds with a replays-actually-happened guard;
* :mod:`repro.verify.elision_equiv` — certified sync-elision
  (:mod:`repro.analyze.elide`) against both dynamic paths: minimized
  graph-mode training must match eager bit-for-bit, and minimized
  interop plans must execute every originally-ordered kernel pair in
  order on the simulated device.

Entry point: ``python -m repro verify`` (see :mod:`repro.cli`), or
:func:`run_differential` / :func:`fuzz_schedules` / :func:`fuzz_faults`
directly.
"""

from repro.verify.differential import (
    DifferentialReport,
    EXECUTOR_PATHS,
    run_differential,
)
from repro.verify.elision_equiv import (
    ElisionEquivReport,
    ElisionPlanOutcome,
    ElisionSeedOutcome,
    verify_elision,
)
from repro.verify.fault_fuzz import FaultFuzzReport, fuzz_faults
from repro.verify.fleet_chaos import (
    FleetChaosReport,
    check_fleet_invariants,
    fuzz_fleet,
    random_fleet_plan,
)
from repro.verify.fingerprint import (
    Divergence,
    NetFingerprint,
    fingerprint_net,
    first_divergence,
)
from repro.verify.graph_replay import (
    GraphReplayReport,
    GraphSeedOutcome,
    verify_graph_replay,
)
from repro.verify.report import VerifyReport
from repro.verify.schedule import (
    SchedulePlan,
    ScheduleFuzzReport,
    ScheduleRunner,
    fuzz_schedules,
    shrink_plan,
)
from repro.verify.witness import ReplayResult, ScheduleWitness, replay_witness

__all__ = [
    "DifferentialReport",
    "Divergence",
    "EXECUTOR_PATHS",
    "ElisionEquivReport",
    "ElisionPlanOutcome",
    "ElisionSeedOutcome",
    "FaultFuzzReport",
    "FleetChaosReport",
    "GraphReplayReport",
    "GraphSeedOutcome",
    "NetFingerprint",
    "ReplayResult",
    "SchedulePlan",
    "ScheduleFuzzReport",
    "ScheduleRunner",
    "ScheduleWitness",
    "VerifyReport",
    "check_fleet_invariants",
    "fingerprint_net",
    "first_divergence",
    "fuzz_faults",
    "fuzz_fleet",
    "fuzz_schedules",
    "random_fleet_plan",
    "replay_witness",
    "run_differential",
    "shrink_plan",
    "verify_elision",
    "verify_graph_replay",
]
