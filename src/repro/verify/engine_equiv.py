"""Engine-equivalence goldens: optimizations must be behaviorally invisible.

The gpusim engine underpins every bit-exactness claim the repo makes —
the PR-4 differential suite, the schedule/fault/fleet fuzzers and the
graph-replay verifier all reduce to "the simulated timeline is a pure
function of the workload".  Any engine *optimization* therefore carries
an obligation stronger than "the tests still pass": the timelines it
produces must be **bit-identical** to the pre-optimization engine's, or
every historical number in ``results/`` silently changes meaning.

This module discharges that obligation mechanically:

* a registry of representative workloads (:data:`ENGINE_WORKLOADS`) —
  raw DAG launches, memcpy/compute overlap, CIFAR10 conv passes under
  the GLP4NN executor, interop inception plans (eager and graph
  replay), a serving-fleet slice, a faulted run, and summaries of the
  PR-4 differential suite plus the schedule/fleet fuzzers;
* each workload renders the engine-visible outcome to canonical text
  lines (``repr`` for floats, so every IEEE-754 bit participates) and
  hashes them (:func:`fingerprint_lines`);
* :func:`record_engine_goldens` captures those lines from the *current*
  engine into ``tests/fixtures/engine_goldens/``;
* :func:`run_engine_equivalence` replays every workload and diffs it
  line-by-line against the recorded goldens, reporting the first
  divergent line per workload.

Run ``python -m repro verify --only engine`` to check, or
``python -m repro.verify.engine_equiv --record`` to re-capture goldens
(only legitimate after an *intentional* semantic change to the engine).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.faults import hooks as fault_hooks
from repro.gpusim import GPU, KernelSpec, LaunchConfig, get_device
from repro.gpusim.stream import Event, reset_handle_ids
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans

#: Where the committed goldens live, relative to the repo root.
DEFAULT_GOLDEN_DIR = (
    Path(__file__).resolve().parents[3] / "tests" / "fixtures"
    / "engine_goldens"
)


# ----------------------------------------------------------------------
# canonical rendering


def _f(x) -> str:
    """Canonical float rendering: ``repr`` of the Python float.

    ``repr`` round-trips every IEEE-754 double exactly, so two timelines
    agree on these strings iff they agree bit-for-bit.
    """
    return repr(float(x))


def _timeline_lines(gpu: GPU) -> List[str]:
    """Render a GPU's full observable outcome to canonical lines."""
    lines: List[str] = []
    for r in gpu.timeline.records:
        lines.append(
            f"K|{r.name}|{r.tag}|{r.stream_id}|{_f(r.enqueue_us)}"
            f"|{_f(r.start_us)}|{_f(r.end_us)}|{tuple(r.grid)}"
            f"|{tuple(r.block)}|{r.registers}|{r.shared_mem}"
        )
    for s in gpu.timeline.syncs:
        lines.append(
            f"S|{s.kind}|{s.event_id}|{s.event_name}|{s.stream_id}"
            f"|{_f(s.enqueue_us)}|{_f(s.complete_us)}"
        )
    lines.append(
        f"T|now={_f(gpu.now)}|host={_f(gpu.host_time)}"
        f"|events={gpu.events_processed}"
        f"|overhead={_f(gpu.launch_overhead_total)}"
    )
    return lines


def fingerprint_lines(lines: Sequence[str]) -> str:
    """SHA-256 over the canonical lines (the golden identity)."""
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def _reset_globals() -> None:
    """Mirror the test suite's hermetic fixture for CLI/recording runs."""
    reset_handle_ids()
    obs_spans.install(None)
    obs_metrics.install(None)
    fault_hooks.install(None)


# ----------------------------------------------------------------------
# workloads


def _wl_dag_events() -> List[str]:
    """Layered branchy DAG with event joins — the raw hot-loop shape."""
    gpu = GPU(get_device("P100"), record_timeline=True)
    streams = [gpu.create_stream() for _ in range(5)]
    prev_events: List[Event] = []
    k = 0
    for d in range(15):
        events = []
        for w, s in enumerate(streams):
            for e in prev_events:
                gpu.wait_event(e, stream=s)
            spec = KernelSpec(
                name=f"k{d}_{w}",
                launch=LaunchConfig(
                    grid=(8 + (k % 13), 1, 1),
                    block=(128 + 32 * (k % 4), 1, 1),
                    shared_mem_dynamic=(k % 3) * 2048,
                ),
                flops_per_thread=1e4 + 137.0 * (k % 29),
                bytes_per_thread=16.0,
            )
            gpu.launch(spec, stream=s)
            k += 1
            ev = Event(name=f"e{d}_{w}")
            gpu.record_event(ev, stream=s)
            events.append(ev)
        prev_events = events if d % 3 == 2 else []
    gpu.synchronize()
    return _timeline_lines(gpu)


def _wl_memcpy_streams() -> List[str]:
    """Copy/compute overlap plus the legacy default-stream barrier."""
    gpu = GPU(get_device("TitanXP"), record_timeline=True)
    streams = [gpu.create_stream() for _ in range(3)]
    for i, s in enumerate(streams):
        gpu.memcpy(1 << (18 + i), kind="h2d", stream=s)
        spec = KernelSpec(
            name=f"c{i}",
            launch=LaunchConfig(grid=(12 + i, 1, 1), block=(256, 1, 1)),
            flops_per_thread=2e4,
            bytes_per_thread=32.0,
        )
        gpu.launch(spec, stream=s)
    # legacy default stream: barriers against every blocking stream
    gpu.launch(KernelSpec(
        name="default_barrier",
        launch=LaunchConfig(grid=(4, 1, 1), block=(128, 1, 1)),
        flops_per_thread=5e3, bytes_per_thread=8.0,
    ))
    for i, s in enumerate(streams):
        gpu.memcpy(1 << (17 + i), kind="d2h", stream=s)
    gpu.stream_synchronize(streams[1])
    gpu.synchronize()
    return _timeline_lines(gpu)


def _wl_cifar10_conv_fwd() -> List[str]:
    """CIFAR10 conv forward passes under the GLP4NN executor."""
    from repro.nn.zoo.table5 import CIFAR10_CONVS
    from repro.runtime.executor import GLP4NNExecutor
    from repro.runtime.lowering import conv_works

    gpu = GPU(get_device("P100"), record_timeline=True)
    ex = GLP4NNExecutor(gpu)
    works = conv_works(CIFAR10_CONVS, "forward")
    for _ in range(2):
        ex.run_pass(works)
    gpu.synchronize()
    return _timeline_lines(gpu)


def _wl_inception_5a_opara() -> List[str]:
    """Inception 5a under a certified opara plan, eager dispatch."""
    from repro.interop import build_plan, certify, inception_unit, run_plan

    wl = inception_unit("5a", batch=2)
    gpu = GPU(get_device("P100"), record_timeline=True)
    plan = build_plan(wl.graph, "opara", 4, device=gpu.props)
    cert = certify(wl.graph, plan, device=gpu.props)
    streams = [gpu.create_stream() for _ in range(4)]
    run = run_plan(gpu, wl.graph, cert.plan, streams)
    lines = _timeline_lines(gpu)
    lines.append(
        f"P|{run.policy}|{run.mode}|{_f(run.elapsed_us)}|{run.launches}"
        f"|{run.records}|{run.waits}|{_f(run.launch_overhead_us)}"
    )
    return lines


def _wl_inception_5b_graph() -> List[str]:
    """Inception 5b under chain-affine, replayed as one graph launch."""
    from repro.interop import build_plan, certify, inception_unit, replay_plan

    wl = inception_unit("5b", batch=2)
    gpu = GPU(get_device("P100"), record_timeline=True)
    plan = build_plan(wl.graph, "chain-affine", 4)
    cert = certify(wl.graph, plan)
    run = replay_plan(gpu, wl.graph, cert.plan)
    lines = _timeline_lines(gpu)
    lines.append(
        f"P|{run.policy}|{run.mode}|{_f(run.elapsed_us)}|{run.launches}"
        f"|{run.records}|{run.waits}|{_f(run.launch_overhead_us)}"
    )
    return lines


def _wl_fleet_slice() -> List[str]:
    """One fleet-sweep cell: lenet x2 on mixed devices, Poisson trace."""
    from repro.fleet import serve_fleet
    from repro.serve.request import poisson_trace

    trace = poisson_trace(rps=4000, duration_us=4000, slo_us=3000, seed=0)
    rep = serve_fleet("lenet", ("titanxp", "p100"), "fixed", 2, trace)
    lines = [
        f"F|requests={rep.requests}|ok={rep.ok}|late={rep.late}"
        f"|shed_q={rep.shed_queue}|shed_a={rep.shed_admission}"
        f"|failed={rep.failed}|expired={rep.expired}"
        f"|failfast={rep.failfast}",
        f"F|failovers={rep.failovers}|hedges={rep.hedges_issued}"
        f"|hedges_won={rep.hedges_won}|crashes={rep.crashes}"
        f"|link_drops={rep.link_drops}|heartbeats={rep.heartbeats}",
        f"F|makespan={_f(rep.makespan_us)}",
    ]
    for name in ("latency_mean_us", "latency_p50_us", "latency_p95_us",
                 "latency_p99_us", "latency_max_us"):
        v = getattr(rep, name)
        lines.append(f"F|{name}={'-' if v is None else _f(v)}")
    return lines


def _wl_faulted_run() -> List[str]:
    """Bounded fault-fuzz campaign: injected faults through the engine."""
    from repro.verify.fault_fuzz import fuzz_faults

    rep = fuzz_faults(network="cifar10", device="p100", seed=3,
                      rounds=3, batch=4, iterations=1)
    lines = [
        f"X|rounds={len(rep.rounds)}|fires={rep.total_fires}"
        f"|aborted={rep.aborted_rounds}|ok={rep.ok}"
    ]
    for r in rep.rounds:
        lines.append(
            f"X|round={r.round}|plan={r.plan_name}|fires={r.fires}"
            f"|iters={r.iterations_completed}|degraded={r.degraded_layers}"
            f"|retries={r.retries}|aborted={r.aborted}"
            f"|divergence={r.divergence}"
        )
    return lines


def _wl_suite_differential() -> List[str]:
    """PR-4 five-executor differential suite, engine-derived summary.

    Losses and tensor digests are deliberately excluded: they route
    through BLAS and are not bit-stable across machines.  The simulated
    times are pure engine outputs and must match to the last bit.
    """
    from repro.verify.differential import run_differential

    rep = run_differential(network="cifar10", device="p100", seed=0,
                           iterations=1, batch=4)
    lines = [f"D|{rep.network}|{rep.device}|seed={rep.seed}"
             f"|batch={rep.batch}|ok={rep.ok}"]
    for o in rep.outcomes:
        lines.append(
            f"D|{o.executor}|iters={o.iterations}"
            f"|sim={_f(o.sim_time_us)}|ok={o.ok}"
            f"|degraded={o.degraded_layers}|error={o.error}"
        )
    return lines


def _wl_suite_fuzzers() -> List[str]:
    """Schedule + fleet fuzzer summaries under a small fixed budget."""
    from repro.verify.fleet_chaos import fuzz_fleet
    from repro.verify.schedule import fuzz_schedules

    sched = fuzz_schedules(network="cifar10", device="p100", seed=0,
                           rounds=4, batch=4)
    lines = [
        f"Z|schedule|rounds={sched.rounds_run}/{sched.rounds_requested}"
        f"|kernels={sched.kernels_checked}|pool={sched.pool_size}"
        f"|ok={sched.ok}"
    ]
    fleet = fuzz_fleet(network="lenet", devices=("titanxp",),
                       executor="fixed", replicas=2, seed=0, rounds=2)
    lines.append(
        f"Z|fleet|rounds={len(fleet.rounds)}/{fleet.rounds_requested}"
        f"|fires={fleet.total_fires}|ok={fleet.ok}"
    )
    for r in fleet.rounds:
        lines.append(f"Z|fleet_round={r.round}|plan={r.plan_name}"
                     f"|fires={r.fires}|ok={r.ok}")
    return lines


#: Name -> workload callable.  Order is the order they are recorded,
#: checked and reported in.
ENGINE_WORKLOADS: Dict[str, Callable[[], List[str]]] = {
    "dag_events": _wl_dag_events,
    "memcpy_streams": _wl_memcpy_streams,
    "cifar10_conv_fwd": _wl_cifar10_conv_fwd,
    "inception_5a_opara": _wl_inception_5a_opara,
    "inception_5b_graph": _wl_inception_5b_graph,
    "fleet_slice": _wl_fleet_slice,
    "faulted_run": _wl_faulted_run,
    "suite_differential": _wl_suite_differential,
    "suite_fuzzers": _wl_suite_fuzzers,
}


def run_workload(name: str) -> List[str]:
    """Run one registered workload hermetically; returns canonical lines."""
    try:
        fn = ENGINE_WORKLOADS[name]
    except KeyError:
        raise ReproError(
            f"unknown engine workload {name!r}; known: "
            f"{', '.join(ENGINE_WORKLOADS)}"
        ) from None
    _reset_globals()
    try:
        return fn()
    finally:
        _reset_globals()


# ----------------------------------------------------------------------
# recording and checking


def record_engine_goldens(out_dir=DEFAULT_GOLDEN_DIR,
                          workloads: Optional[Sequence[str]] = None
                          ) -> List[Path]:
    """Capture goldens for every (or the named) workloads into JSON files."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name in (workloads or list(ENGINE_WORKLOADS)):
        lines = run_workload(name)
        doc = {
            "workload": name,
            "fingerprint": fingerprint_lines(lines),
            "line_count": len(lines),
            "lines": lines,
        }
        path = out_dir / f"{name}.json"
        path.write_text(json.dumps(doc, indent=1) + "\n", encoding="utf-8")
        written.append(path)
    return written


def load_golden(golden_dir, name: str) -> dict:
    path = Path(golden_dir) / f"{name}.json"
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as e:
        raise ReproError(f"missing engine golden {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise ReproError(f"engine golden {path} is not valid JSON: {e}") from e
    if doc.get("workload") != name:
        raise ReproError(
            f"engine golden {path} records workload "
            f"{doc.get('workload')!r}, expected {name!r}"
        )
    return doc


@dataclass
class WorkloadVerdict:
    """One workload's replay compared against its recorded golden."""

    workload: str
    expected_fingerprint: str
    actual_fingerprint: str
    lines: int = 0
    first_diff: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return (not self.error
                and self.expected_fingerprint == self.actual_fingerprint)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "expected_fingerprint": self.expected_fingerprint,
            "actual_fingerprint": self.actual_fingerprint,
            "lines": self.lines,
            "ok": self.ok,
            "first_diff": self.first_diff,
            "error": self.error,
        }


@dataclass
class EngineEquivalenceReport:
    """Every workload's bit-identity verdict against the goldens."""

    golden_dir: str
    verdicts: List[WorkloadVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.verdicts) and all(v.ok for v in self.verdicts)

    def failures(self) -> List[WorkloadVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def to_dict(self) -> dict:
        return {
            "golden_dir": self.golden_dir,
            "ok": self.ok,
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        lines = [f"engine-equivalence: {len(self.verdicts)} workload(s) "
                 f"vs goldens in {self.golden_dir} — "
                 f"{'OK' if self.ok else 'DIVERGED'}"]
        for v in self.verdicts:
            status = "OK" if v.ok else "DIVERGED"
            lines.append(f"  {v.workload:22s} {status:8s} "
                         f"{v.lines} line(s)")
            if v.error:
                lines.append(f"    error: {v.error}")
            elif v.first_diff:
                lines.append(f"    {v.first_diff}")
        return "\n".join(lines)


def _first_diff(expected: Sequence[str], actual: Sequence[str]) -> str:
    for i, (e, a) in enumerate(zip(expected, actual)):
        if e != a:
            return f"line {i}: expected {e!r}, got {a!r}"
    if len(expected) != len(actual):
        return (f"line count: expected {len(expected)} line(s), "
                f"got {len(actual)}")
    return ""


def run_engine_equivalence(golden_dir=DEFAULT_GOLDEN_DIR,
                           workloads: Optional[Sequence[str]] = None
                           ) -> EngineEquivalenceReport:
    """Replay workloads and diff them bit-for-bit against the goldens."""
    report = EngineEquivalenceReport(golden_dir=str(golden_dir))
    for name in (workloads or list(ENGINE_WORKLOADS)):
        golden = load_golden(golden_dir, name)
        try:
            lines = run_workload(name)
        except Exception as e:          # pragma: no cover - defensive
            report.verdicts.append(WorkloadVerdict(
                workload=name,
                expected_fingerprint=golden["fingerprint"],
                actual_fingerprint="",
                error=f"{type(e).__name__}: {e}",
            ))
            continue
        report.verdicts.append(WorkloadVerdict(
            workload=name,
            expected_fingerprint=golden["fingerprint"],
            actual_fingerprint=fingerprint_lines(lines),
            lines=len(lines),
            first_diff=_first_diff(golden["lines"], lines),
        ))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.verify.engine_equiv [--record] [dir]``."""
    import argparse

    ap = argparse.ArgumentParser(
        description="record or check gpusim engine-equivalence goldens")
    ap.add_argument("--record", action="store_true",
                    help="re-capture goldens from the current engine")
    ap.add_argument("dir", nargs="?", default=str(DEFAULT_GOLDEN_DIR),
                    help="golden fixture directory")
    ns = ap.parse_args(argv)
    if ns.record:
        for path in record_engine_goldens(ns.dir):
            print(f"recorded {path}")
        return 0
    report = run_engine_equivalence(ns.dir)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":              # pragma: no cover
    raise SystemExit(main())
