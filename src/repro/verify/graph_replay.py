"""Differential check: graph replay vs eager dispatch, bit for bit.

Graph-launch replay (:mod:`repro.graphs`) must be a pure *timing*
optimization: a training session whose executor runs in graph mode has
to produce exactly the bytes the eager session produces — activations,
gradients and parameters fingerprinted tensor-by-tensor
(:mod:`repro.verify.fingerprint`), across seeds and iterations.

Two extra invariants make the check honest:

* the graph-mode session must actually *replay* (at least one pass per
  phase launched as a graph) — otherwise the harness would vacuously
  pass while graph mode silently fell back to eager dispatch, so a
  replay count of zero is reported as a failure;
* the simulated kernel stream must match: both sessions launch the same
  number of kernels overall, with the graph session batching its
  launches (``graphs_launched > 0``).

The differential runs the same GLP4NN executor on both sides — the only
variable is graph mode — so any divergence is attributable to the
capture/replay machinery itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.gpusim.engine import GPU
from repro.gpusim.stream import reset_handle_ids
from repro.obs.metrics import counter_inc
from repro.obs.spans import span
from repro.runtime.session import TrainingSession
from repro.serve.engine import make_executor, resolve_device, resolve_net
from repro.verify.differential import make_batches
from repro.verify.fingerprint import (
    NetFingerprint,
    fingerprint_net,
    first_divergence,
)

#: Iterations per seed: warmup + capture + at least two replays.
DEFAULT_ITERATIONS = 4


@dataclass
class GraphSeedOutcome:
    """Graph-vs-eager verdict for one seed."""

    seed: int
    iterations: int = 0
    replays: int = 0
    captures: int = 0
    eager_sim_us: float = 0.0
    graph_sim_us: float = 0.0
    divergence: Optional[str] = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return (self.divergence is None and not self.error
                and self.replays >= 1)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "iterations": self.iterations,
            "replays": self.replays, "captures": self.captures,
            "eager_sim_us": round(self.eager_sim_us, 3),
            "graph_sim_us": round(self.graph_sim_us, 3),
            "ok": self.ok, "divergence": self.divergence,
            "error": self.error,
        }


@dataclass
class GraphReplayReport:
    """Graph-replay equivalence verdict across seeds."""

    network: str
    device: str
    batch: int
    iterations: int
    outcomes: list[GraphSeedOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and all(o.ok for o in self.outcomes)

    def to_dict(self) -> dict:
        return {
            "network": self.network, "device": self.device,
            "batch": self.batch, "iterations": self.iterations,
            "ok": self.ok,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def render(self) -> str:
        lines = [
            f"graph-replay: {self.network} on {self.device} "
            f"(batch {self.batch}, {self.iterations} iteration(s))"
        ]
        for o in self.outcomes:
            status = "OK" if o.ok else "FAIL"
            detail = ""
            if o.divergence:
                detail = f"  {o.divergence}"
            elif o.error:
                detail = f"  error: {o.error}"
            elif o.replays < 1:
                detail = "  graph never replayed (stuck eager)"
            lines.append(
                f"  seed {o.seed}: {status}  {o.replays} replay(s), "
                f"eager {o.eager_sim_us:.1f}us vs graph "
                f"{o.graph_sim_us:.1f}us{detail}")
        return "\n".join(lines)


def verify_graph_replay(network: str = "cifar10",
                        device: str = "p100",
                        seeds: Sequence[int] = (0, 1),
                        iterations: int = DEFAULT_ITERATIONS,
                        batch: int = 8) -> GraphReplayReport:
    """Run the graph-vs-eager differential across ``seeds``."""
    if iterations < DEFAULT_ITERATIONS:
        raise ReproError(
            f"graph replay verification needs >= {DEFAULT_ITERATIONS} "
            f"iterations (warmup + capture + replays), got {iterations}")
    builder = resolve_net(network)
    props = resolve_device(device)
    report = GraphReplayReport(network=network, device=props.name,
                               batch=batch, iterations=iterations)
    for seed in seeds:
        outcome = GraphSeedOutcome(seed=seed)
        with span("verify.graph.seed", cat="verify", seed=seed,
                  network=network):
            batches = make_batches(builder(batch=batch, seed=seed),
                                   iterations, seed)
            try:
                eager_fps, outcome.eager_sim_us = _run_side(
                    builder, props, batch, seed, batches, graph_mode=False)
                graph_fps, outcome.graph_sim_us, runtime = _run_side(
                    builder, props, batch, seed, batches, graph_mode=True)
                outcome.iterations = len(batches)
                outcome.replays = runtime.stats.replays
                outcome.captures = runtime.stats.captures
                for i, (exp, act) in enumerate(zip(eager_fps, graph_fps)):
                    d = first_divergence(exp, act)
                    if d is not None:
                        outcome.divergence = f"iteration {i}: {d}"
                        counter_inc("verify.divergences")
                        break
            except ReproError as e:
                outcome.error = f"{type(e).__name__}: {e}"
        report.outcomes.append(outcome)
    return report


def _run_side(builder, props, batch: int, seed: int, batches,
              graph_mode: bool):
    """One session (eager or graph-mode); returns fingerprints + time."""
    reset_handle_ids()
    net = builder(batch=batch, seed=seed)
    ex = make_executor("glp4nn", GPU(props))
    runtime = None
    if graph_mode:
        runtime = ex.enable_graph_mode(net=net, network=net.name
                                       if hasattr(net, "name") else "")
    session = TrainingSession(net, ex)
    fps: list[NetFingerprint] = []
    sim_us = 0.0
    for b in batches:
        t = session.run_iteration(b)
        sim_us += t.sim_time_us
        fps.append(fingerprint_net(net))
    if graph_mode:
        return fps, sim_us, runtime
    return fps, sim_us
