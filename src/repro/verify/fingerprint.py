"""Bit-exact fingerprints of a network's numeric state.

The convergence-invariance claim (paper Fig. 11) is *exact*: a layer's
kernels dispatched over a stream pool must produce the very bytes serial
execution produces.  So the differential harness compares SHA-256 digests
of every tensor — no tolerances, no "close enough".

A :class:`NetFingerprint` covers four sections, in causal order:

``blob``
    Forward activations (:attr:`Net.blobs` after ``forward``).
``blob_grad``
    Backward activation gradients (:attr:`Net.blob_diffs`).
``param_grad``
    Parameter gradients (``Blob.diff`` of every unique parameter).
``param``
    Parameter values themselves (after the solver update).

:func:`first_divergence` walks the sections in that order, so the reported
mismatch is the earliest point in the compute pipeline where two runs
disagree — the layer/blob name in the report localizes the bug.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.nn.net import Net

#: Comparison order: forward results, then backward, then the update.
SECTIONS = ("blob", "blob_grad", "param_grad", "param")


def array_digest(arr: np.ndarray) -> str:
    """SHA-256 over dtype, shape and the raw bytes of ``arr``."""
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class Divergence:
    """The first tensor where two fingerprints disagree."""

    section: str
    name: str
    expected: str
    actual: str

    def __str__(self) -> str:
        def _short(d: str) -> str:
            return d[:12] if len(d) > 12 else d
        return (f"{self.section}[{self.name}]: "
                f"{_short(self.expected)} != {_short(self.actual)}")


@dataclass(frozen=True)
class NetFingerprint:
    """Digests of every tensor in one network state, plus the loss."""

    sections: dict[str, dict[str, str]] = field(default_factory=dict)
    loss: Optional[float] = None

    def to_dict(self) -> dict:
        return {"sections": {s: dict(sorted(v.items()))
                             for s, v in self.sections.items()},
                "loss": self.loss}


def fingerprint_net(net: Net, include_activations: bool = True
                    ) -> NetFingerprint:
    """Fingerprint ``net``'s current numeric state.

    ``include_activations=False`` restricts to parameters and their
    gradients — cheaper, and sufficient once per-iteration activations
    have already been compared.
    """
    sections: dict[str, dict[str, str]] = {
        "blob": {}, "blob_grad": {}, "param_grad": {}, "param": {},
    }
    if include_activations:
        for name, arr in net.blobs.items():
            sections["blob"][name] = array_digest(arr)
        for name, arr in net.blob_diffs.items():
            sections["blob_grad"][name] = array_digest(arr)
    for p, _, _ in net.unique_params():
        sections["param_grad"][p.name] = array_digest(p.diff)
        sections["param"][p.name] = array_digest(p.data)
    loss = None
    if net.blobs:
        try:
            loss = net.loss_value()
        except Exception:
            loss = None
    return NetFingerprint(sections=sections, loss=loss)


def first_divergence(expected: NetFingerprint, actual: NetFingerprint
                     ) -> Optional[Divergence]:
    """The earliest mismatch between two fingerprints, or ``None``.

    Sections are walked in pipeline order (:data:`SECTIONS`); within a
    section, names are compared in sorted order for determinism.  A tensor
    present on one side only is itself a divergence (``<absent>``).
    """
    for section in SECTIONS:
        exp = expected.sections.get(section, {})
        act = actual.sections.get(section, {})
        for name in sorted(set(exp) | set(act)):
            e = exp.get(name, "<absent>")
            a = act.get(name, "<absent>")
            if e != a:
                return Divergence(section=section, name=name,
                                  expected=e, actual=a)
    if expected.loss is not None and actual.loss is not None \
            and expected.loss != actual.loss:
        return Divergence(section="loss", name="loss",
                          expected=repr(expected.loss),
                          actual=repr(actual.loss))
    return None
