"""CUPTI activity-buffer management and profiling reports.

Mirrors the ``cuptiActivityEnable`` / buffer-requested / buffer-completed
flow: the profiler owns a pool of fixed-size activity buffers; each
completed kernel appends one :class:`~repro.cupti.activity.ActivityRecord`;
``flush`` drains the buffers and charges the flush latency to the host.

The memory accounting feeds the paper's space analysis (Fig. 10):

* ``mem_cupti`` — the activity buffers themselves plus CUPTI's fixed
  runtime state (megabytes; by far the largest part, as the paper finds);
* ``mem_tt``   — timestamp bytes per recorded kernel;
* ``mem_K``    — launch-configuration bytes per recorded kernel.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.errors import ProfilerError
from repro.faults.hooks import fault_poll
from repro.cupti.activity import (
    ActivityKind,
    ActivityRecord,
    CONFIG_RECORD_BYTES,
    KERNEL_RECORD_BYTES,
    TIMESTAMP_BYTES,
)
from repro.cupti.subscriber import CuptiSubscriber, PER_KERNEL_OVERHEAD_US
from repro.gpusim.engine import GPU, KernelExecution

#: Size of one CUPTI activity buffer (CUPTI default is 3.2 MB; we use 3 MiB).
ACTIVITY_BUFFER_BYTES = 3 * 1024 * 1024
#: Fixed CUPTI runtime state allocated at subscription time.
CUPTI_RUNTIME_BYTES = 512 * 1024
#: Host latency of one buffer flush, microseconds.
FLUSH_LATENCY_US = 120.0

_correlation = itertools.count(1)


@dataclass
class ProfilingReport:
    """Everything one profiling session produced.

    ``mem_tt`` / ``mem_k`` / ``mem_cupti`` are Eq. 10-11's terms;
    ``profiling_time_us`` is ``T_p`` of Eq. 12.
    """

    device: str
    records: list[ActivityRecord] = field(default_factory=list)
    profiling_time_us: float = 0.0
    buffers_used: int = 0

    @property
    def num_kernels(self) -> int:
        return len(self.records)

    @property
    def mem_tt(self) -> int:
        """Bytes of kernel timestamps held (Eq. 11, first line)."""
        return self.num_kernels * TIMESTAMP_BYTES

    @property
    def mem_k(self) -> int:
        """Bytes of kernel execution configurations held (Eq. 11)."""
        return self.num_kernels * CONFIG_RECORD_BYTES

    @property
    def mem_cupti(self) -> int:
        """Bytes owned by the CUPTI runtime (buffers + fixed state)."""
        return self.buffers_used * ACTIVITY_BUFFER_BYTES + CUPTI_RUNTIME_BYTES

    @property
    def mem_total(self) -> int:
        """Eq. 10: total host memory attributable to profiling."""
        return self.mem_tt + self.mem_k + self.mem_cupti


class CuptiProfiler:
    """Collects kernel activity on one device between ``start`` and ``stop``.

    Usage::

        prof = CuptiProfiler(gpu)
        prof.start()
        ...   # launch + synchronize work
        report = prof.stop()

    All collected memory is host memory and is released at ``stop`` — the
    paper's argument for why profiling does not disturb device-side
    training.
    """

    def __init__(self, gpu: GPU) -> None:
        self.gpu = gpu
        self._subscriber: CuptiSubscriber | None = None
        self._records: list[ActivityRecord] = []
        self._bytes_in_buffer = 0
        self._buffers = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._subscriber is not None:
            raise ProfilerError("profiler already started")
        self._records = []
        self._bytes_in_buffer = 0
        self._buffers = 1  # first buffer handed to CUPTI up front
        self._subscriber = CuptiSubscriber(self.gpu, self._on_kernel)

    def _on_kernel(self, ke: KernelExecution) -> None:
        spec = ke.spec
        # Fault-injection site: a fired fault models CUPTI dropping this
        # activity record (buffer overflow / truncated flush).  The kernel
        # still ran — only the profile loses the sample.
        if fault_poll("profiler_record", spec.name) is not None:
            return
        assert ke.start_time is not None and ke.end_time is not None
        rec = ActivityRecord(
            kind=ActivityKind.KERNEL,
            name=spec.name,
            tag=spec.tag,
            device=self.gpu.props.name,
            stream_id=ke.stream_id,
            correlation_id=next(_correlation),
            grid=spec.launch.grid,
            block=spec.launch.block,
            registers_per_thread=spec.launch.registers_per_thread,
            static_shared_memory=spec.launch.shared_mem_static,
            dynamic_shared_memory=spec.launch.shared_mem_dynamic,
            start_ns=int(round(ke.start_time * 1e3)),
            end_ns=int(round(ke.end_time * 1e3)),
        )
        self._records.append(rec)
        self._bytes_in_buffer += KERNEL_RECORD_BYTES
        if self._bytes_in_buffer > ACTIVITY_BUFFER_BYTES:
            self._buffers += 1
            self._bytes_in_buffer = KERNEL_RECORD_BYTES

    def stop(self) -> ProfilingReport:
        """Flush, detach, and return the report (releases all buffers)."""
        if self._subscriber is None:
            raise ProfilerError("profiler not started")
        # Final buffer flush costs host time, as cuptiActivityFlushAll does.
        self.gpu.host_time += FLUSH_LATENCY_US
        t_p = self._subscriber.overhead_us + FLUSH_LATENCY_US
        sub = self._subscriber
        self._subscriber = None
        sub.unsubscribe()
        report = ProfilingReport(
            device=self.gpu.props.name,
            records=list(self._records),
            profiling_time_us=t_p,
            buffers_used=self._buffers,
        )
        self._records = []
        self._buffers = 0
        return report

    @property
    def is_running(self) -> bool:
        return self._subscriber is not None

    def __enter__(self) -> "CuptiProfiler":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        if self.is_running:
            self.stop()
