"""CUPTI-style subscription to driver launch/completion callbacks.

``cuptiSubscribe`` allows exactly one subscriber per process; we keep the
same restriction per simulated GPU, which catches the classic bug of two
profilers fighting over the device.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.errors import ProfilerError
from repro.gpusim.engine import GPU, KernelExecution

#: Host-side cost charged per instrumented kernel launch, microseconds.
#: CUPTI's kernel-activity collection adds a few microseconds of driver
#: work per launch; this constant is what makes profiling cost ``T_p``
#: proportional to the number of kernels collected (paper Section 4.2.2).
PER_KERNEL_OVERHEAD_US = 2.5

_subscriber_ids = itertools.count(1)


class CuptiSubscriber:
    """Hooks one GPU's driver callbacks and forwards kernel completions.

    Parameters
    ----------
    gpu:
        The simulated device to instrument.
    on_complete:
        Called with the :class:`~repro.gpusim.engine.KernelExecution` when a
        kernel's last block retires.
    charge_overhead:
        When true (the default, matching real CUPTI), each instrumented
        launch advances the host clock by :data:`PER_KERNEL_OVERHEAD_US`.
    """

    def __init__(
        self,
        gpu: GPU,
        on_complete: Callable[[KernelExecution], None],
        charge_overhead: bool = True,
    ) -> None:
        if any(isinstance(h, _HookToken) for h in gpu.launch_hooks):
            raise ProfilerError(
                f"device {gpu.props.name} already has a CUPTI subscriber"
            )
        self.subscriber_id = next(_subscriber_ids)
        self.gpu = gpu
        self._on_complete = on_complete
        self._charge = charge_overhead
        self.kernels_instrumented = 0
        self.overhead_us = 0.0
        self._launch_token = _HookToken(self._launch_cb)
        self._complete_token = _HookToken(self._complete_cb)
        gpu.launch_hooks.append(self._launch_token)
        gpu.completion_hooks.append(self._complete_token)
        self._active = True

    def _launch_cb(self, gpu: GPU, ke: KernelExecution) -> None:
        self.kernels_instrumented += 1
        if self._charge:
            gpu.host_time += PER_KERNEL_OVERHEAD_US
            self.overhead_us += PER_KERNEL_OVERHEAD_US

    def _complete_cb(self, gpu: GPU, ke: KernelExecution) -> None:
        self._on_complete(ke)

    def unsubscribe(self) -> None:
        """Detach from the device (idempotent)."""
        if not self._active:
            return
        self.gpu.launch_hooks.remove(self._launch_token)
        self.gpu.completion_hooks.remove(self._complete_token)
        self._active = False

    @property
    def is_active(self) -> bool:
        return self._active

    def __enter__(self) -> "CuptiSubscriber":
        return self

    def __exit__(self, *exc) -> None:
        self.unsubscribe()


class _HookToken:
    """Callable wrapper marking a hook as CUPTI-owned."""

    __slots__ = ("fn",)

    def __init__(self, fn) -> None:
        self.fn = fn

    def __call__(self, gpu: GPU, ke: KernelExecution) -> None:
        self.fn(gpu, ke)
