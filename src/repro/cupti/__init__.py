"""A CUPTI-like profiling interface over the GPU simulator.

The paper's resource tracker embeds a *compact profiler* built on the NVIDIA
CUDA Profiling Tools Interface rather than using offline tools (Visual
Profiler, Vampir), for three reasons it lists explicitly: online operation,
low memory/time overhead, and the ability to attribute kernels to network
layers.  This package reproduces the CUPTI surface that profiler needs:

* :mod:`repro.cupti.activity` — kernel activity records (name, stream,
  grid/block geometry, registers, shared memory, nanosecond timestamps) with
  the byte-accurate record sizes used for the paper's space analysis;
* :mod:`repro.cupti.subscriber` — subscription handles that hook the
  simulated driver's launch/completion callbacks and charge the documented
  per-kernel host overhead (this is what makes profiling cost ``T_p``);
* :mod:`repro.cupti.profiler` — buffer management: a CUPTI-style activity
  buffer pool plus flush, reporting ``mem_cupti`` / per-record memory and
  the accumulated profiling time.
"""

from repro.cupti.activity import (
    ActivityKind,
    ActivityRecord,
    KERNEL_RECORD_BYTES,
    TIMESTAMP_BYTES,
    CONFIG_RECORD_BYTES,
)
from repro.cupti.subscriber import CuptiSubscriber
from repro.cupti.profiler import CuptiProfiler, ProfilingReport, ACTIVITY_BUFFER_BYTES

__all__ = [
    "ActivityKind",
    "ActivityRecord",
    "KERNEL_RECORD_BYTES",
    "TIMESTAMP_BYTES",
    "CONFIG_RECORD_BYTES",
    "CuptiSubscriber",
    "CuptiProfiler",
    "ProfilingReport",
    "ACTIVITY_BUFFER_BYTES",
]
