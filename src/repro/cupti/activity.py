"""CUPTI activity records.

Field layout and sizes follow ``CUpti_ActivityKernel4`` closely enough that
the space analysis (Eq. 10-11 of the paper) is byte-meaningful:

* a full kernel activity record is :data:`KERNEL_RECORD_BYTES`;
* of that, the two device timestamps account for :data:`TIMESTAMP_BYTES`
  (``mem_tt`` counts these);
* the launch-configuration portion the kernel parser keeps — grid, block,
  registers, static/dynamic shared memory, stream and correlation ids —
  accounts for :data:`CONFIG_RECORD_BYTES` (``mem_K`` counts these).

Timestamps are integer nanoseconds, as in CUPTI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.gpusim.kernel import Dim3

#: sizeof(CUpti_ActivityKernel4) — one full kernel record.
KERNEL_RECORD_BYTES = 144
#: Two uint64 device timestamps (start, end).
TIMESTAMP_BYTES = 16
#: Grid (3x int32) + block (3x int32) + registers (int32) + static smem
#: (int32) + dynamic smem (int32) + stream id (int32) + correlation id
#: (int32) + device id (int32) = 48 bytes.
CONFIG_RECORD_BYTES = 48


class ActivityKind(enum.Enum):
    """Subset of ``CUpti_ActivityKind`` the tracker subscribes to."""

    KERNEL = "kernel"
    RUNTIME = "runtime"
    OVERHEAD = "overhead"


@dataclass(frozen=True)
class ActivityRecord:
    """One kernel execution as reported by the (simulated) CUPTI."""

    kind: ActivityKind
    name: str
    tag: str
    device: str
    stream_id: int
    correlation_id: int
    grid: Dim3
    block: Dim3
    registers_per_thread: int
    static_shared_memory: int
    dynamic_shared_memory: int
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3

    @property
    def shared_memory(self) -> int:
        return self.static_shared_memory + self.dynamic_shared_memory

    @property
    def size_bytes(self) -> int:
        """Size of this record in a CUPTI activity buffer."""
        return KERNEL_RECORD_BYTES
