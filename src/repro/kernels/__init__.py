"""Kernel IR, launch-configuration heuristics and the roofline cost model.

This package plays the role of cuDNN/cuBLAS in the reproduction: it decides
what GPU kernels a layer's math turns into (``im2col`` + ``sgemm`` + the
small ``gemmk`` bias kernel for convolutions, elementwise kernels for
activations, ...), with realistic launch geometry (grids, blocks, registers,
shared memory) and per-thread work estimates that the simulator's roofline
model converts into execution time.

* :mod:`repro.kernels.ir` — :class:`KernelChain` (in-order dependent
  kernels) and :class:`LayerWork` (batch-parallel chains + serial work),
  the unit GLP4NN's runtime scheduler dispatches.
* :mod:`repro.kernels.ops` — builders for each primitive operation.
* :mod:`repro.kernels.costmodel` — analytic solo-duration estimation, used
  in tests and as a profiling-free input source for the analyzer.
"""

from repro.kernels.ir import KernelChain, LayerWork
from repro.kernels.ops import (
    im2col_spec,
    col2im_spec,
    sgemm_spec,
    gemmk_bias_spec,
    pooling_spec,
    relu_spec,
    lrn_spec,
    axpy_spec,
    eltwise_spec,
    softmax_spec,
)
from repro.kernels.costmodel import (
    kernel_solo_time_us,
    chain_solo_time_us,
    block_work_us,
)

__all__ = [
    "KernelChain",
    "LayerWork",
    "im2col_spec",
    "col2im_spec",
    "sgemm_spec",
    "gemmk_bias_spec",
    "pooling_spec",
    "relu_spec",
    "lrn_spec",
    "axpy_spec",
    "eltwise_spec",
    "softmax_spec",
    "kernel_solo_time_us",
    "chain_solo_time_us",
    "block_work_us",
]
