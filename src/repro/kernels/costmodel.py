"""Analytic kernel-duration estimation (profiling-free).

The resource tracker normally *measures* ``T_Ki`` by running the kernels
once under the simulated CUPTI (Section 3.1 of the paper).  This module
provides the closed-form estimate used

* by tests as an independent check on the discrete-event engine, and
* by the analyzer's optional "static" input source (ablation: model-only,
  no profiling run).

The estimate mirrors the engine's execution model: a block's *work* is its
roofline time at full SM throughput; a block whose warp count is below the
SM's saturation point only achieves a fraction ``c`` of that throughput
(latency-bound); ``r`` co-resident blocks share the SM once their combined
demand exceeds 1.  A kernel's grid drains in waves across the SMs.
"""

from __future__ import annotations

import math

from repro.gpusim.device import DeviceProperties
from repro.gpusim.engine import default_block_work
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.occupancy import max_active_blocks_per_sm
from repro.gpusim.sm import MIN_BLOCK_WORK_US, block_demand
from repro.kernels.ir import KernelChain


def block_work_us(spec: KernelSpec, device: DeviceProperties) -> float:
    """Roofline work of one block (µs at full SM throughput).

    Delegates to the engine's default cost function so the analytic
    estimates and the simulation share one source of truth.
    """
    return default_block_work(spec, device)


def kernel_solo_time_us(spec: KernelSpec, device: DeviceProperties) -> float:
    """Estimated duration of the kernel running alone on the device.

    Blocks spread evenly over the SMs (the model's Eq. 8 assumption).  With
    ``r`` same-kernel blocks resident per SM, each block of demand ``c``
    finishes in ``w * max(1/c, r)``; the grid drains in
    ``ceil(#blocks / (r * #SM))`` waves.
    """
    launch = spec.launch
    w = max(block_work_us(spec, device), MIN_BLOCK_WORK_US)
    c = block_demand(device, launch)
    fit = max_active_blocks_per_sm(device, launch).blocks_per_sm
    blocks = launch.num_blocks
    capacity = fit * device.sm_count
    if blocks <= capacity:
        # single wave; residency per SM is the even spread
        r = max(1, math.ceil(blocks / device.sm_count))
        r = min(r, fit)
        return w * max(1.0 / c, r)
    waves = blocks / capacity
    return w * max(1.0 / c, fit) * waves


def chain_solo_time_us(chain: KernelChain, device: DeviceProperties) -> float:
    """Serial duration of a dependent kernel chain (no launch gaps)."""
    return sum(kernel_solo_time_us(k, device) for k in chain)


def kernel_flop_rate(spec: KernelSpec, device: DeviceProperties) -> float:
    """Achieved GFLOP/s of the kernel under the solo-time estimate."""
    t = kernel_solo_time_us(spec, device)
    if t <= 0:
        return 0.0
    return spec.total_flops / t / 1e3  # flops/µs -> GFLOP/s
