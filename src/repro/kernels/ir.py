"""Kernel chains and layer work units.

GLP4NN's batch-level parallelism decomposes a layer's computation into
independent per-sample *chains* of kernels (the loop over ``n`` in the
paper's Algorithms 1 and 2).  Kernels inside one chain are data-dependent
(``im2col`` feeds ``sgemm`` feeds the bias kernel) and must run in order on
one stream; different chains are independent and may run concurrently on
different streams.  Work that reduces across the batch (e.g. weight-gradient
accumulation in the backward pass) is *serial* and runs on the default
stream after the chains complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.gpusim.kernel import KernelSpec


@dataclass(frozen=True)
class KernelChain:
    """An ordered, data-dependent sequence of kernels (one stream's worth)."""

    kernels: tuple[KernelSpec, ...]
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "kernels", tuple(self.kernels))

    def __iter__(self) -> Iterator[KernelSpec]:
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def retagged(self, prefix: str) -> "KernelChain":
        """Copy with every kernel's tag prefixed (per-sample provenance)."""
        return KernelChain(
            tuple(k.retagged(f"{prefix}/{k.tag}" if k.tag else prefix)
                  for k in self.kernels),
            label=self.label,
        )


@dataclass(frozen=True)
class LayerWork:
    """All GPU work of one layer in one phase (forward or backward).

    Attributes
    ----------
    layer:
        Layer name (``conv1``...), the key under which the resource tracker
        caches profiles and the analyzer caches concurrency decisions.
    phase:
        ``"forward"`` or ``"backward"``.
    parallel_chains:
        Independent chains — one per batch sample for convolution layers.
        GLP4NN distributes these round-robin over the stream pool; the naive
        executor runs them back-to-back on the default stream, which is
        exactly what unmodified Caffe does.
    serial_kernels:
        Whole-batch kernels that must run after the chains (reductions,
        fused batch implementations of non-conv layers).
    """

    layer: str
    phase: str
    parallel_chains: tuple[KernelChain, ...] = ()
    serial_kernels: tuple[KernelSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "parallel_chains", tuple(self.parallel_chains))
        object.__setattr__(self, "serial_kernels", tuple(self.serial_kernels))
        if self.phase not in ("forward", "backward"):
            raise ValueError(f"phase must be forward/backward, got {self.phase!r}")

    @property
    def key(self) -> str:
        """Cache key used by the tracker and the concurrency maintainer."""
        return f"{self.layer}/{self.phase}"

    def all_kernels(self) -> list[KernelSpec]:
        out: list[KernelSpec] = []
        for chain in self.parallel_chains:
            out.extend(chain.kernels)
        out.extend(self.serial_kernels)
        return out

    def unique_signatures(self) -> list[KernelSpec]:
        """One representative per distinct kernel signature, chain order.

        This is the kernel set ``K = {K_1 .. K_N}`` the analytical model
        reasons about for this layer.
        """
        seen: dict[tuple, KernelSpec] = {}
        for k in self.all_kernels():
            seen.setdefault(k.signature, k)
        return list(seen.values())

    @property
    def num_kernels(self) -> int:
        return (sum(len(c) for c in self.parallel_chains)
                + len(self.serial_kernels))
