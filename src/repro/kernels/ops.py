"""Builders for the primitive GPU kernels a Caffe-style network uses.

Launch geometry follows Caffe's CUDA conventions (elementwise kernels use
``CAFFE_CUDA_NUM_THREADS``-sized blocks over a flat index space) and a
cuBLAS-style tiled SGEMM.  Register counts and shared-memory footprints are
fixed per kernel family at values representative of ``nvcc`` output for
these kernels (e.g. the paper's workflow example reports 33 registers for
``im2col``); the analytical model consumes them as profiling input, so what
matters is that they are *realistic and consistent*, not cycle-exact.

All builders return a single :class:`~repro.gpusim.kernel.KernelSpec` for
**one sample** unless stated otherwise; batch-level parallelism replicates
them across the batch.
"""

from __future__ import annotations

import math

from repro.gpusim.kernel import KernelSpec, LaunchConfig

#: Caffe's default block size for elementwise kernels.
CAFFE_CUDA_NUM_THREADS = 512

#: SGEMM tiling alternatives (tile edge, threads/block, regs, smem bytes).
_SGEMM_TILES = (
    # (tile, threads, registers, shared_mem) — large tile for big GEMMs,
    # small tile for skinny ones, mirroring cuBLAS kernel selection.
    (64, 256, 122, 8192),
    (32, 128, 63, 4352),
    (16, 64, 40, 2176),
)


def _flat_grid(n: int, threads: int = CAFFE_CUDA_NUM_THREADS) -> LaunchConfig:
    blocks = max(1, math.ceil(n / threads))
    return LaunchConfig(grid=(blocks, 1, 1), block=(threads, 1, 1))


def im2col_spec(ci: int, out_h: int, out_w: int, fh: int, fw: int,
                tag: str = "") -> KernelSpec:
    """Caffe's ``im2col_gpu_kernel``: one thread per (channel, output pixel).

    Each thread copies an ``fh x fw`` patch row into the column buffer.
    """
    n = ci * out_h * out_w
    lc = _flat_grid(n)
    lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=33)
    return KernelSpec(
        name="im2col",
        launch=lc,
        flops_per_thread=3.0 * fh * fw,      # index arithmetic per element
        bytes_per_thread=8.0 * fh * fw,      # read + write one float each
        tag=tag,
    )


def col2im_spec(ci: int, h: int, w: int, fh: int, fw: int,
                tag: str = "") -> KernelSpec:
    """Caffe's ``col2im_gpu_kernel`` (backward of im2col): one thread/pixel."""
    n = ci * h * w
    lc = _flat_grid(n)
    lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=38)
    return KernelSpec(
        name="col2im",
        launch=lc,
        flops_per_thread=4.0 * fh * fw,
        bytes_per_thread=4.0 * fh * fw + 8.0,
        tag=tag,
    )


def sgemm_spec(m: int, n: int, k: int, tag: str = "",
               accumulate: bool = False) -> KernelSpec:
    """Tiled SGEMM ``C[m,n] (+)= A[m,k] @ B[k,n]``, cuBLAS-style.

    Tile size adapts to the output shape the way cuBLAS picks kernels: big
    square outputs get 64x64 tiles, skinny ones 32 or 16.  Shared-memory
    staging means each A/B element is read from DRAM once per tile row /
    column rather than once per use.
    """
    if m < 1 or n < 1 or k < 1:
        raise ValueError(f"sgemm dims must be positive: {(m, n, k)}")
    for tile, threads, regs, smem in _SGEMM_TILES:
        if min(m, n) >= tile or (tile, threads, regs, smem) == _SGEMM_TILES[-1]:
            break
    gm, gn = math.ceil(m / tile), math.ceil(n / tile)
    blocks = gm * gn
    lc = LaunchConfig(
        grid=(gm, gn, 1),
        block=(threads, 1, 1),
        shared_mem_dynamic=smem,
        registers_per_thread=regs,
    )
    total_threads = blocks * threads
    total_flops = 2.0 * m * n * k
    # tile loads through shared memory + one store (plus a load if beta!=0)
    total_bytes = 4.0 * (k * (gm + gn) * tile + (2 if accumulate else 1) * m * n)
    return KernelSpec(
        name="sgemm",
        launch=lc,
        flops_per_thread=total_flops / total_threads,
        bytes_per_thread=total_bytes / total_threads,
        tag=tag,
    )


def gemmk_bias_spec(co: int, out_hw: int, tag: str = "") -> KernelSpec:
    """The small ``gemmk`` bias-broadcast kernel of the paper's example.

    Caffe realizes bias addition as a rank-1 GEMM with a ones vector; the
    resulting kernel is tiny (the third kernel in the paper's conv1
    workflow).
    """
    n = co * out_hw
    lc = _flat_grid(n, threads=256)
    lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=40)
    return KernelSpec(
        name="gemmk",
        launch=lc,
        flops_per_thread=2.0,
        bytes_per_thread=12.0,
        tag=tag,
    )


def pooling_spec(co: int, pooled_h: int, pooled_w: int, fh: int, fw: int,
                 op: str = "max", tag: str = "") -> KernelSpec:
    """Caffe's ``MaxPoolForward`` / ``AvePoolForward``: one thread/output."""
    n = co * pooled_h * pooled_w
    lc = _flat_grid(n)
    lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=28)
    return KernelSpec(
        name=f"{op}pool",
        launch=lc,
        flops_per_thread=float(fh * fw),
        bytes_per_thread=4.0 * fh * fw + 8.0,
        tag=tag,
    )


def relu_spec(count: int, tag: str = "") -> KernelSpec:
    """Elementwise ReLU over ``count`` values."""
    lc = _flat_grid(count)
    lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=10)
    return KernelSpec(
        name="relu",
        launch=lc,
        flops_per_thread=1.0,
        bytes_per_thread=8.0,
        tag=tag,
    )


def lrn_spec(channels: int, h: int, w: int, size: int, stage: str = "scale",
             tag: str = "") -> KernelSpec:
    """Local response normalization (two-stage, Caffe's cross-channel LRN).

    ``stage="scale"`` is ``LRNFillScale`` (one thread per spatial position,
    sliding a window over channels); ``stage="output"`` is the elementwise
    ``LRNComputeOutput``.
    """
    if stage == "scale":
        n = h * w
        lc = _flat_grid(n)
        lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=36)
        return KernelSpec(
            name="lrn_scale",
            launch=lc,
            flops_per_thread=4.0 * size + 2.0 * channels,
            bytes_per_thread=8.0 * channels,
            tag=tag,
        )
    if stage == "output":
        n = channels * h * w
        lc = _flat_grid(n)
        lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=18)
        return KernelSpec(
            name="lrn_output",
            launch=lc,
            flops_per_thread=8.0,   # pow()
            bytes_per_thread=12.0,
            tag=tag,
        )
    raise ValueError(f"unknown LRN stage {stage!r}")


def axpy_spec(count: int, tag: str = "") -> KernelSpec:
    """``y += alpha * x`` over ``count`` values (SGD parameter updates)."""
    lc = _flat_grid(count)
    lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=12)
    return KernelSpec(
        name="axpy",
        launch=lc,
        flops_per_thread=2.0,
        bytes_per_thread=12.0,
        tag=tag,
    )


def eltwise_spec(name: str, count: int, flops: float = 1.0,
                 bytes_per_elem: float = 8.0, registers: int = 14,
                 tag: str = "") -> KernelSpec:
    """Generic elementwise kernel over ``count`` values.

    Used for ops whose GPU form is a flat map (dropout masking, concat
    copies, scale), which all launch Caffe-style flat grids.
    """
    lc = _flat_grid(count)
    lc = LaunchConfig(grid=lc.grid, block=lc.block,
                      registers_per_thread=registers)
    return KernelSpec(
        name=name,
        launch=lc,
        flops_per_thread=flops,
        bytes_per_thread=bytes_per_elem,
        tag=tag,
    )


def softmax_spec(classes: int, count: int = 1, tag: str = "") -> KernelSpec:
    """Fused softmax (max/exp/sum/div) over ``count`` rows of ``classes``.

    Whole-batch kernel: loss layers are not batch-parallelized by GLP4NN.
    """
    n = classes * count
    lc = _flat_grid(n)
    lc = LaunchConfig(grid=lc.grid, block=lc.block, registers_per_thread=24)
    return KernelSpec(
        name="softmax",
        launch=lc,
        flops_per_thread=6.0,
        bytes_per_thread=16.0,
        tag=tag,
    )
