"""Class-conditional synthetic image datasets with Table 4's shapes.

Each class ``c`` gets a random low-frequency prototype image; samples are
the prototype plus Gaussian noise.  A linear-ish model can reach high
accuracy, so small CNNs show the paper's characteristic loss curves within
a few hundred iterations — enough to compare two training runs point by
point (Fig. 11).

Sample *counts* default to small fractions of the real datasets (training
on 1.2M synthetic ImageNet images would be pointless); the spec records the
paper's true counts for the documentation tables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class DatasetSpec:
    """Shape/count description of one dataset (paper Table 4)."""

    name: str
    train_images: int      # paper's count
    test_images: int       # paper's count
    channels: int
    pixels: int            # height = width
    classes: int


#: Paper Table 4.  MNIST is 28x28 grayscale; CIFAR-10 32x32 RGB; the paper
#: lists ImageNet at its stored resolution of 256x256 (nets crop to 227).
DATASET_SPECS: dict[str, DatasetSpec] = {
    "mnist": DatasetSpec("mnist", 60_000, 10_000, 1, 28, 10),
    "cifar10": DatasetSpec("cifar10", 50_000, 10_000, 3, 32, 10),
    "imagenet": DatasetSpec("imagenet", 1_200_000, 150_000, 3, 256, 1000),
}


@dataclass(frozen=True)
class Dataset:
    """In-memory dataset: images ``(N, C, H, W)`` float32, labels int64."""

    name: str
    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.shape[0] != self.labels.shape[0]:
            raise ReproError("images/labels length mismatch")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1


def _prototypes(rng: np.random.Generator, classes: int, channels: int,
                pixels: int) -> np.ndarray:
    """Smooth per-class prototype images (low-frequency random fields)."""
    coarse = rng.normal(0.0, 1.0, size=(classes, channels, 8, 8))
    # bilinear-ish upsample by nearest + box smoothing, purely in NumPy
    reps = -(-pixels // 8)
    up = np.repeat(np.repeat(coarse, reps, axis=2), reps, axis=3)
    up = up[:, :, :pixels, :pixels]
    # one smoothing pass to remove blockiness
    sm = up.copy()
    sm[:, :, 1:] += up[:, :, :-1]
    sm[:, :, :-1] += up[:, :, 1:]
    sm[:, :, :, 1:] += up[:, :, :, :-1]
    sm[:, :, :, :-1] += up[:, :, :, 1:]
    return (sm / 5.0).astype(np.float32)


def make_dataset(
    name: str,
    num_samples: int = 1000,
    noise: float = 0.5,
    seed: int = 0,
    pixels: int | None = None,
    classes: int | None = None,
) -> Dataset:
    """Generate a synthetic dataset shaped like ``name`` (Table 4 entry).

    ``pixels``/``classes`` may override the spec (CaffeNet consumes 227x227
    crops of ImageNet's 256x256 images).
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_SPECS)}"
        ) from None
    px = pixels or spec.pixels
    ncls = classes or spec.classes
    rng = np.random.default_rng(seed)
    protos = _prototypes(rng, ncls, spec.channels, px)
    labels = rng.integers(0, ncls, size=num_samples)
    images = protos[labels] + rng.normal(
        0.0, noise, size=(num_samples, spec.channels, px, px)
    ).astype(np.float32)
    return Dataset(name=name, images=images.astype(np.float32),
                   labels=labels.astype(np.int64))


def make_pair_dataset(
    base: Dataset, num_pairs: int, seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample image pairs + similarity labels for the Siamese network.

    Returns ``(a, b, sim)`` with ``sim[i] = 1`` when the pair shares a
    class, balanced 50/50 like Caffe's Siamese data layer.
    """
    rng = np.random.default_rng(seed)
    by_class: dict[int, np.ndarray] = {
        int(c): np.flatnonzero(base.labels == c)
        for c in np.unique(base.labels)
    }
    classes = [c for c, idx in by_class.items() if idx.size >= 2]
    if len(classes) < 2:
        raise ReproError("pair dataset needs at least two populated classes")
    a_idx = np.empty(num_pairs, dtype=np.int64)
    b_idx = np.empty(num_pairs, dtype=np.int64)
    sim = np.empty(num_pairs, dtype=np.float32)
    for i in range(num_pairs):
        if rng.random() < 0.5:
            c = classes[rng.integers(len(classes))]
            pick = rng.choice(by_class[c], size=2, replace=False)
            a_idx[i], b_idx[i], sim[i] = pick[0], pick[1], 1.0
        else:
            c1, c2 = rng.choice(len(classes), size=2, replace=False)
            a_idx[i] = rng.choice(by_class[classes[c1]])
            b_idx[i] = rng.choice(by_class[classes[c2]])
            sim[i] = 0.0
    return base.images[a_idx], base.images[b_idx], sim
