"""Batch iteration with epoch shuffling.

The shuffle order is the *only* source of divergence between a Caffe run
and a GLP4NN-Caffe run in the paper's Fig. 11 ("the difference ... is
caused by the shuffle process while fetching training batch samples"); the
loader therefore takes an explicit seed so experiments can either align the
two runs exactly or reproduce the paper's slight divergence.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ReproError
from repro.data.synthetic import Dataset


class BatchLoader:
    """Cyclic shuffled batches of ``(data, label)`` dictionaries."""

    def __init__(self, dataset: Dataset, batch: int, seed: int = 0,
                 shuffle: bool = True) -> None:
        if batch < 1 or batch > len(dataset):
            raise ReproError(
                f"batch size {batch} invalid for dataset of {len(dataset)}"
            )
        self.dataset = dataset
        self.batch = batch
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)
        self._order = np.arange(len(dataset))
        self._cursor = len(dataset)  # force reshuffle on first batch
        self.epoch = -1

    def next_batch(self) -> dict[str, np.ndarray]:
        if self._cursor + self.batch > len(self.dataset):
            if self.shuffle:
                self._rng.shuffle(self._order)
            self._cursor = 0
            self.epoch += 1
        sel = self._order[self._cursor:self._cursor + self.batch]
        self._cursor += self.batch
        return {
            "data": self.dataset.images[sel],
            "label": self.dataset.labels[sel].astype(np.float32),
        }

    def __iter__(self) -> Iterator[dict[str, np.ndarray]]:
        while True:
            yield self.next_batch()


class PairBatchLoader:
    """Shuffled batches of precomputed Siamese pairs."""

    def __init__(self, a: np.ndarray, b: np.ndarray, sim: np.ndarray,
                 batch: int, seed: int = 0, shuffle: bool = True) -> None:
        if not (len(a) == len(b) == len(sim)):
            raise ReproError("pair arrays must have equal length")
        if batch < 1 or batch > len(a):
            raise ReproError(f"batch size {batch} invalid for {len(a)} pairs")
        self.a, self.b, self.sim = a, b, sim
        self.batch = batch
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)
        self._order = np.arange(len(a))
        self._cursor = len(a)

    def next_batch(self) -> dict[str, np.ndarray]:
        if self._cursor + self.batch > len(self.a):
            if self.shuffle:
                self._rng.shuffle(self._order)
            self._cursor = 0
        sel = self._order[self._cursor:self._cursor + self.batch]
        self._cursor += self.batch
        return {
            "data": self.a[sel],
            "data_p": self.b[sel],
            "sim": self.sim[sel],
        }
