"""Synthetic stand-ins for the paper's datasets (Table 4).

Real MNIST / CIFAR-10 / ImageNet are unavailable offline, so
:mod:`repro.data.synthetic` generates class-conditional Gaussian image
datasets with exactly the paper's tensor shapes.  Timing experiments only
consume shapes; the convergence experiment (Fig. 11) needs a *learnable*
task, which class-structured synthetic data provides.
"""

from repro.data.synthetic import (
    Dataset,
    DatasetSpec,
    DATASET_SPECS,
    make_dataset,
    make_pair_dataset,
)
from repro.data.loader import BatchLoader, PairBatchLoader

__all__ = [
    "Dataset",
    "DatasetSpec",
    "DATASET_SPECS",
    "make_dataset",
    "make_pair_dataset",
    "BatchLoader",
    "PairBatchLoader",
]
