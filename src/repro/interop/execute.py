"""Execute certified stream plans: eager dispatch or one graph launch.

Two execution paths, both consuming the same certified
:class:`~repro.interop.planner.StreamPlan`:

* :func:`run_plan` dispatches eagerly, mirroring
  :func:`repro.runtime.graph.dispatch_graph` but under the plan's own
  assignment and launch order — cross-stream dependency edges become
  event record/wait pairs, same-stream edges ride stream FIFO order, and
  the pass ends in the ``synchronize`` every training loop issues.
* :func:`compile_plan` + :func:`replay_plan` compose with the PR-7
  graph-launch subsystem: the plan is lowered directly into a
  :class:`~repro.graphs.compiled.CompiledGraph` (launch nodes carry the
  full kernel spec plus the certification effects), re-validated by
  graph admission, and replayed through
  :meth:`repro.gpusim.engine.GPU.launch_graph` for a single amortized
  host launch.

Callers are expected to execute only plans that came out of
:func:`repro.interop.certify.certify` — both paths refuse uncertified
plans, so the "no plan executes unsigned" invariant is enforced here,
not just documented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import SchedulingError
from repro.gpusim.engine import GPU
from repro.gpusim.stream import Event, Stream
from repro.graphs.admission import admit
from repro.graphs.compiled import CompiledGraph, GraphNode
from repro.graphs.replay import GraphExec, instantiate
from repro.interop.certify import Effects, structural_effects
from repro.interop.planner import StreamPlan
from repro.obs.metrics import counter_inc
from repro.obs.spans import span
from repro.runtime.graph import KernelGraph


@dataclass
class PlanRun:
    """Measured outcome of executing one plan once."""

    policy: str
    mode: str                 # "eager" | "graph"
    elapsed_us: float
    launches: int
    records: int
    waits: int
    launch_overhead_us: float

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "mode": self.mode,
            "elapsed_us": round(self.elapsed_us, 3),
            "launches": self.launches,
            "records": self.records,
            "waits": self.waits,
            "launch_overhead_us": round(self.launch_overhead_us, 3),
        }


def _require_certified(plan: StreamPlan) -> None:
    if not plan.certified:
        raise SchedulingError(
            f"refusing to execute uncertified {plan.policy!r} plan for "
            f"graph {plan.graph_name!r}; run repro.interop.certify first")


def run_plan(gpu: GPU, graph: KernelGraph, plan: StreamPlan,
             streams: Sequence[Stream],
             synchronize: bool = True) -> PlanRun:
    """Eagerly dispatch ``graph`` under ``plan``; returns the measurement.

    ``streams[s]`` backs plan slot ``s``; the pool must cover every slot
    the plan uses.
    """
    _require_certified(plan)
    if len(streams) < plan.streams_used():
        raise SchedulingError(
            f"plan uses {plan.streams_used()} stream slots but only "
            f"{len(streams)} streams were provided")
    dependents = graph.dependents()
    events: dict[int, Event] = {}
    records = waits = 0
    start = gpu.host_time
    overhead_start = gpu.launch_overhead_total
    with span("interop.dispatch", cat="interop", policy=plan.policy,
              nodes=len(plan.order)) as h:
        for nid in plan.order:
            node = graph._nodes[nid]
            slot = plan.assignment[nid]
            stream = streams[slot]
            for d in node.deps:
                if plan.assignment[d] != slot:
                    gpu.wait_event(events[d], stream=stream)
                    waits += 1
            gpu.launch(node.spec, stream=stream)
            if any(plan.assignment[c] != slot for c in dependents[nid]):
                ev = Event(f"{graph.name}/{plan.policy}/n{nid}")
                gpu.record_event(ev, stream=stream)
                events[nid] = ev
                records += 1
        if synchronize:
            gpu.synchronize()
        elapsed = gpu.host_time - start
        h.set(elapsed_us=elapsed)
    counter_inc("interop.eager_runs")
    return PlanRun(
        policy=plan.policy, mode="eager", elapsed_us=elapsed,
        launches=len(plan.order), records=records, waits=waits,
        launch_overhead_us=gpu.launch_overhead_total - overhead_start,
    )


def run_program(gpu: GPU, graph: KernelGraph, plan: StreamPlan,
                program, streams: Sequence[Stream]) -> PlanRun:
    """Eagerly dispatch an explicit :class:`DispatchProgram` lowering.

    This is how a *minimized* plan executes: where :func:`run_plan`
    re-derives the event structure from the graph's dependency edges,
    this path replays exactly the ops the program contains — elided
    waits and orphaned records simply never reach the engine.  Launch
    ops resolve their kernel spec through the ``chain`` id they were
    lowered with; program stream ``s`` (>= 1) maps to ``streams[s-1]``.
    """
    from repro.analyze.program import (Launch, RecordEvent, SyncAll,
                                       WaitEvent)
    _require_certified(plan)
    events: dict[int, Event] = {}
    records = waits = launches = 0
    synced = False
    start = gpu.host_time
    overhead_start = gpu.launch_overhead_total
    with span("interop.dispatch_min", cat="interop", policy=plan.policy,
              ops=len(program)) as h:
        for op in program:
            synced = False
            if isinstance(op, Launch):
                gpu.launch(graph._nodes[op.chain].spec,
                           stream=streams[op.stream - 1])
                launches += 1
            elif isinstance(op, RecordEvent):
                ev = events.setdefault(
                    op.event,
                    Event(f"{graph.name}/{plan.policy}/min/e{op.event}"))
                gpu.record_event(ev, stream=streams[op.stream - 1])
                records += 1
            elif isinstance(op, WaitEvent):
                gpu.wait_event(events[op.event],
                               stream=streams[op.stream - 1])
                waits += 1
            elif isinstance(op, SyncAll):
                gpu.synchronize()
                synced = True
        if not synced:
            gpu.synchronize()
        elapsed = gpu.host_time - start
        h.set(elapsed_us=elapsed)
    counter_inc("interop.minimized_runs")
    return PlanRun(
        policy=plan.policy, mode="eager-min", elapsed_us=elapsed,
        launches=launches, records=records, waits=waits,
        launch_overhead_us=gpu.launch_overhead_total - overhead_start,
    )


def compile_program(graph: KernelGraph, plan: StreamPlan, program,
                    device: str = "", network: str = "",
                    effects: Optional[Effects] = None) -> CompiledGraph:
    """Lower an explicit program (e.g. a minimized one) to a PR-7 graph.

    Mirrors :func:`compile_plan` but takes the op sequence as given
    instead of re-deriving events from the dependency edges, so the
    compiled artifact of a minimized plan is exactly the minimized
    program — admission re-signs what will actually replay.
    """
    from repro.analyze.program import (Launch, RecordEvent, SyncAll,
                                       WaitEvent)
    _require_certified(plan)
    effects = effects or structural_effects(graph)
    nodes: list[GraphNode] = []
    for op in program:
        if isinstance(op, Launch):
            spec = graph._nodes[op.chain].spec
            reads, writes = effects[op.chain]
            nodes.append(GraphNode(
                kind="launch", stream=op.stream,
                kernel=spec.name or f"n{op.chain}",
                grid=tuple(spec.launch.grid),
                block=tuple(spec.launch.block),
                shared_mem_static=spec.launch.shared_mem_static,
                shared_mem_dynamic=spec.launch.shared_mem_dynamic,
                registers_per_thread=spec.launch.registers_per_thread,
                flops_per_thread=spec.flops_per_thread,
                bytes_per_thread=spec.bytes_per_thread,
                tag=spec.tag, duration_us=spec.duration_us,
                reads=tuple(sorted(reads)), writes=tuple(sorted(writes)),
                layer=graph.name, chain=op.chain,
            ))
        elif isinstance(op, RecordEvent):
            nodes.append(GraphNode(kind="record", stream=op.stream,
                                   event=op.event))
        elif isinstance(op, WaitEvent):
            nodes.append(GraphNode(kind="wait", stream=op.stream,
                                   event=op.event))
        elif isinstance(op, SyncAll):
            nodes.append(GraphNode(kind="barrier"))
    return CompiledGraph(
        name=f"interop.{graph.name}.{plan.policy}.min",
        network=network or graph.name, device=device,
        pool_size=plan.num_streams, nodes=nodes,
    )


def replay_program(gpu: GPU, graph: KernelGraph, plan: StreamPlan,
                   program, effects: Optional[Effects] = None) -> PlanRun:
    """Replay an explicit (minimized) program as a single graph launch."""
    _require_certified(plan)
    compiled = compile_program(graph, plan, program, effects=effects,
                               device=gpu.props.name)
    admit(compiled)
    exec_ = instantiate(compiled, gpu)
    overhead_start = gpu.launch_overhead_total
    with span("interop.replay_min", cat="interop", policy=plan.policy,
              launches=exec_.graph.launches) as h:
        elapsed = exec_.run()
        h.set(elapsed_us=elapsed)
    counter_inc("interop.minimized_replays")
    records = sum(1 for n in exec_.graph.nodes if n.kind == "record")
    waits = sum(1 for n in exec_.graph.nodes if n.kind == "wait")
    return PlanRun(
        policy=plan.policy, mode="graph-min", elapsed_us=elapsed,
        launches=exec_.graph.launches, records=records, waits=waits,
        launch_overhead_us=gpu.launch_overhead_total - overhead_start,
    )


def compile_plan(graph: KernelGraph, plan: StreamPlan,
                 effects: Optional[Effects] = None,
                 device: str = "", network: str = "") -> CompiledGraph:
    """Lower a certified plan straight into a PR-7 compiled graph.

    The node stream numbering matches the plan's program lowering (slot
    ``s`` → dense stream ``s + 1``; 0 is never used, so the replay never
    pays default-stream barrier semantics), and each launch node carries
    the same structural effects certification checked — graph admission
    re-validates exactly what was certified.
    """
    _require_certified(plan)
    effects = effects or structural_effects(graph)
    dependents = graph.dependents()
    nodes: list[GraphNode] = []
    recorded: set[int] = set()
    for nid in plan.order:
        node = graph._nodes[nid]
        slot = plan.assignment[nid]
        for d in node.deps:
            if plan.assignment[d] != slot and d in recorded:
                nodes.append(GraphNode(kind="wait", stream=slot + 1,
                                       event=d))
        spec = node.spec
        reads, writes = effects[nid]
        nodes.append(GraphNode(
            kind="launch", stream=slot + 1,
            kernel=spec.name or f"n{nid}",
            grid=tuple(spec.launch.grid), block=tuple(spec.launch.block),
            shared_mem_static=spec.launch.shared_mem_static,
            shared_mem_dynamic=spec.launch.shared_mem_dynamic,
            registers_per_thread=spec.launch.registers_per_thread,
            flops_per_thread=spec.flops_per_thread,
            bytes_per_thread=spec.bytes_per_thread,
            tag=spec.tag, duration_us=spec.duration_us,
            reads=tuple(sorted(reads)), writes=tuple(sorted(writes)),
            layer=graph.name, chain=nid,
        ))
        if any(plan.assignment[c] != slot for c in dependents[nid]):
            nodes.append(GraphNode(kind="record", stream=slot + 1,
                                   event=nid))
            recorded.add(nid)
    nodes.append(GraphNode(kind="barrier"))
    return CompiledGraph(
        name=f"interop.{graph.name}.{plan.policy}",
        network=network or graph.name, device=device,
        pool_size=plan.num_streams, nodes=nodes,
    )


def replay_plan(gpu: GPU, graph: KernelGraph, plan: StreamPlan,
                effects: Optional[Effects] = None,
                exec_: Optional[GraphExec] = None) -> PlanRun:
    """Replay a certified plan as a single graph launch.

    Compiles the plan (unless a pre-instantiated ``exec_`` is supplied),
    passes it through PR-7 graph admission — a second, independent
    signature on the same effects — and runs it for one amortized host
    launch.
    """
    _require_certified(plan)
    if exec_ is None:
        compiled = compile_plan(graph, plan, effects=effects,
                                device=gpu.props.name)
        admit(compiled)
        exec_ = instantiate(compiled, gpu)
    overhead_start = gpu.launch_overhead_total
    with span("interop.replay", cat="interop", policy=plan.policy,
              launches=exec_.graph.launches) as h:
        elapsed = exec_.run()
        h.set(elapsed_us=elapsed)
    counter_inc("interop.graph_replays")
    records = sum(1 for n in exec_.graph.nodes if n.kind == "record")
    waits = sum(1 for n in exec_.graph.nodes if n.kind == "wait")
    return PlanRun(
        policy=plan.policy, mode="graph", elapsed_us=elapsed,
        launches=exec_.graph.launches, records=records, waits=waits,
        launch_overhead_us=gpu.launch_overhead_total - overhead_start,
    )
