"""Inter-operator stream planning: Opara mode for branchy graphs.

GLP4NN's own parallelism is *intra*-operator — per-sample kernel chains
of one layer spread over a model-sized stream pool.  This package adds
the complementary *inter*-operator axis for branchy inference graphs
(ROADMAP item 4, after Opara in PAPERS.md): independent operators of a
:class:`~repro.runtime.graph.KernelGraph` are assigned to streams so
that resource-complementary work overlaps, with as little cross-stream
event synchronization as the dependencies allow — and no plan executes
until the PR-5 race detector has certified its lowering hazard-free.

The pipeline, module by module:

* :mod:`repro.interop.resources` — closed-form per-kernel estimates
  (duration, device fill, compute/memory/latency boundedness) from the
  cost model and occupancy calculator;
* :mod:`repro.interop.planner` — the four policies (layer-serial,
  round-robin, chain-affine, opara) producing
  :class:`~repro.interop.planner.StreamPlan` values;
* :mod:`repro.interop.certify` — lowering to the
  :class:`~repro.analyze.program.DispatchProgram` hazard IR and the
  certification fallback ladder (requested → chain-affine →
  layer-serial);
* :mod:`repro.interop.execute` — eager dispatch of certified plans, and
  composition with PR-7 graph launch (compile → admit → replay);
* :mod:`repro.interop.workloads` — the GoogLeNet inception units the
  benchmark and CLI exercise;
* :mod:`repro.interop.report` — the ``python -m repro interop`` driver.
"""

from repro.interop.certify import (
    Certification,
    certify,
    plan_program,
    structural_effects,
)
from repro.interop.execute import (
    PlanRun,
    compile_plan,
    replay_plan,
    run_plan,
)
from repro.interop.planner import (
    PLAN_POLICIES,
    StreamPlan,
    build_plan,
    plan_chain_affine,
    plan_layer_serial,
    plan_opara,
    plan_round_robin,
)
from repro.interop.report import (
    INTEROP_ACTIONS,
    InteropReport,
    run_interop_session,
)
from repro.interop.resources import (
    KernelEstimate,
    complementarity,
    estimate,
    estimate_graph,
    suggest_pool_size,
)
from repro.interop.workloads import (
    INCEPTION_UNITS,
    Workload,
    inception_unit,
    single_branch,
)

__all__ = [
    "Certification",
    "certify",
    "plan_program",
    "structural_effects",
    "PlanRun",
    "compile_plan",
    "replay_plan",
    "run_plan",
    "PLAN_POLICIES",
    "StreamPlan",
    "build_plan",
    "plan_chain_affine",
    "plan_layer_serial",
    "plan_opara",
    "plan_round_robin",
    "INTEROP_ACTIONS",
    "InteropReport",
    "run_interop_session",
    "KernelEstimate",
    "complementarity",
    "estimate",
    "estimate_graph",
    "suggest_pool_size",
    "INCEPTION_UNITS",
    "Workload",
    "inception_unit",
    "single_branch",
]
