"""Inter-operator stream planning (Opara mode, ROADMAP item 4).

GLP4NN parallelizes *within* a layer across batch samples; branchy
inference graphs — GoogLeNet's inception modules above all — leave a
complementary win on the table: independent *operators* can run
concurrently on separate streams.  Opara (PAPERS.md) shows how: assign
operators to streams so that resource-complementary work overlaps, and
order launches so synchronization stays off the critical path.  This
module produces such assignments as explicit, inspectable
:class:`StreamPlan` values over the existing
:class:`~repro.runtime.graph.KernelGraph`.

Four policies, from baseline to full Opara mode:

* ``layer-serial`` — every node on one stream in insertion order: the
  no-overlap floor (what a barrier-per-layer dispatcher degenerates to).
* ``round-robin`` — node *i* on stream ``i % S``: maximum naive spread,
  paying a cross-stream event edge for almost every dependency and a
  stream switch for almost every launch.
* ``chain-affine`` — the PR-heritage heuristic of
  :meth:`KernelGraph.assign_streams`: pipelines inherit their
  predecessor's stream, only branch/join edges cross streams.  Kept as
  the certified fallback target (see :mod:`repro.interop.certify`).
* ``opara`` — resource-aware list scheduling: the graph is collapsed
  into maximal linear *segments* (zero intra-segment synchronization by
  construction), segments are scheduled longest-critical-path-first onto
  the stream that minimizes projected finish time plus synchronization
  cost minus a resource-complementarity bonus
  (:func:`repro.interop.resources.complementarity`), and the launch
  order is segment-contiguous so consecutive launches stay on one
  stream (no per-launch work-queue switch).

Every plan is just data — policy, stream count, a node→slot assignment
and a topological launch order — so certification
(:mod:`repro.interop.certify`) and execution
(:mod:`repro.interop.execute`) treat all policies identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulingError
from repro.gpusim.device import DeviceProperties
from repro.interop.resources import (
    KernelEstimate,
    complementarity,
    dominant_bound,
    estimate_graph,
)
from repro.runtime.graph import KernelGraph

#: Planning policies, in baseline → Opara order (CLI/bench sweep order).
PLAN_POLICIES = ("layer-serial", "round-robin", "chain-affine", "opara")

#: Host cost modelled per cross-stream dependency edge (an event record
#: plus a wait, matching the engine's 0.2 µs each).
SYNC_COST_US = 0.4


@dataclass
class StreamPlan:
    """A stream assignment plus launch order for one kernel graph.

    ``assignment`` maps node id → 0-based stream *slot* (execution binds
    slots to concrete pool streams); ``order`` is the host launch order,
    always a topological order of the graph.  ``makespan_us`` is the
    planner's projected finish time under its estimates — a ranking
    signal, not a simulation result.
    """

    policy: str
    graph_name: str
    num_streams: int
    assignment: dict[int, int]
    order: tuple[int, ...]
    makespan_us: float = 0.0
    certified: bool = False
    fallback_from: str = ""       # policy that was rejected, if any
    hazards: int = 0              # hazards found on the rejected lowering

    def streams_used(self) -> int:
        return len(set(self.assignment.values()))

    def cross_edges(self, graph: KernelGraph) -> int:
        """Dependency edges that cross streams (each costs a sync pair)."""
        return sum(
            1
            for node in graph.nodes
            for d in node.deps
            if self.assignment[d] != self.assignment[node.node_id]
        )

    def switches(self) -> int:
        """Launch-order stream switches (each costs ``stream_switch_us``)."""
        slots = [self.assignment[i] for i in self.order]
        return sum(1 for a, b in zip(slots, slots[1:]) if a != b)

    def to_dict(self, graph: Optional[KernelGraph] = None) -> dict:
        d = {
            "policy": self.policy,
            "graph": self.graph_name,
            "num_streams": self.num_streams,
            "streams_used": self.streams_used(),
            "nodes": len(self.assignment),
            "switches": self.switches(),
            "makespan_us": round(self.makespan_us, 3),
            "certified": self.certified,
            "fallback_from": self.fallback_from,
            "hazards": self.hazards,
        }
        if graph is not None:
            d["cross_edges"] = self.cross_edges(graph)
        return d


def _validate(graph: KernelGraph, num_streams: int) -> None:
    if num_streams < 1:
        raise SchedulingError("interop planner needs at least one stream")
    if not len(graph):
        raise SchedulingError(f"graph {graph.name!r} has no nodes")


def plan_layer_serial(graph: KernelGraph, num_streams: int = 1
                      ) -> StreamPlan:
    """Everything on one stream, insertion order: the serial floor."""
    _validate(graph, num_streams)
    order = tuple(n.node_id for n in graph.nodes)
    return StreamPlan(
        policy="layer-serial", graph_name=graph.name, num_streams=1,
        assignment={i: 0 for i in order}, order=order,
    )


def plan_round_robin(graph: KernelGraph, num_streams: int) -> StreamPlan:
    """Node ``i`` on stream ``i % S``: naive maximal spread."""
    _validate(graph, num_streams)
    order = tuple(n.node_id for n in graph.nodes)
    assignment = {i: idx % num_streams for idx, i in enumerate(order)}
    return StreamPlan(
        policy="round-robin", graph_name=graph.name,
        num_streams=num_streams, assignment=assignment, order=order,
    )


def plan_chain_affine(graph: KernelGraph, num_streams: int) -> StreamPlan:
    """The DAG dispatcher's own heuristic, reified as a plan."""
    _validate(graph, num_streams)
    return StreamPlan(
        policy="chain-affine", graph_name=graph.name,
        num_streams=num_streams,
        assignment=graph.assign_streams(num_streams),
        order=tuple(n.node_id for n in graph.nodes),
    )


# ----------------------------------------------------------------------
# Opara-mode planning
# ----------------------------------------------------------------------

@dataclass
class _Segment:
    """A maximal linear run of nodes: one stream's worth, zero syncs."""

    index: int
    nodes: list[int] = field(default_factory=list)
    deps: set[int] = field(default_factory=set)        # segment indices
    dependents: set[int] = field(default_factory=set)  # segment indices
    duration_us: float = 0.0
    fill: float = 0.0
    bound: str = "compute"


def segments_of(graph: KernelGraph,
                estimates: dict[int, KernelEstimate]) -> list[_Segment]:
    """Collapse the graph into maximal linear segments.

    A node with exactly one dependency, whose dependency has exactly one
    dependent, extends its predecessor's segment; everything else starts
    a new one.  Segments inherit the summed duration, the peak device
    fill and the time-dominant boundedness of their kernels.
    """
    dependents = graph.dependents()
    seg_of: dict[int, int] = {}
    segments: list[_Segment] = []
    for node in graph.nodes:
        nid = node.node_id
        if (len(node.deps) == 1
                and len(dependents[node.deps[0]]) == 1):
            seg = segments[seg_of[node.deps[0]]]
            seg.nodes.append(nid)
        else:
            seg = _Segment(index=len(segments), nodes=[nid])
            segments.append(seg)
        seg_of[nid] = seg.index
    for seg in segments:
        ests = [estimates[i] for i in seg.nodes]
        seg.duration_us = sum(e.duration_us for e in ests)
        seg.fill = max(e.fill for e in ests)
        seg.bound = dominant_bound(ests)
        for nid in seg.nodes:
            for d in graph._nodes[nid].deps:
                if seg_of[d] != seg.index:
                    seg.deps.add(seg_of[d])
                    segments[seg_of[d]].dependents.add(seg.index)
    return segments


def _upward_rank(segments: list[_Segment]) -> dict[int, float]:
    """Critical-path-to-sink length per segment (HEFT's upward rank)."""
    rank: dict[int, float] = {}
    for seg in reversed(segments):      # reverse topological order
        below = max((rank[d] for d in seg.dependents), default=0.0)
        rank[seg.index] = seg.duration_us + below
    return rank


def plan_opara(graph: KernelGraph, num_streams: int,
               device: DeviceProperties,
               estimates: Optional[dict[int, KernelEstimate]] = None
               ) -> StreamPlan:
    """Resource-aware list scheduling of segments onto stream slots.

    Ready segments are taken longest-critical-path-first; each is placed
    on the slot minimizing projected finish time, plus ``SYNC_COST_US``
    per dependency edge that would cross streams, minus a bonus when the
    work concurrently resident on *other* slots is resource-complementary
    (compute-bound overlapping memory- or latency-bound work).  Ties
    break toward the lowest slot, keeping the plan deterministic.
    """
    _validate(graph, num_streams)
    estimates = estimates or estimate_graph(graph, device)
    segments = segments_of(graph, estimates)
    rank = _upward_rank(segments)

    free = [0.0] * num_streams                 # slot → time it frees up
    busy: list[Optional[_Segment]] = [None] * num_streams
    busy_until = [0.0] * num_streams
    seg_slot: dict[int, int] = {}
    seg_finish: dict[int, float] = {}
    scheduled: list[_Segment] = []
    remaining_deps = {s.index: len(s.deps) for s in segments}
    ready = [s for s in segments if not s.deps]

    while ready:
        # Longest critical path first; segment index breaks ties.
        ready.sort(key=lambda s: (-rank[s.index], s.index))
        seg = ready.pop(0)
        ready_at = max((seg_finish[d] for d in seg.deps), default=0.0)
        best_slot, best_cost = 0, float("inf")
        for slot in range(num_streams):
            start = max(ready_at, free[slot])
            cost = start + seg.duration_us
            cost += SYNC_COST_US * sum(
                1 for d in seg.deps if seg_slot[d] != slot)
            for other in range(num_streams):
                peer = busy[other]
                if other == slot or peer is None:
                    continue
                if busy_until[other] > start:   # genuinely concurrent
                    a = KernelEstimate(  # segment-level pseudo estimate
                        name="", duration_us=seg.duration_us,
                        fill=seg.fill, occupancy=1.0, intensity=0.0,
                        bound=seg.bound)
                    b = KernelEstimate(
                        name="", duration_us=peer.duration_us,
                        fill=peer.fill, occupancy=1.0, intensity=0.0,
                        bound=peer.bound)
                    cost -= SYNC_COST_US * complementarity(a, b)
            if cost < best_cost - 1e-12:
                best_slot, best_cost = slot, cost
        start = max(ready_at, free[best_slot])
        finish = start + seg.duration_us
        free[best_slot] = finish
        busy[best_slot] = seg
        busy_until[best_slot] = finish
        seg_slot[seg.index] = best_slot
        seg_finish[seg.index] = finish
        scheduled.append(seg)
        for d in sorted(seg.dependents):
            remaining_deps[d] -= 1
            if remaining_deps[d] == 0:
                ready.append(segments[d])

    if len(scheduled) != len(segments):  # pragma: no cover - defensive
        raise SchedulingError(
            f"graph {graph.name!r}: segment scheduling stalled "
            f"({len(scheduled)}/{len(segments)} placed)")

    assignment: dict[int, int] = {}
    order: list[int] = []
    for seg in scheduled:
        for nid in seg.nodes:
            assignment[nid] = seg_slot[seg.index]
            order.append(nid)
    return StreamPlan(
        policy="opara", graph_name=graph.name, num_streams=num_streams,
        assignment=assignment, order=tuple(order),
        makespan_us=max(seg_finish.values()),
    )


def build_plan(graph: KernelGraph, policy: str, num_streams: int,
               device: Optional[DeviceProperties] = None,
               estimates: Optional[dict[int, KernelEstimate]] = None
               ) -> StreamPlan:
    """Build one (uncertified) plan under ``policy``."""
    if policy == "layer-serial":
        return plan_layer_serial(graph)
    if policy == "round-robin":
        return plan_round_robin(graph, num_streams)
    if policy == "chain-affine":
        return plan_chain_affine(graph, num_streams)
    if policy == "opara":
        if device is None:
            raise SchedulingError(
                "opara planning needs device properties for its "
                "resource estimates")
        return plan_opara(graph, num_streams, device, estimates=estimates)
    raise SchedulingError(
        f"unknown planning policy {policy!r}; expected one of "
        f"{', '.join(PLAN_POLICIES)}")
