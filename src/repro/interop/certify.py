"""Hazard certification of stream plans (no plan executes unsigned).

An inter-operator plan moves kernels onto streams the chain-affine
dispatcher never used, so the convergence-invariance guarantee rests
entirely on the plan's event structure.  This module closes that loop
with the PR-5 machinery, exactly as graph admission
(:mod:`repro.graphs.admission`) does for captured graphs: every
:class:`~repro.interop.planner.StreamPlan` lowers to a
:class:`repro.analyze.program.DispatchProgram` and the stream-hazard
race detector (:func:`repro.analyze.hazards.detect`) must certify that
every conflicting kernel pair is ordered by happens-before — under all
interleavings the engine could produce, not just the one the planner
imagined.

Rejection is not fatal: :func:`certify` walks a fallback ladder.  The
requested policy is lowered and checked first; if the detector finds
hazards the plan is discarded and the chain-affine baseline is certified
instead; should *that* somehow fail, layer-serial closes the ladder —
a single stream ending in a ``synchronize`` is a total order and always
certifies.  The plan that comes back therefore always carries
``certified=True``, with ``fallback_from``/``hazards`` recording what
was rejected on the way.

Memory effects are structural, as in
:func:`repro.analyze.plans.program_from_graph`: node ``i`` writes
``n{i}`` and reads its dependencies' regions.  Nodes named in
``in_place`` (Concat/Eltwise joins that write into a shared output the
branches also populate) additionally *write* their dependencies'
regions, which is what makes an unsynchronized join a WAR/WAW hazard
rather than a silent corruption.

``drop_waits`` poisons the requested policy's lowering by omitting its
cross-stream ``wait`` ops — the same mutation axis as the PR-5
sync-deletion mutants — so tests and the CLI's ``--inject-hazard`` flag
can prove the fallback path is live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analyze.capacity import CapacityFinding, check_capacity
from repro.analyze.deadlock import DeadlockVerdict, deadlock_verdict_for
from repro.analyze.elide import ElisionResult, certified_minimize
from repro.analyze.hazards import ProgramVerdict, verdict_for
from repro.analyze.program import DispatchProgram
from repro.errors import AnalyzeError
from repro.interop.planner import StreamPlan, build_plan
from repro.runtime.graph import KernelGraph

#: Effects: node id -> (reads, writes) region sets.
Effects = dict[int, tuple[frozenset, frozenset]]


def structural_effects(graph: KernelGraph,
                       in_place: Iterable[int] = ()) -> Effects:
    """Memory effects the DAG itself encodes, node by node.

    Node ``i`` writes ``n{i}`` and reads ``n{d}`` for each dependency
    ``d``.  An ``in_place`` node also writes its dependencies' regions —
    the model of a Concat/Eltwise join assembling its output inside the
    branch buffers.
    """
    in_place = set(in_place)
    effects: Effects = {}
    for node in graph.nodes:
        reads = frozenset(f"n{d}" for d in node.deps)
        writes = {f"n{node.node_id}"}
        if node.node_id in in_place:
            writes.update(reads)
        effects[node.node_id] = (reads, frozenset(writes))
    return effects


def plan_program(graph: KernelGraph, plan: StreamPlan,
                 effects: Optional[Effects] = None,
                 drop_waits: bool = False) -> DispatchProgram:
    """Lower ``plan`` to the PR-5 hazard IR.

    Generalizes :func:`repro.analyze.plans.program_from_graph` to an
    explicit assignment and launch order: plan slot ``s`` becomes program
    stream ``s + 1`` (0 stays the legacy default stream), cross-stream
    dependency edges become event record/wait pairs, and the program ends
    in the ``synchronize`` the caller issues anyway.  ``drop_waits``
    omits the wait ops — a poisoned lowering for fallback testing.
    """
    effects = effects or structural_effects(graph)
    dependents = graph.dependents()
    prog = DispatchProgram(f"interop:{graph.name}/{plan.policy}")
    recorded: set[int] = set()
    for nid in plan.order:
        node = graph._nodes[nid]
        slot = plan.assignment[nid]
        if not drop_waits:
            for d in node.deps:
                if plan.assignment[d] != slot and d in recorded:
                    prog.wait(event=d, stream=slot + 1)
        reads, writes = effects[nid]
        prog.launch(node.spec.name or f"n{nid}", stream=slot + 1,
                    reads=reads, writes=writes,
                    layer=graph.name, chain=nid)
        if any(plan.assignment[c] != slot for c in dependents[nid]):
            prog.record(event=nid, stream=slot + 1)
            recorded.add(nid)
    prog.sync(label=graph.name)
    return prog


@dataclass
class Certification:
    """Outcome of the certification ladder for one requested plan."""

    plan: StreamPlan                   # the certified plan (always ok)
    program: DispatchProgram           # its certified lowering
    verdicts: list[ProgramVerdict] = field(default_factory=list)
    deadlocks: list[DeadlockVerdict] = field(default_factory=list)
    elision: Optional[ElisionResult] = None
    capacity: list[CapacityFinding] = field(default_factory=list)

    @property
    def fell_back(self) -> bool:
        return bool(self.plan.fallback_from)

    @property
    def minimized(self) -> DispatchProgram:
        """The elided lowering (the original when elision is off/failed)."""
        return self.elision.minimized if self.elision else self.program

    @property
    def waits_removed(self) -> int:
        return self.elision.waits_removed if self.elision else 0

    def to_dict(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "attempts": [v.to_dict() for v in self.verdicts],
            "deadlocks": [v.to_dict() for v in self.deadlocks],
            "elision": self.elision.to_dict() if self.elision else None,
            "capacity": [f.to_dict() for f in self.capacity],
        }


def certify(graph: KernelGraph, plan: StreamPlan,
            effects: Optional[Effects] = None,
            drop_waits: bool = False,
            device=None,
            minimize: bool = True,
            estimates=None) -> Certification:
    """Certify ``plan``, falling back down the ladder on rejection.

    The ladder is requested policy → chain-affine → layer-serial; the
    ``drop_waits`` poison applies only to the requested policy's
    lowering, so a poisoned opara plan honestly falls back to a *clean*
    chain-affine lowering.  ``device`` is only needed if the requested
    policy is ``opara`` and the plan must be rebuilt (it never is — the
    plan is passed in — but fallback plans are built here).

    Each candidate must pass **both** PR-5 race detection and the
    strict-semantics deadlock check (:mod:`repro.analyze.deadlock`)
    before it certifies.  The winning lowering then runs through
    certified sync-elision (``minimize``, on by default) — the
    transitive-reduction pass whose certificate guarantees an identical
    launch closure — and, when per-kernel ``estimates``
    (:func:`repro.interop.resources.estimate_graph`) are supplied,
    through the static over-subscription check, whose warnings land in
    ``Certification.capacity`` without blocking the plan.
    """
    effects = effects or structural_effects(graph)
    verdicts: list[ProgramVerdict] = []
    deadlocks: list[DeadlockVerdict] = []
    candidates: list[tuple[StreamPlan, bool]] = [(plan, drop_waits)]
    for policy in ("chain-affine", "layer-serial"):
        if policy != plan.policy:
            candidates.append(
                (build_plan(graph, policy, plan.num_streams, device=device),
                 False))
    rejected_policy = ""
    rejected_hazards = 0
    for cand, poisoned in candidates:
        prog = plan_program(graph, cand, effects, drop_waits=poisoned)
        verdict = verdict_for(prog, network=graph.name, plan=cand.policy)
        verdicts.append(verdict)
        dl = deadlock_verdict_for(prog, network=graph.name,
                                  plan=cand.policy)
        deadlocks.append(dl)
        if verdict.ok and dl.ok:
            cand.certified = True
            cand.fallback_from = rejected_policy
            cand.hazards = rejected_hazards
            elision: Optional[ElisionResult] = None
            if minimize:
                try:
                    elision = certified_minimize(prog)
                except AnalyzeError:
                    elision = None   # optimization only, never a gate
            fills = ({nid: e.fill for nid, e in estimates.items()}
                     if estimates else None)
            capacity = check_capacity(prog, fills=fills, device=device)
            return Certification(plan=cand, program=prog,
                                 verdicts=verdicts, deadlocks=deadlocks,
                                 elision=elision, capacity=capacity)
        if not rejected_policy:
            rejected_policy = cand.policy
            rejected_hazards = len(verdict.hazards) + len(dl.findings)
    # Unreachable in practice: layer-serial is a total order.
    raise AssertionError(
        f"graph {graph.name!r}: even the layer-serial plan failed "
        "certification — the effects model is inconsistent")
