"""Branchy benchmark workloads for the inter-operator planner.

GoogLeNet's inception modules are the motivating shape for inter-op
parallelism — four independent branches (1x1; 1x1 reduce → 3x3; 1x1
reduce → 5x5; pool projection) over one input map, joined by a channel
concat — and the paper's own Table 5 gives the exact geometries.  This
module builds them as :class:`~repro.runtime.graph.KernelGraph` values:
per-sample branch pipelines via the real conv lowering
(:func:`repro.runtime.lowering.lower_conv_forward`), joined per sample
by a small memory-bound concat kernel that assembles the branch outputs
*in place* — the in-place effect is what makes an unsynchronized join a
certifiable hazard rather than a silent reordering
(:func:`repro.interop.certify.structural_effects`).

Units ``5a`` and ``5b`` are the two inception modules on the final
832-channel 7x7 map; both mix a device-saturating compute-bound 3x3
body with skinny latency/memory-bound 1x1 reductions, which is exactly
the resource-complementary mix Opara-style planning exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.nn.config import ConvConfig
from repro.runtime.graph import KernelGraph
from repro.runtime.lowering import lower_conv_forward

#: Inception units on the 7x7x832 map (paper Table 5 geometry), keyed by
#: branch: each value is the branch's conv pipeline in order.
INCEPTION_UNITS = {
    "5a": {
        "1x1": ((832, 256, 1, 0),),
        "3x3": ((832, 160, 1, 0), (160, 320, 3, 1)),
        "5x5": ((832, 32, 1, 0), (32, 128, 5, 2)),
        "pool_proj": ((832, 128, 1, 0),),
    },
    "5b": {
        "1x1": ((832, 384, 1, 0),),
        "3x3": ((832, 192, 1, 0), (192, 384, 3, 1)),
        "5x5": ((832, 48, 1, 0), (48, 128, 5, 2)),
        "pool_proj": ((832, 128, 1, 0),),
    },
}

#: Input spatial size of both units (7x7 map).
_HW = 7


@dataclass
class Workload:
    """A planner workload: the graph plus its in-place join nodes."""

    graph: KernelGraph
    in_place: set[int] = field(default_factory=set)
    unit: str = ""
    batch: int = 0


def concat_spec(unit: str, sample: int, channels: int,
                hw: int = _HW) -> KernelSpec:
    """The per-sample channel-concat join: a thin memory-bound kernel.

    One thread per output element, one flop (index arithmetic is free in
    the roofline model), a read plus a write per element — squarely
    memory-bound and far below device fill, the cheap join the planner
    should never give its own stream's worth of synchronization.
    """
    threads = channels * hw * hw
    block = 256
    grid = (threads + block - 1) // block
    return KernelSpec(
        name=f"concat_{unit}",
        launch=LaunchConfig(grid=(grid, 1, 1), block=(block, 1, 1)),
        flops_per_thread=1.0, bytes_per_thread=8.0,
        tag=f"inception{unit}/s{sample}",
    )


def _branch_configs(unit: str, batch: int) -> dict[str, list[ConvConfig]]:
    if unit not in INCEPTION_UNITS:
        raise SchedulingError(
            f"unknown inception unit {unit!r}; expected one of "
            f"{', '.join(sorted(INCEPTION_UNITS))}")
    out: dict[str, list[ConvConfig]] = {}
    for branch, convs in INCEPTION_UNITS[unit].items():
        out[branch] = [
            ConvConfig(f"inception{unit}/{branch}/c{i}", batch, ci, _HW,
                       co, f, 1, p, "GoogLeNet")
            for i, (ci, co, f, p) in enumerate(convs)
        ]
    return out


def inception_unit(unit: str = "5b", batch: int = 4) -> Workload:
    """Build one inception unit as a per-sample branch DAG with a join.

    Every sample contributes one pipeline per branch (independent across
    branches *and* samples) plus a concat node depending on the four
    branch tails; the concat is marked in-place.
    """
    configs = _branch_configs(unit, batch)
    lowered = {branch: [lower_conv_forward(cfg) for cfg in cfgs]
               for branch, cfgs in configs.items()}
    g = KernelGraph(f"inception{unit}")
    in_place: set[int] = set()
    out_channels = sum(cfgs[-1].co for cfgs in configs.values())
    for n in range(batch):
        tails: list[int] = []
        for branch in configs:
            prev: list[int] = []
            for work in lowered[branch]:
                chain = work.parallel_chains[n]
                ids = g.add_chain(list(chain), deps=prev)
                prev = [ids[-1]]
            tails.extend(prev)
        join = g.add(concat_spec(unit, n, out_channels), deps=tails)
        in_place.add(join)
    return Workload(graph=g, in_place=in_place, unit=unit, batch=batch)


def single_branch(batch: int = 4) -> Workload:
    """A single inception branch (3x3 pipeline): one chain per sample.

    The degenerate planner input — per-sample linear pipelines with no
    join — used by the edge-case tests: every policy's plan must be
    hazard-free and opara must not scatter a pipeline across streams.
    """
    g = KernelGraph("inception5b-3x3")
    prev_tails: list[list[int]] = []
    for cfg in _branch_configs("5b", batch)["3x3"]:
        work = lower_conv_forward(cfg)
        # chain sample n of this conv after sample n of the previous conv
        new_tails: list[list[int]] = []
        for n in range(batch):
            deps = prev_tails[n] if prev_tails else []
            ids = g.add_chain(list(work.parallel_chains[n]), deps=deps)
            new_tails.append([ids[-1]])
        prev_tails = new_tails
    return Workload(graph=g, unit="5b", batch=batch)
