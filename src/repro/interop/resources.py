"""Per-kernel resource estimates feeding the inter-operator planner.

The Opara-style planner (:mod:`repro.interop.planner`) needs to know, for
every node of a :class:`~repro.runtime.graph.KernelGraph`, roughly how
long the kernel runs, how much of the device it fills, and *what it is
bounded by* — because the whole point of resource-aware stream assignment
(Opara's second stage, and the concurrency characterization of Gilman &
Walls in PAPERS.md) is that overlap only pays when the co-scheduled
kernels stress *different* resources: a compute-bound SGEMM overlaps
profitably with a memory-bound ``im2col`` or an occupancy-limited 1x1
reduce, while two device-saturating convolutions merely time-share the
SMs.

All estimates come from the machinery the kernel analyzer already uses —
the roofline cost model (:mod:`repro.kernels.costmodel`), the occupancy
calculator (:mod:`repro.gpusim.occupancy`) and the device's throughput
figures — so the planner, the analytical model and the simulator share
one source of truth.  Nothing here runs a profiling pass: estimates are
closed-form, exactly like the analyzer's "static input" ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.analytical_model import AnalyticalModel
from repro.core.resource_tracker import KernelProfile
from repro.gpusim.device import DeviceProperties
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.occupancy import max_active_blocks_per_sm, occupancy
from repro.kernels.costmodel import kernel_solo_time_us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.graph import KernelGraph

#: Resource classes a kernel can be limited by.
BOUND_KINDS = ("compute", "memory", "latency")

#: Occupancy ratio below which a kernel is considered latency-bound
#: (too few resident warps to hide pipeline latency, whatever its
#: arithmetic intensity says).
LATENCY_OCCUPANCY = 0.25


@dataclass(frozen=True)
class KernelEstimate:
    """Static resource estimate of one kernel, the planner's node weight.

    Attributes
    ----------
    name:
        Kernel symbol name (provenance only).
    duration_us:
        Closed-form solo duration from the roofline cost model.
    fill:
        Fraction of the device the kernel occupies running alone — its
        grid's blocks over the whole-device residency capacity, capped at
        1.  Two kernels whose fills sum well above 1 cannot truly overlap.
    occupancy:
        Achieved per-SM occupancy ratio (active warps over the maximum).
    intensity:
        Arithmetic intensity, flops per DRAM byte.
    bound:
        ``"compute"``, ``"memory"`` or ``"latency"`` — which resource
        limits the kernel, per the device's roofline ridge point.
    """

    name: str
    duration_us: float
    fill: float
    occupancy: float
    intensity: float
    bound: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "duration_us": round(self.duration_us, 3),
            "fill": round(self.fill, 4),
            "occupancy": round(self.occupancy, 4),
            "intensity": round(self.intensity, 3),
            "bound": self.bound,
        }


def estimate(spec: KernelSpec, device: DeviceProperties) -> KernelEstimate:
    """Estimate one kernel's resource profile on ``device``."""
    launch = spec.launch
    fit = max(1, max_active_blocks_per_sm(device, launch).blocks_per_sm)
    capacity = fit * device.sm_count
    fill = min(1.0, launch.num_blocks / capacity)
    occ = occupancy(device, launch)
    if spec.bytes_per_thread > 0:
        intensity = spec.flops_per_thread / spec.bytes_per_thread
    else:
        intensity = math.inf
    # The device's ridge point in flops/byte: more intense kernels are
    # compute-bound, less intense ones memory-bound (the same comparison
    # the engine's roofline block-work function makes).
    ridge = device.sm_flops_per_us / device.sm_bytes_per_us
    if occ < LATENCY_OCCUPANCY:
        bound = "latency"
    elif intensity >= ridge:
        bound = "compute"
    else:
        bound = "memory"
    return KernelEstimate(
        name=spec.name,
        duration_us=kernel_solo_time_us(spec, device),
        fill=fill,
        occupancy=occ,
        intensity=intensity,
        bound=bound,
    )


def estimate_graph(graph: "KernelGraph", device: DeviceProperties
                   ) -> dict[int, KernelEstimate]:
    """Per-node estimates for a whole kernel graph."""
    return {n.node_id: estimate(n.spec, device) for n in graph.nodes}


def complementarity(a: KernelEstimate, b: KernelEstimate) -> float:
    """How profitably two kernels overlap, in ``[0, 1]``.

    The Gilman & Walls heuristic: overlap is worth the synchronization it
    costs when the kernels stress different resources *and* together fit
    on the device.  Same-resource pairs that individually saturate the
    device score zero — co-scheduling them is pure time-sharing.
    """
    fits = a.fill + b.fill <= 1.2     # small tolerance: waves interleave
    if a.bound != b.bound:
        return 1.0 if fits else 0.5
    return 0.3 if fits else 0.0


def suggest_pool_size(graph: "KernelGraph", device: DeviceProperties,
                      cap: int = 8) -> int:
    """Stream-pool size for ``graph`` from the existing kernel analyzer.

    Synthesizes :class:`KernelProfile` records from the graph's unique
    kernel signatures — durations from the cost model instead of a
    profiling pass — and solves the paper's Eq. 1-9 analytical model,
    exactly as the runtime's kernel analyzer would after profiling.  The
    resulting ``C_out`` is clamped to ``[1, cap]`` (the planner does not
    benefit from more streams than independent branches anyway).
    """
    merged: dict[tuple, list[KernelSpec]] = {}
    for node in graph.nodes:
        merged.setdefault(node.spec.signature, []).append(node.spec)
    profiles = []
    for specs in merged.values():
        spec = specs[0]
        profiles.append(KernelProfile(
            name=spec.name, grid=spec.launch.grid, block=spec.launch.block,
            registers_per_thread=spec.launch.registers_per_thread,
            shared_mem_per_block=spec.launch.shared_mem_per_block,
            duration_us=kernel_solo_time_us(spec, device),
            instances=len(specs),
        ))
    decision = AnalyticalModel(device).solve(f"interop/{graph.name}",
                                             profiles)
    return max(1, min(cap, decision.c_out))


def dominant_bound(estimates: Sequence[KernelEstimate]) -> str:
    """The boundedness that dominates a set of kernels, by time."""
    weight = {kind: 0.0 for kind in BOUND_KINDS}
    for est in estimates:
        weight[est.bound] += est.duration_us
    return max(BOUND_KINDS, key=lambda k: weight[k])
