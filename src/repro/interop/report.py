"""The ``python -m repro interop`` session: plan, certify, execute, report.

One driver (:func:`run_interop_session`) covers all three CLI actions:

* ``plan`` — build plans for the requested policies, certify each
  through the fallback ladder, and report the static picture (stream
  usage, cross-stream edges, launch-order switches, certification
  verdicts);
* ``run`` — additionally execute every certified plan, eagerly *and* as
  a single PR-7 graph launch, on a fresh simulated device per policy;
* ``report`` — everything ``run`` does plus the per-graph resource
  summary (how much of the work is compute/memory/latency-bound) that
  explains *why* the planner chose what it chose.

The report follows the repo-wide protocol (``render`` / ``to_dict`` /
``to_json`` / ``save``) so the CLI's ``--format json|text`` and
``--report`` plumbing come from :mod:`repro.reporting` unchanged.

With ``inject_hazard=True`` the requested policies' lowerings are
poisoned (cross-stream waits dropped; see
:func:`repro.interop.certify.plan_program`), so the race detector must
reject them and certification must fall back — the report is then OK
*iff* every poisoned multi-stream plan actually fell back, mirroring the
``graph --inject-hazard`` probe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.gpusim.engine import GPU
from repro.interop.certify import certify, structural_effects
from repro.interop.execute import (PlanRun, replay_plan, replay_program,
                                   run_plan, run_program)
from repro.interop.planner import PLAN_POLICIES, StreamPlan, build_plan
from repro.interop.resources import estimate_graph, suggest_pool_size
from repro.interop.workloads import INCEPTION_UNITS, Workload, inception_unit
from repro.serve.engine import resolve_device

#: CLI actions, in increasing depth.
INTEROP_ACTIONS = ("plan", "run", "report")


@dataclass
class PolicyOutcome:
    """One requested policy: its certified plan and measurements."""

    requested: str
    plan: StreamPlan
    cross_edges: int = 0
    attempts: list[dict] = field(default_factory=list)
    eager: Optional[PlanRun] = None
    graph: Optional[PlanRun] = None
    waits_removed: int = 0
    records_removed: int = 0
    capacity: list[dict] = field(default_factory=list)
    eager_min: Optional[PlanRun] = None
    graph_min: Optional[PlanRun] = None

    @property
    def fell_back(self) -> bool:
        return bool(self.plan.fallback_from)

    def to_dict(self) -> dict:
        d = self.plan.to_dict()
        d["requested"] = self.requested
        d["cross_edges"] = self.cross_edges
        d["attempts"] = self.attempts
        d["eager"] = self.eager.to_dict() if self.eager else None
        d["graph_launch"] = self.graph.to_dict() if self.graph else None
        d["waits_removed"] = self.waits_removed
        d["records_removed"] = self.records_removed
        d["capacity"] = self.capacity
        d["eager_minimized"] = (self.eager_min.to_dict()
                                if self.eager_min else None)
        d["graph_minimized"] = (self.graph_min.to_dict()
                                if self.graph_min else None)
        return d


@dataclass
class InteropReport:
    """Outcome of one ``repro interop`` session."""

    action: str
    unit: str
    batch: int
    device: str
    num_streams: int
    suggested_streams: int
    inject_hazard: bool = False
    nodes: int = 0
    bound_mix: dict = field(default_factory=dict)
    entries: list[PolicyOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every executed plan certified; poisoned plans must fall back."""
        if not all(e.plan.certified for e in self.entries):
            return False
        if self.inject_hazard:
            poisoned = [e for e in self.entries if e.cross_edges > 0]
            return bool(poisoned) and all(e.fell_back for e in poisoned)
        return not any(e.fell_back for e in self.entries)

    def _baseline_us(self) -> Optional[float]:
        for e in self.entries:
            if e.requested == "layer-serial" and e.eager:
                return e.eager.elapsed_us
        return None

    def render(self) -> str:
        lines = [
            f"interop {self.action}: inception-{self.unit} x{self.batch} "
            f"on {self.device} ({self.nodes} kernels, "
            f"{self.num_streams} streams"
            + (f", analyzer suggests {self.suggested_streams}"
               if self.suggested_streams != self.num_streams else "")
            + (", HAZARD INJECTED" if self.inject_hazard else "") + ")",
        ]
        if self.bound_mix:
            mix = ", ".join(f"{k} {v:.0%}"
                            for k, v in self.bound_mix.items() if v)
            lines.append(f"  resource mix (by time): {mix}")
        base = self._baseline_us()
        header = (f"  {'policy':14s} {'streams':>7s} {'x-edges':>7s} "
                  f"{'switches':>8s} {'certified':>9s}")
        if any(e.eager for e in self.entries):
            header += f" {'eager µs':>10s} {'graph µs':>10s} {'speedup':>7s}"
        lines.append(header)
        for e in self.entries:
            cert = ("fallback->" + e.plan.policy if e.fell_back
                    else ("yes" if e.plan.certified else "NO"))
            row = (f"  {e.requested:14s} {e.plan.streams_used():>7d} "
                   f"{e.cross_edges:>7d} {e.plan.switches():>8d} "
                   f"{cert:>9s}")
            if e.eager:
                graph_us = (f"{e.graph.elapsed_us:>10.1f}" if e.graph
                            else f"{'-':>10s}")
                row += f" {e.eager.elapsed_us:>10.1f} {graph_us}"
                if base and e.eager.elapsed_us:
                    row += f" {base / e.eager.elapsed_us:>6.2f}x"
                else:
                    row += f" {'-':>7s}"
            lines.append(row)
            if e.waits_removed:
                note = (f"    elision: {e.waits_removed} wait(s) + "
                        f"{e.records_removed} record(s) removed")
                if e.eager_min and e.eager:
                    note += (f"; minimized eager "
                             f"{e.eager_min.elapsed_us:.1f}µs "
                             f"(vs {e.eager.elapsed_us:.1f}µs)")
                lines.append(note)
            for c in e.capacity:
                lines.append(f"    capacity: {c.get('message', '')}")
        lines.append(f"  verdict: {'OK' if self.ok else 'NOT OK'}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "action": self.action,
            "unit": self.unit,
            "batch": self.batch,
            "device": self.device,
            "num_streams": self.num_streams,
            "suggested_streams": self.suggested_streams,
            "inject_hazard": self.inject_hazard,
            "nodes": self.nodes,
            "bound_mix": self.bound_mix,
            "ok": self.ok,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")


def _bound_mix(estimates) -> dict:
    total = sum(e.duration_us for e in estimates.values()) or 1.0
    mix = {}
    for kind in ("compute", "memory", "latency"):
        t = sum(e.duration_us for e in estimates.values()
                if e.bound == kind)
        mix[kind] = round(t / total, 4)
    return mix


def run_interop_session(action: str = "report",
                        unit: str = "5b",
                        batch: int = 4,
                        device: str = "p100",
                        streams: int = 0,
                        policy: str = "all",
                        inject_hazard: bool = False,
                        workload: Optional[Workload] = None
                        ) -> InteropReport:
    """Plan (and under ``run``/``report``, execute) one inception unit.

    ``streams=0`` sizes the pool with the kernel analyzer
    (:func:`repro.interop.resources.suggest_pool_size`); ``workload``
    overrides the built-in inception units (the tests' hook).
    """
    if action not in INTEROP_ACTIONS:
        raise ReproError(
            f"unknown interop action {action!r}; expected one of "
            f"{', '.join(INTEROP_ACTIONS)}")
    if workload is None:
        if unit not in INCEPTION_UNITS:
            raise ReproError(
                f"unknown inception unit {unit!r}; expected one of "
                f"{', '.join(sorted(INCEPTION_UNITS))}")
        workload = inception_unit(unit, batch)
    graph = workload.graph
    props = resolve_device(device)
    policies = (list(PLAN_POLICIES) if policy == "all" else [policy])
    for p in policies:
        if p not in PLAN_POLICIES:
            raise ReproError(
                f"unknown policy {p!r}; expected one of "
                f"{', '.join(PLAN_POLICIES)} or 'all'")

    estimates = estimate_graph(graph, props)
    suggested = suggest_pool_size(graph, props)
    num_streams = streams if streams > 0 else suggested
    effects = structural_effects(graph, in_place=workload.in_place)

    report = InteropReport(
        action=action, unit=workload.unit or unit, batch=workload.batch,
        device=props.name, num_streams=num_streams,
        suggested_streams=suggested, inject_hazard=inject_hazard,
        nodes=len(graph), bound_mix=_bound_mix(estimates),
    )
    for p in policies:
        requested = build_plan(graph, p, num_streams, device=props,
                               estimates=estimates)
        cert = certify(graph, requested, effects=effects,
                       drop_waits=inject_hazard, device=props,
                       estimates=estimates)
        outcome = PolicyOutcome(
            requested=p, plan=cert.plan,
            cross_edges=requested.cross_edges(graph),
            attempts=[v.to_dict() for v in cert.verdicts],
            waits_removed=cert.waits_removed,
            records_removed=(cert.elision.records_removed
                             if cert.elision else 0),
            capacity=[f.to_dict() for f in cert.capacity],
        )
        if action in ("run", "report"):
            gpu = GPU(props)
            pool = [gpu.create_stream(name=f"interop.{p}.s{i}")
                    for i in range(num_streams)]
            outcome.eager = run_plan(gpu, graph, cert.plan, pool)
            outcome.graph = replay_plan(GPU(props), graph, cert.plan,
                                        effects=effects)
            if cert.elision and cert.waits_removed:
                gpu_min = GPU(props)
                pool_min = [
                    gpu_min.create_stream(name=f"interop.{p}.min.s{i}")
                    for i in range(num_streams)]
                outcome.eager_min = run_program(
                    gpu_min, graph, cert.plan, cert.minimized, pool_min)
                outcome.graph_min = replay_program(
                    GPU(props), graph, cert.plan, cert.minimized,
                    effects=effects)
        report.entries.append(outcome)
    return report
