"""Front-end request routing across fleet replicas.

Two policies, both SLO-aware through the replicas' online EWMA
service-time estimates:

``least-loaded``
    Rank every routable replica by projected wait (remaining busy time
    plus queued work times the replica's own service estimate) and pick
    the minimum; ties break on queue depth, then replica index, so the
    choice is deterministic.
``p2c``
    Power-of-two-choices: sample two distinct routable replicas from a
    seeded generator and keep the less loaded.  The classic result —
    near-least-loaded balance at O(1) inspection cost — carries over to
    the simulated fleet, and the seeded RNG keeps runs replayable.

The router only ever sees *routable* replicas: alive (heartbeat belief)
and with a breaker that :meth:`~repro.fleet.health.CircuitBreaker.allows`
traffic now.  When that set is empty the fleet fails fast at arrival
instead of queueing unservable work.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.fleet.replica import Replica

ROUTER_POLICIES = ("least-loaded", "p2c")


class Router:
    """Pick a replica for each dispatch (see module docstring)."""

    def __init__(self, policy: str = "least-loaded", seed: int = 0) -> None:
        if policy not in ROUTER_POLICIES:
            raise ReproError(
                f"unknown router policy {policy!r}; expected one of "
                f"{ROUTER_POLICIES}")
        self.policy = policy
        self.dispatches = 0
        self._rng = random.Random((seed << 8) ^ 0x2C2C)

    # ------------------------------------------------------------------
    @staticmethod
    def _score(replica: Replica, now: float) -> tuple:
        return (replica.projected_wait_us(now), replica.depth(),
                replica.index)

    def pick(self, candidates: Sequence[Replica], now: float,
             exclude: Sequence[int] = ()) -> Optional[Replica]:
        """Choose a routable replica, or ``None`` when none exists.

        ``exclude`` lists replica indices the caller must avoid (the
        replica a hedge's primary copy sits on, or the one that just
        failed a copy being failed over); it is ignored if honoring it
        would leave no choice at all — a lone healthy replica is still
        better than dropping the request.
        """
        pool = [r for r in candidates if r.index not in exclude]
        if not pool:
            pool = list(candidates)
        if not pool:
            return None
        self.dispatches += 1
        if self.policy == "p2c" and len(pool) > 1:
            pair = self._rng.sample(range(len(pool)), 2)
            pool = [pool[i] for i in sorted(pair)]
        return min(pool, key=lambda r: self._score(r, now))
