"""The fleet engine: N replicas, one router, one discrete-event loop.

:class:`FleetEngine` composes the serving stack (PR 2) with the fault
subsystem (PR 1) into a fault-tolerant multi-replica serving fleet:

* **Routing** — every arrival is dispatched by the front-end
  :class:`~repro.fleet.router.Router` (least-loaded or power-of-two
  choices, SLO-aware via per-replica EWMA estimates) over a simulated
  front-end link (:class:`~repro.comm.interconnect.Interconnect`).
* **Health** — per-replica :class:`~repro.fleet.health.CircuitBreaker`
  driven by consecutive ``DegradedError`` batch failures and batch
  timeouts, plus heartbeat liveness that polls the ``replica_crash``
  fault site at a fixed simulated interval.
* **Failover** — a copy lost to a crash, a failed batch, a dropped link
  send or queue overflow is re-dispatched (bounded by
  ``failover_budget``) to another routable replica; when none exists the
  request fails loudly.
* **Hedging** — optionally, a request still unfinished ``hedge_after_us``
  after dispatch gets a duplicate on a second replica; the first
  completion wins and the loser is *suppressed*, so the request still
  reaches exactly one terminal outcome.
* **Drain / rejoin** — a breaker that opens drains its queue into
  failover; a crashed replica restarts after ``restart_after_us``, and
  rejoins through half-open probing once its heartbeats look healthy.

Everything runs on one trace-relative simulated clock.  Events at equal
timestamps resolve by a fixed priority (completions, recoveries,
heartbeats, link deliveries, hedge timers, arrivals) and then by issue
order, so a hedge-vs-primary race at identical timestamps has a
deterministic winner and the whole run is bit-reproducible per seed —
the safety invariant :mod:`repro.verify.fleet_chaos` certifies.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.comm.interconnect import Interconnect, PCIE3
from repro.errors import DegradedError, FaultInjected, ReproError
from repro.faults.hooks import active_injector, fault_poll
from repro.fleet.health import BreakerState, CircuitBreaker, HealthMonitor
from repro.fleet.replica import Replica, RequestCopy
from repro.fleet.report import (
    FleetReport,
    FleetSweepReport,
    FleetSweepRow,
    ReplicaStats,
)
from repro.fleet.router import Router
from repro.obs.metrics import counter_inc, gauge_set, observe
from repro.obs.spans import instant, span
from repro.serve.engine import resolve_device, resolve_net
from repro.serve.queue import OverflowPolicy, QueueOrder
from repro.serve.request import ArrivalTrace, InferenceRequest
from repro.serve.slo import Outcome, SLOTracker

_EPS = 1e-9

#: Event priorities at equal simulated timestamps (lower runs first).
_P_COMPLETE = 0
_P_RECOVER = 1
_P_HEARTBEAT = 2
_P_DELIVER = 3
_P_HEDGE = 4
_P_ARRIVAL = 5


@dataclass
class _Ledger:
    """Fleet-wide bookkeeping for one logical request.

    ``live`` maps outstanding copy ids to the replica index holding them
    (or ``-1`` while a copy is in flight on the front-end link).  The
    chaos harness reads these fields to certify the safety invariant:
    ``terminal`` set exactly once, ``executions``/``suppressed``
    reconciling every hedged duplicate.
    """

    request: InferenceRequest
    live: dict[int, int] = field(default_factory=dict)
    terminal: Optional[Outcome] = None
    executions: int = 0
    suppressed: int = 0
    failovers: int = 0
    hedged: bool = False


class FleetEngine:
    """Serve one arrival trace through a fault-tolerant replica fleet."""

    def __init__(
        self,
        replicas: Sequence[Replica],
        router: Router,
        *,
        net_name: str = "",
        executor_kind: str = "",
        heartbeat_us: float = 1_000.0,
        restart_after_us: float = 5_000.0,
        failover_budget: int = 2,
        hedge_after_us: Optional[float] = None,
        batch_timeout_us: Optional[float] = None,
        failure_threshold: int = 2,
        timeout_threshold: int = 3,
        cooldown_us: float = 2_000.0,
        healthy_after: int = 1,
        link: Interconnect = PCIE3,
        payload_bytes: int = 12_288,
        drop_expired: bool = True,
    ) -> None:
        if not replicas:
            raise ReproError("a fleet needs at least one replica")
        if heartbeat_us <= 0:
            raise ReproError(f"heartbeat must be > 0, got {heartbeat_us}")
        if restart_after_us < 0:
            raise ReproError("restart delay must be >= 0")
        if failover_budget < 0:
            raise ReproError("failover budget must be >= 0")
        if hedge_after_us is not None and hedge_after_us < 0:
            raise ReproError("hedge delay must be >= 0")
        self.replicas = list(replicas)
        self.router = router
        self.net_name = net_name
        self.executor_kind = executor_kind
        self.heartbeat_us = heartbeat_us
        self.restart_after_us = restart_after_us
        self.failover_budget = failover_budget
        self.hedge_after_us = hedge_after_us
        self.batch_timeout_us = batch_timeout_us
        self.link = link
        self.payload_bytes = payload_bytes
        self.drop_expired = drop_expired
        self.breakers = [
            CircuitBreaker(r.name, failure_threshold=failure_threshold,
                           timeout_threshold=timeout_threshold,
                           cooldown_us=cooldown_us)
            for r in self.replicas
        ]
        self.monitors = [HealthMonitor(r.name, healthy_after=healthy_after)
                         for r in self.replicas]
        self.slo = SLOTracker()
        self.ledger: dict[int, _Ledger] = {}
        self.now_us = 0.0
        # resilience counters
        self.failovers = 0
        self.hedges_issued = 0
        self.hedges_won = 0
        self.hedges_suppressed = 0
        self.link_drops = 0
        self.crashes = 0
        self.heartbeats = 0
        self.failfast = 0
        # event machinery
        self._heap: list[tuple] = []
        self._seq = 0
        self._copy_ids = 0
        self._open_requests = 0
        self._deliveries = 0
        self._hedges_pending = 0

    # ------------------------------------------------------------------
    # Event heap helpers
    # ------------------------------------------------------------------
    def _push(self, at_us: float, prio: int, kind: str, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at_us, prio, self._seq, kind, payload))

    def _routable(self, now: float, exclude: Sequence[int] = ()
                  ) -> list[Replica]:
        """Replicas the router may use right now (alive + breaker allows)."""
        return [
            r for i, r in enumerate(self.replicas)
            if i not in exclude
            and self.monitors[i].alive
            and self.breakers[i].allows(now)
        ]

    # ------------------------------------------------------------------
    # The discrete-event loop
    # ------------------------------------------------------------------
    def serve(self, trace: ArrivalTrace) -> FleetReport:
        """Run the whole trace to completion and return the report."""
        for i, replica in enumerate(self.replicas):
            try:
                replica.warm_up()
            except (DegradedError, FaultInjected) as e:
                # A replica that cannot even warm up joins the fleet
                # dead instead of taking the whole run down.
                self.monitors[i].crash(permanent=True)
                self.breakers[i].force_open(0.0, f"warm-up failed: {e}")
                self.crashes += 1
                counter_inc("fleet.crashes")
        pending = deque(trace.requests)
        self._push(self.heartbeat_us, _P_HEARTBEAT, "heartbeat", None)
        now = 0.0
        with span("fleet.serve", cat="fleet", replicas=len(self.replicas),
                  requests=len(trace)):
            while True:
                self._start_ready_batches(now, pending)
                nxt = self._next_event_us(pending)
                if nxt is None:
                    break
                now = self.now_us = max(now, nxt)
                while pending and pending[0].arrival_us <= now + _EPS:
                    request = pending.popleft()
                    self._push(request.arrival_us, _P_ARRIVAL, "arrival",
                               request)
                while self._heap and self._heap[0][0] <= now + _EPS:
                    _, _, _, kind, payload = heapq.heappop(self._heap)
                    self._handle(kind, payload, now, pending)
        self._fail_stragglers(now)
        return self.report(trace)

    def _next_event_us(self, pending) -> Optional[float]:
        times = []
        if pending:
            times.append(pending[0].arrival_us)
        if self._heap:
            times.append(self._heap[0][0])
        for i, replica in enumerate(self.replicas):
            if self.monitors[i].alive and replica.idle and replica.depth():
                fire = replica.fire_time_us()
                if fire is not None:
                    times.append(fire)
        if not times:
            return None
        return min(times)

    def _handle(self, kind: str, payload, now: float, pending) -> None:
        if kind == "complete":
            self._on_complete(payload, now)
        elif kind == "recover":
            self._on_recover(payload, now)
        elif kind == "heartbeat":
            self._on_heartbeat(now, pending)
        elif kind == "deliver":
            self._deliveries -= 1
            self._on_deliver(payload, now)
        elif kind == "hedge":
            self._hedges_pending -= 1
            self._on_hedge_timer(payload, now)
        elif kind == "arrival":
            self._on_arrival(payload, now)
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown fleet event {kind!r}")

    # ------------------------------------------------------------------
    # Arrivals, dispatch and the front-end link
    # ------------------------------------------------------------------
    def _on_arrival(self, request: InferenceRequest, now: float) -> None:
        self.ledger[request.rid] = led = _Ledger(request=request)
        self._open_requests += 1
        if not self._routable(now):
            # Fail fast: no point queueing work nothing can serve.
            self.failfast += 1
            counter_inc("fleet.failfast")
            instant("fleet.failfast", cat="fleet", rid=request.rid)
            self._record_terminal(led, Outcome.SHED_ADMISSION,
                                  detail="fail-fast: no routable replica")
            return
        copy = self._new_copy(request, "primary")
        led.live[copy.copy_id] = -1
        self._dispatch(copy, now, exclude=())
        if self.hedge_after_us is not None and led.terminal is None:
            self._hedges_pending += 1
            self._push(now + self.hedge_after_us, _P_HEDGE, "hedge",
                       request.rid)

    def _new_copy(self, request: InferenceRequest, kind: str) -> RequestCopy:
        self._copy_ids += 1
        return RequestCopy(copy_id=self._copy_ids, rid=request.rid,
                           arrival_us=request.arrival_us,
                           deadline_us=request.deadline_us, kind=kind)

    def _dispatch(self, copy: RequestCopy, now: float,
                  exclude: Sequence[int]) -> None:
        """Route ``copy`` and send it over the front-end link.

        A ``link_drop`` fault loses the send; the front end retries the
        remaining routable replicas in ranking order before giving the
        copy up to the failover path.
        """
        led = self.ledger[copy.rid]
        tried = list(exclude)
        while True:
            replica = self.router.pick(self._routable(now, tried), now,
                                       exclude=tried)
            if replica is None:
                led.live.pop(copy.copy_id, None)
                self._copy_lost(copy, now, "no routable replica",
                                exclude=tried)
                return
            breaker = self.breakers[replica.index]
            if breaker.state is BreakerState.HALF_OPEN:
                breaker.note_probe()
            drop = fault_poll("link_drop", key=f"fe->{replica.name}")
            if drop is not None:
                self.link_drops += 1
                counter_inc("fleet.link_drops")
                instant("fleet.link_drop", cat="fleet", rid=copy.rid,
                        replica=replica.name)
                tried.append(replica.index)
                continue
            led.live[copy.copy_id] = -1
            self._deliveries += 1
            self._push(now + self.link.transfer_time_us(self.payload_bytes),
                       _P_DELIVER, "deliver", (copy, replica.index))
            counter_inc("fleet.dispatches")
            return

    def _on_deliver(self, payload, now: float) -> None:
        copy, ridx = payload
        led = self.ledger[copy.rid]
        if led.terminal is not None:
            led.live.pop(copy.copy_id, None)
            return
        replica = self.replicas[ridx]
        monitor = self.monitors[ridx]
        breaker = self.breakers[ridx]
        if not monitor.alive or breaker.state is BreakerState.OPEN:
            # The replica died (or its breaker opened) while the send was
            # on the wire: treat like a lost copy.
            led.live.pop(copy.copy_id, None)
            self._copy_lost(copy, now, f"{replica.name} unroutable at "
                            "delivery", exclude=(ridx,))
            return
        verdict, evicted = replica.offer(copy, now)
        if verdict == "queued":
            led.live[copy.copy_id] = ridx
            instant("fleet.admit", cat="fleet", rid=copy.rid,
                    replica=replica.name, depth=replica.depth())
        elif verdict == "shed-admission":
            led.live.pop(copy.copy_id, None)
            self._copy_dead(copy, now, Outcome.SHED_ADMISSION,
                            f"{replica.name}: projected finish past "
                            "deadline")
        else:  # shed-queue: the router misjudged; try elsewhere
            led.live.pop(copy.copy_id, None)
            self._copy_lost(copy, now, f"{replica.name} queue full",
                            exclude=(ridx,))
        for victim in evicted:
            vled = self.ledger[victim.rid]
            vled.live.pop(victim.copy_id, None)
            self._copy_lost(victim, now, f"evicted from {replica.name}",
                            exclude=(ridx,))
        gauge_set(f"fleet.{replica.name}.queue.depth", replica.depth())

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------
    def _on_hedge_timer(self, rid: int, now: float) -> None:
        led = self.ledger.get(rid)
        if led is None or led.terminal is not None or led.hedged:
            return
        if not led.live:
            return      # the failover path is already re-dispatching
        holders = set(led.live.values()) - {-1}
        candidates = self._routable(now, exclude=tuple(holders))
        if not candidates:
            return      # nowhere distinct to hedge to; not an error
        led.hedged = True
        self.hedges_issued += 1
        counter_inc("fleet.hedges.issued")
        instant("fleet.hedge", cat="fleet", rid=rid)
        copy = self._new_copy(led.request, "hedge")
        led.live[copy.copy_id] = -1
        self._dispatch(copy, now, exclude=tuple(holders))

    # ------------------------------------------------------------------
    # Batch lifecycle
    # ------------------------------------------------------------------
    def _start_ready_batches(self, now: float, pending) -> None:
        more = bool(pending) or self._deliveries > 0 \
            or self._hedges_pending > 0
        for i, replica in enumerate(self.replicas):
            if not self.monitors[i].alive or not replica.idle:
                continue
            if self.drop_expired:
                for copy in replica.expire_queued(now):
                    led = self.ledger[copy.rid]
                    led.live.pop(copy.copy_id, None)
                    self._copy_dead(copy, now, Outcome.EXPIRED,
                                    f"deadline passed in {replica.name} "
                                    "queue")
            if not replica.depth():
                continue
            if replica.ready(now, more):
                run = replica.run_batch(now)
                for copy in run.copies:
                    self.ledger[copy.rid].live[copy.copy_id] = i
                self._push(run.finish_us, _P_COMPLETE, "complete", i)

    def _on_complete(self, ridx: int, now: float) -> None:
        replica = self.replicas[ridx]
        if replica.inflight is None:
            return          # batch already aborted by a crash
        run = replica.finish_batch()
        breaker = self.breakers[ridx]
        if run.ok:
            timed_out = (self.batch_timeout_us is not None
                         and run.duration_us > self.batch_timeout_us)
            if timed_out:
                replica.timeout_batches += 1
                counter_inc("fleet.batch_timeouts")
                breaker.record_timeout(now)
            else:
                breaker.record_success(now)
            for copy in run.copies:
                self._copy_executed(copy, now, len(run.copies))
        else:
            counter_inc("fleet.failed_batches")
            breaker.record_failure(now, run.failure)
            if breaker.state is BreakerState.OPEN:
                self._drain_open_replica(ridx, now)
            for copy in run.copies:
                led = self.ledger[copy.rid]
                led.live.pop(copy.copy_id, None)
                self._copy_lost(copy, now,
                                f"batch failed on {replica.name}: "
                                f"{run.failure}", exclude=(ridx,))

    def _copy_executed(self, copy: RequestCopy, finish_us: float,
                       batch_size: int) -> None:
        led = self.ledger[copy.rid]
        led.executions += 1
        led.live.pop(copy.copy_id, None)
        if led.terminal is not None:
            # The race's loser: executed, but its result is discarded.
            led.suppressed += 1
            self.hedges_suppressed += 1
            counter_inc("fleet.hedges.suppressed")
            return
        rec = self.slo.complete(led.request, finish_us,
                                batch_size=batch_size)
        led.terminal = rec.outcome
        self._open_requests -= 1
        if copy.kind == "hedge":
            self.hedges_won += 1
            counter_inc("fleet.hedges.won")
        if rec.latency_us is not None:
            observe("fleet.latency_us", rec.latency_us)

    # ------------------------------------------------------------------
    # Failover and terminal accounting
    # ------------------------------------------------------------------
    def _copy_lost(self, copy: RequestCopy, now: float, reason: str,
                   exclude: Sequence[int]) -> None:
        """A copy died without executing; fail over or fail loudly."""
        led = self.ledger[copy.rid]
        if led.terminal is not None or led.live:
            return      # another copy is still in play
        if led.failovers >= self.failover_budget:
            self._record_terminal(
                led, Outcome.FAILED,
                detail=f"failover budget exhausted: {reason}")
            return
        if not self._routable(now, exclude=exclude):
            if not self._routable(now):
                self._record_terminal(
                    led, Outcome.FAILED,
                    detail=f"no routable replica: {reason}")
                return
            # Only the excluded replica(s) are healthy: retrying there is
            # still better than dropping the request.
            exclude = ()
        led.failovers += 1
        self.failovers += 1
        counter_inc("fleet.failovers")
        instant("fleet.failover", cat="fleet", rid=copy.rid, why=reason)
        retry = self._new_copy(led.request, "failover")
        led.live[retry.copy_id] = -1
        self._dispatch(retry, now, exclude=exclude)

    def _copy_dead(self, copy: RequestCopy, now: float, outcome: Outcome,
                   detail: str) -> None:
        """A copy died for a reason failover cannot help with."""
        led = self.ledger[copy.rid]
        if led.terminal is not None or led.live:
            return
        self._record_terminal(led, outcome, detail=detail)

    def _record_terminal(self, led: _Ledger, outcome: Outcome,
                         detail: str) -> None:
        if led.terminal is not None:  # pragma: no cover - invariant guard
            raise ReproError(
                f"request {led.request.rid} reached a second terminal "
                f"outcome {outcome}")
        self.slo.shed(led.request, outcome, detail=detail)
        led.terminal = outcome
        self._open_requests -= 1

    def _fail_stragglers(self, now: float) -> None:
        """Defensive sweep: no admitted request may end up outcome-less."""
        for led in self.ledger.values():
            if led.terminal is None:
                led.live.clear()
                self._record_terminal(led, Outcome.FAILED,
                                      detail="fleet stalled")

    # ------------------------------------------------------------------
    # Health: heartbeats, crashes, drain and rejoin
    # ------------------------------------------------------------------
    def _on_heartbeat(self, now: float, pending) -> None:
        self.heartbeats += 1
        counter_inc("fleet.heartbeats")
        for i, replica in enumerate(self.replicas):
            monitor = self.monitors[i]
            if monitor.permanently_dead or not monitor.alive:
                continue
            spec = fault_poll("replica_crash", key=replica.name)
            if spec is not None:
                self._crash_replica(i, now,
                                    permanent=(spec.effect == "permanent"))
                continue
            healthy = monitor.beat_ok()
            if healthy and monitor.recovering:
                monitor.recovering = False
                self.breakers[i].begin_probe(
                    now, f"{monitor.healthy_after} healthy heartbeat(s) "
                    "after restart")
        if pending or self._open_requests > 0 or self._deliveries > 0:
            self._push(now + self.heartbeat_us, _P_HEARTBEAT, "heartbeat",
                       None)

    def _crash_replica(self, ridx: int, now: float, permanent: bool) -> None:
        replica = self.replicas[ridx]
        monitor = self.monitors[ridx]
        self.crashes += 1
        counter_inc("fleet.crashes")
        instant("fleet.crash", cat="fleet", replica=replica.name,
                permanent=permanent)
        monitor.crash(permanent=permanent)
        self.breakers[ridx].force_open(
            now, "heartbeat missed: replica crashed"
                 + (" (permanent)" if permanent else ""))
        lost = replica.abort_inflight() + replica.drain()
        for copy in lost:
            led = self.ledger[copy.rid]
            led.live.pop(copy.copy_id, None)
        for copy in lost:
            self._copy_lost(copy, now, f"{replica.name} crashed",
                            exclude=(ridx,))
        if not permanent:
            self._push(now + self.restart_after_us, _P_RECOVER, "recover",
                       ridx)

    def _drain_open_replica(self, ridx: int, now: float) -> None:
        """Graceful drain: an opened breaker's queue fails over at once."""
        replica = self.replicas[ridx]
        drained = replica.drain()
        for copy in drained:
            self.ledger[copy.rid].live.pop(copy.copy_id, None)
        for copy in drained:
            self._copy_lost(copy, now, f"{replica.name} circuit opened",
                            exclude=(ridx,))

    def _on_recover(self, ridx: int, now: float) -> None:
        monitor = self.monitors[ridx]
        if monitor.permanently_dead:
            return
        monitor.restart()
        counter_inc("fleet.restarts")
        instant("fleet.restart", cat="fleet",
                replica=self.replicas[ridx].name)

    # ------------------------------------------------------------------
    def report(self, trace: ArrivalTrace) -> FleetReport:
        """Build the run's :class:`~repro.fleet.report.FleetReport`."""
        summary = self.slo.summary()
        injector = active_injector()
        stats = tuple(
            ReplicaStats(
                name=r.name,
                device=r.gpu.props.name,
                served=r.served,
                batches=r.batcher.batches_formed,
                failed_batches=r.failed_batches,
                timeout_batches=r.timeout_batches,
                crashes=self.monitors[i].crashes,
                breaker_transitions=tuple(
                    t.to_dict() for t in self.breakers[i].transitions),
            )
            for i, r in enumerate(self.replicas)
        )
        return FleetReport(
            net=self.net_name or "?",
            executor=self.executor_kind or "?",
            router=self.router.policy,
            replicas=len(self.replicas),
            devices=tuple(r.gpu.props.name for r in self.replicas),
            trace_kind=trace.kind,
            rps=trace.rps,
            duration_us=trace.duration_us,
            slo_us=(trace.requests[0].slo_us if trace.requests else 0.0),
            seed=trace.seed,
            requests=summary["requests"],
            ok=summary["ok"],
            late=summary["late"],
            shed_queue=summary["shed_queue"],
            shed_admission=summary["shed_admission"],
            failed=summary["failed"],
            expired=summary["expired"],
            failfast=self.failfast,
            failovers=self.failovers,
            hedges_issued=self.hedges_issued,
            hedges_won=self.hedges_won,
            hedges_suppressed=self.hedges_suppressed,
            link_drops=self.link_drops,
            crashes=self.crashes,
            heartbeats=self.heartbeats,
            makespan_us=self.now_us,
            latency_mean_us=summary.get("latency_mean_us"),
            latency_p50_us=summary.get("latency_p50_us"),
            latency_p95_us=summary.get("latency_p95_us"),
            latency_p99_us=summary.get("latency_p99_us"),
            latency_max_us=summary.get("latency_max_us"),
            replica_stats=stats,
            fault_summary=(dict(sorted(injector.summary().items()))
                           if injector is not None else {}),
            extra={
                "dispatches": self.router.dispatches,
                "suppressed_executions": sum(
                    led.suppressed for led in self.ledger.values()),
            },
        )


# ----------------------------------------------------------------------
# Convenience constructors (CLI / benchmarks / verify harness)
# ----------------------------------------------------------------------
def build_fleet(
    net: str,
    devices: Sequence[str],
    executor_kind: str,
    n_replicas: int,
    *,
    router_policy: str = "least-loaded",
    seed: int = 0,
    max_batch: int = 8,
    max_wait_us: float = 200.0,
    queue_capacity: int = 64,
    overflow: OverflowPolicy = OverflowPolicy.REJECT_NEWEST,
    order: QueueOrder = QueueOrder.FIFO,
    slo_admission: bool = True,
    ewma_alpha: float = 0.3,
    **engine_kwargs,
) -> FleetEngine:
    """Build an N-replica fleet over a (cycled) heterogeneous device list."""
    if n_replicas < 1:
        raise ReproError(f"fleet size must be >= 1, got {n_replicas}")
    if not devices:
        raise ReproError("fleet needs at least one device name")
    builder = resolve_net(net)
    props = [resolve_device(d) for d in devices]
    replicas = [
        Replica(i, props[i % len(props)], executor_kind, builder,
                max_batch=max_batch, max_wait_us=max_wait_us,
                queue_capacity=queue_capacity, overflow=overflow,
                order=order, slo_admission=slo_admission, seed=seed,
                ewma_alpha=ewma_alpha)
        for i in range(n_replicas)
    ]
    router = Router(router_policy, seed=seed)
    return FleetEngine(replicas, router, net_name=net.lower(),
                       executor_kind=executor_kind, **engine_kwargs)


def serve_fleet(
    net: str,
    devices: Sequence[str],
    executor_kind: str,
    n_replicas: int,
    trace: ArrivalTrace,
    **kwargs,
) -> FleetReport:
    """One-call fleet run: fresh replicas, one trace, one report."""
    engine = build_fleet(net, devices, executor_kind, n_replicas, **kwargs)
    return engine.serve(trace)


def fleet_sweep(
    net: str,
    devices: Sequence[str],
    executor_kind: str,
    replica_counts: Sequence[int],
    trace: ArrivalTrace,
    *,
    chaos: bool = True,
    chaos_plan=None,
    **kwargs,
) -> FleetSweepReport:
    """The target artifact: fleet-wide p99 vs. replica count.

    Serves the same trace at each replica count, clean and (unless
    ``chaos=False``) under a fault plan — ``chaos_plan`` if given, else
    :func:`~repro.fleet.chaos.default_chaos_plan` for that fleet size.
    """
    from repro.faults import chaos_session
    from repro.fleet.chaos import default_chaos_plan

    rows = []
    for n in replica_counts:
        clean = serve_fleet(net, devices, executor_kind, n, trace, **kwargs)
        chaos_rep = None
        if chaos:
            plan = (chaos_plan if chaos_plan is not None
                    else default_chaos_plan(n, seed=trace.seed))
            with chaos_session(plan):
                chaos_rep = serve_fleet(net, devices, executor_kind, n,
                                        trace, **kwargs)
        rows.append(FleetSweepRow(replicas=n, clean=clean, chaos=chaos_rep))
    return FleetSweepReport(rows=tuple(rows))
