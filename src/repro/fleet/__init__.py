"""Fault-tolerant multi-replica serving fleet.

``repro.fleet`` scales the single serving engine (:mod:`repro.serve`)
out to N simulated replicas behind a front-end router, with the
fault-tolerance layer as the headline:

* :mod:`repro.fleet.replica` — one replica: its own catalog device,
  executor and serving state (queue, batcher, shape cache, EWMA).
* :mod:`repro.fleet.router` — least-loaded and power-of-two-choices
  routing, SLO-aware via the replicas' service estimates.
* :mod:`repro.fleet.health` — per-replica circuit breakers and
  heartbeat liveness monitoring.
* :mod:`repro.fleet.engine` — the discrete-event loop tying it
  together: dispatch over a simulated link, retry-with-failover, hedged
  requests with exactly-once duplicate suppression, graceful
  drain/rejoin.
* :mod:`repro.fleet.chaos` — canned fault plans (crash, slow replica,
  link drops) for the ``replica_crash`` / ``replica_slow`` /
  ``link_drop`` sites.
* :mod:`repro.fleet.report` — per-run and p99-vs-replica-count sweep
  reports.

The safety contract — every admitted request reaches exactly one
terminal outcome, is never executed twice for accounting, and the whole
run is bit-deterministic per seed — is certified by
:mod:`repro.verify.fleet_chaos`.
"""

from repro.fleet.chaos import default_chaos_plan
from repro.fleet.engine import (
    FleetEngine,
    build_fleet,
    fleet_sweep,
    serve_fleet,
)
from repro.fleet.health import (
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
    HealthMonitor,
)
from repro.fleet.replica import BatchRun, Replica, RequestCopy
from repro.fleet.report import (
    FleetReport,
    FleetSweepReport,
    FleetSweepRow,
    ReplicaStats,
)
from repro.fleet.router import ROUTER_POLICIES, Router

__all__ = [
    "BatchRun",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "FleetEngine",
    "FleetReport",
    "FleetSweepReport",
    "FleetSweepRow",
    "HealthMonitor",
    "ROUTER_POLICIES",
    "Replica",
    "ReplicaStats",
    "RequestCopy",
    "Router",
    "build_fleet",
    "default_chaos_plan",
    "fleet_sweep",
    "serve_fleet",
]
