"""Canned chaos plans for fleet runs.

:func:`default_chaos_plan` builds the fleet's standard adversarial
weather: one mid-run replica crash with restart (only when the fleet has
a spare — a one-replica fleet is never fully killed), a degraded (slow)
replica, and a burst of front-end link drops.  The plan is pure data
(:class:`~repro.faults.plan.FaultPlan`), so the CLI, the chaos harness
and CI all replay the identical fault sequence from the seed.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.faults.plan import FaultPlan, FaultSpec


def default_chaos_plan(n_replicas: int, seed: int = 0) -> FaultPlan:
    """The standard fleet chaos weather for an ``n_replicas`` fleet.

    * ``replica_crash`` on the last replica at its 3rd heartbeat, with
      restart — only when ``n_replicas >= 2``, so at most ``N - 1``
      replicas are ever down at once;
    * ``replica_slow`` (mild) on replica ``r0`` every 4th batch;
    * ``link_drop`` on the front-end link to ``r0``, two drops starting
      at the 5th send.
    """
    if n_replicas < 1:
        raise ReproError(f"fleet size must be >= 1, got {n_replicas}")
    specs = [
        FaultSpec(site="replica_slow", key="r0", every=4, effect="mild",
                  max_fires=4),
        FaultSpec(site="link_drop", key="fe->r0", nth=5, max_fires=1),
        FaultSpec(site="link_drop", key="fe->r0", nth=9, max_fires=1),
    ]
    if n_replicas >= 2:
        specs.insert(0, FaultSpec(
            site="replica_crash", key=f"r{n_replicas - 1}", nth=3,
            effect="restart", max_fires=1))
    return FaultPlan(specs=tuple(specs), seed=seed,
                     name=f"fleet-default-x{n_replicas}")
