"""Fleet reports: one run's metrics, and the p99-vs-replica-count sweep.

Same contract as :class:`repro.serve.report.ServingReport`: pure data
derived from the simulated run, so two runs with the same seed render
byte-identical text and JSON — the fleet chaos harness asserts exactly
that (see :mod:`repro.verify.fleet_chaos`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.bench.reporting import format_table


@dataclass(frozen=True)
class ReplicaStats:
    """Per-replica accounting of one fleet run."""

    name: str
    device: str
    served: int
    batches: int
    failed_batches: int
    timeout_batches: int
    crashes: int
    breaker_transitions: tuple[dict, ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name, "device": self.device, "served": self.served,
            "batches": self.batches, "failed_batches": self.failed_batches,
            "timeout_batches": self.timeout_batches, "crashes": self.crashes,
            "breaker_transitions": list(self.breaker_transitions),
        }


@dataclass(frozen=True)
class FleetReport:
    """Metrics of one fleet run (N replicas, one router, one trace)."""

    net: str
    executor: str
    router: str
    replicas: int
    devices: tuple[str, ...]
    trace_kind: str
    rps: float
    duration_us: float
    slo_us: float
    seed: int
    # terminal outcome counters (exactly one per issued request)
    requests: int
    ok: int
    late: int
    shed_queue: int
    shed_admission: int
    failed: int
    expired: int
    failfast: int            # rejected on arrival: no routable replica
    # fault-tolerance machinery
    failovers: int
    hedges_issued: int
    hedges_won: int
    hedges_suppressed: int
    link_drops: int
    crashes: int
    heartbeats: int
    # timing (simulated µs)
    makespan_us: float
    latency_mean_us: Optional[float] = None
    latency_p50_us: Optional[float] = None
    latency_p95_us: Optional[float] = None
    latency_p99_us: Optional[float] = None
    latency_max_us: Optional[float] = None
    replica_stats: tuple[ReplicaStats, ...] = ()
    fault_summary: dict[str, int] = field(default_factory=dict)
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def goodput(self) -> float:
        """Fraction of all issued requests that met their deadline."""
        if not self.requests:
            return 0.0
        return self.ok / self.requests

    @property
    def completed(self) -> int:
        return self.ok + self.late

    @property
    def throughput_rps(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.completed / (self.makespan_us * 1e-6)

    @property
    def breaker_transitions(self) -> int:
        return sum(len(s.breaker_transitions) for s in self.replica_stats)

    # ------------------------------------------------------------------
    def _lat(self, value: Optional[float]) -> str:
        return "-" if value is None else f"{value / 1e3:.3f}"

    def render(self) -> str:
        """Multi-line plain-text summary of this fleet run."""
        lines = [
            f"[fleet] {self.net} x{self.replicas} replica(s) "
            f"({', '.join(self.devices)}) — {self.executor} executor, "
            f"{self.router} router",
            f"  trace: {self.trace_kind}, {self.rps:.0f} rps offered over "
            f"{self.duration_us / 1e3:.1f} ms (seed {self.seed}), "
            f"SLO {self.slo_us / 1e3:.3f} ms",
            f"  requests: {self.requests} issued, {self.ok} on time, "
            f"{self.late} late, {self.shed_queue + self.shed_admission} "
            f"shed, {self.expired} expired, {self.failed} failed, "
            f"{self.failfast} fail-fast",
            f"  goodput: {self.goodput * 100:.1f}%   throughput: "
            f"{self.throughput_rps:.0f} rps over "
            f"{self.makespan_us / 1e3:.1f} ms served",
            f"  resilience: {self.failovers} failover(s), "
            f"{self.crashes} crash(es), {self.link_drops} link drop(s), "
            f"{self.breaker_transitions} breaker transition(s), "
            f"{self.heartbeats} heartbeat(s)",
            f"  hedging: {self.hedges_issued} issued, {self.hedges_won} "
            f"won, {self.hedges_suppressed} suppressed duplicate(s)",
            f"  latency ms: mean {self._lat(self.latency_mean_us)}, "
            f"p50 {self._lat(self.latency_p50_us)}, "
            f"p95 {self._lat(self.latency_p95_us)}, "
            f"p99 {self._lat(self.latency_p99_us)}, "
            f"max {self._lat(self.latency_max_us)}",
        ]
        for s in self.replica_stats:
            line = (f"    {s.name} ({s.device}): {s.served} served in "
                    f"{s.batches} batch(es), {s.failed_batches} failed, "
                    f"{s.timeout_batches} timed out, {s.crashes} crash(es)")
            for t in s.breaker_transitions:
                line += (f"\n      breaker {t['from']} -> {t['to']} at "
                         f"{t['at_us'] / 1e3:.3f} ms: {t['reason']}")
            lines.append(line)
        if self.fault_summary:
            fired = ", ".join(f"{k}={v}"
                              for k, v in sorted(self.fault_summary.items()))
            lines.append(f"  chaos: {fired}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        doc = {k: v for k, v in self.__dict__.items()
               if k not in ("replica_stats", "extra", "devices")}
        doc["devices"] = list(self.devices)
        doc["goodput"] = self.goodput
        doc["throughput_rps"] = self.throughput_rps
        doc["replica_stats"] = [s.to_dict() for s in self.replica_stats]
        doc["extra"] = {k: v for k, v in self.extra.items()
                        if isinstance(v, (int, float, str, bool))}
        return doc

    def to_json(self) -> str:
        """Deterministic JSON (sorted keys, data only)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)


@dataclass(frozen=True)
class FleetSweepRow:
    """Clean + chaos runs at one replica count."""

    replicas: int
    clean: FleetReport
    chaos: Optional[FleetReport] = None

    def to_dict(self) -> dict:
        return {
            "replicas": self.replicas,
            "clean": self.clean.to_dict(),
            "chaos": None if self.chaos is None else self.chaos.to_dict(),
        }


@dataclass(frozen=True)
class FleetSweepReport:
    """The ROADMAP target artifact: fleet-wide p99 vs. replica count."""

    rows: tuple[FleetSweepRow, ...]

    def render(self) -> str:
        headers = ["replicas", "clean p99 ms", "clean goodput %",
                   "chaos p99 ms", "chaos goodput %", "failovers",
                   "crashes", "hedges won"]
        body = []
        for row in self.rows:
            clean, chaos = row.clean, row.chaos
            body.append([
                row.replicas,
                clean._lat(clean.latency_p99_us),
                f"{clean.goodput * 100:.1f}",
                "-" if chaos is None else chaos._lat(chaos.latency_p99_us),
                "-" if chaos is None else f"{chaos.goodput * 100:.1f}",
                0 if chaos is None else chaos.failovers,
                0 if chaos is None else chaos.crashes,
                0 if chaos is None else chaos.hedges_won,
            ])
        title = ""
        if self.rows:
            r0 = self.rows[0].clean
            title = (f"[fleet] {r0.net} ({r0.executor}, {r0.router} router): "
                     f"{r0.rps:.0f} rps {r0.trace_kind}, "
                     f"SLO {r0.slo_us / 1e3:.3f} ms — p99 vs. replica count")
        table = format_table(headers, body, title=title)
        details = "\n\n".join(
            part.render()
            for row in self.rows
            for part in (row.clean, row.chaos) if part is not None)
        return f"{table}\n\n{details}"

    def to_dict(self) -> dict:
        return {"rows": [r.to_dict() for r in self.rows]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)
