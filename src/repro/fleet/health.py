"""Per-replica health: circuit breakers and heartbeat monitoring.

The fleet treats every replica as an unreliable component and guards it
with a :class:`CircuitBreaker` — the classic three-state machine:

``CLOSED``
    Normal operation.  Consecutive batch failures
    (:class:`~repro.errors.DegradedError`) or batch timeouts past the
    configured thresholds trip the breaker ``OPEN``.
``OPEN``
    The router sends no traffic; queued work is drained and failed over.
    After ``cooldown_us`` of simulated time the breaker transitions to
    ``HALF_OPEN`` on the next routing inquiry.
``HALF_OPEN``
    Exactly ``probe_budget`` probe request(s) may be routed.  A probe
    batch that completes closes the breaker (the replica rejoins); a
    probe failure re-opens it and restarts the cooldown.

A :class:`HealthMonitor` tracks liveness on top: heartbeats at a fixed
simulated-clock interval poll the ``replica_crash`` fault site, and a
crashed replica is forced ``OPEN`` until its scheduled restart (or
forever, for ``effect="permanent"``).  Every transition is logged with
its simulated timestamp, so a fleet run's breaker history is replayable
bit-for-bit from the seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ReproError
from repro.obs.metrics import counter_inc
from repro.obs.spans import instant


class BreakerState(enum.Enum):
    """Circuit-breaker states (per replica)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerTransition:
    """One logged state change of one replica's breaker."""

    at_us: float
    frm: str
    to: str
    reason: str

    def to_dict(self) -> dict:
        return {"at_us": self.at_us, "from": self.frm, "to": self.to,
                "reason": self.reason}


class CircuitBreaker:
    """Failure-driven admission switch for one replica.

    Parameters
    ----------
    failure_threshold:
        Consecutive batch failures that trip ``CLOSED -> OPEN``.
    timeout_threshold:
        Consecutive batch *timeouts* (duration past the engine's
        ``batch_timeout_us``) that trip the breaker; timeouts and
        failures accumulate on separate counters so a slow-but-correct
        replica and a crashing one are distinguishable in the log.
    cooldown_us:
        Simulated time the breaker stays ``OPEN`` before allowing a
        half-open probe.
    probe_budget:
        Requests routable while ``HALF_OPEN`` (default one probe).
    """

    def __init__(self, name: str, *, failure_threshold: int = 2,
                 timeout_threshold: int = 3, cooldown_us: float = 2_000.0,
                 probe_budget: int = 1) -> None:
        if failure_threshold < 1 or timeout_threshold < 1:
            raise ReproError("breaker thresholds must be >= 1")
        if cooldown_us < 0:
            raise ReproError(f"cooldown must be >= 0, got {cooldown_us}")
        if probe_budget < 1:
            raise ReproError(f"probe budget must be >= 1, got {probe_budget}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.timeout_threshold = timeout_threshold
        self.cooldown_us = cooldown_us
        self.probe_budget = probe_budget
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.consecutive_timeouts = 0
        self._opened_at_us = 0.0
        self._probes_left = 0
        self.transitions: list[BreakerTransition] = []

    # ------------------------------------------------------------------
    def _move(self, to: BreakerState, now: float, reason: str) -> None:
        if to is self.state:
            return
        self.transitions.append(BreakerTransition(
            at_us=now, frm=self.state.value, to=to.value, reason=reason))
        counter_inc(f"fleet.breaker.{to.value}")
        instant("fleet.breaker", cat="fleet", replica=self.name,
                to=to.value, why=reason)
        self.state = to
        if to is BreakerState.OPEN:
            self._opened_at_us = now
        elif to is BreakerState.HALF_OPEN:
            self._probes_left = self.probe_budget
        elif to is BreakerState.CLOSED:
            self.consecutive_failures = 0
            self.consecutive_timeouts = 0

    # ------------------------------------------------------------------
    def allows(self, now: float) -> bool:
        """May the router send a request here at simulated time ``now``?

        An ``OPEN`` breaker whose cooldown has elapsed transitions to
        ``HALF_OPEN`` as a side effect (lazily, on inquiry — there is no
        timer thread in a discrete-event world).
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now < self._opened_at_us + self.cooldown_us:
                return False
            self._move(BreakerState.HALF_OPEN, now, "cooldown elapsed")
        return self._probes_left > 0

    def note_probe(self) -> None:
        """One half-open probe request was routed (spend the budget)."""
        if self.state is BreakerState.HALF_OPEN and self._probes_left > 0:
            self._probes_left -= 1

    # ------------------------------------------------------------------
    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self.consecutive_timeouts = 0
        if self.state is BreakerState.HALF_OPEN:
            self._move(BreakerState.CLOSED, now, "probe succeeded")

    def record_failure(self, now: float, reason: str = "batch failed"
                       ) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._move(BreakerState.OPEN, now, f"probe failed: {reason}")
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_failures >= self.failure_threshold):
            self._move(BreakerState.OPEN, now,
                       f"{self.consecutive_failures} consecutive failures")

    def record_timeout(self, now: float) -> None:
        self.consecutive_timeouts += 1
        if self.state is BreakerState.HALF_OPEN:
            self._move(BreakerState.OPEN, now, "probe timed out")
        elif (self.state is BreakerState.CLOSED
              and self.consecutive_timeouts >= self.timeout_threshold):
            self._move(BreakerState.OPEN, now,
                       f"{self.consecutive_timeouts} consecutive timeouts")

    def force_open(self, now: float, reason: str) -> None:
        """Trip the breaker regardless of counters (crash detection)."""
        self._move(BreakerState.OPEN, now, reason)

    def begin_probe(self, now: float, reason: str) -> None:
        """Move ``OPEN -> HALF_OPEN`` ahead of the cooldown (graceful
        rejoin after a restarted replica's healthy heartbeats)."""
        if self.state is BreakerState.OPEN:
            self._move(BreakerState.HALF_OPEN, now, reason)


class HealthMonitor:
    """Liveness tracking for one replica, driven by fleet heartbeats.

    ``alive`` is the monitor's belief; the *fault* (``replica_crash``)
    is polled by the fleet at heartbeat granularity, so detection is
    deterministic and immediate at the heartbeat that kills the replica.
    A monitor requires ``healthy_after`` consecutive heartbeat successes
    after a restart before it reports the replica routable again — the
    graceful-rejoin half of drain/rejoin.
    """

    def __init__(self, name: str, *, healthy_after: int = 1) -> None:
        if healthy_after < 1:
            raise ReproError(f"healthy_after must be >= 1, got "
                             f"{healthy_after}")
        self.name = name
        self.healthy_after = healthy_after
        self.alive = True
        self.permanently_dead = False
        self.recovering = False      # restarted, awaiting healthy beats
        self.crashes = 0
        self.heartbeats = 0
        self._successes_since_restart = 0

    def beat_ok(self) -> bool:
        """One successful heartbeat; True once rejoin criteria are met."""
        self.heartbeats += 1
        if not self.alive:
            return False
        self._successes_since_restart += 1
        return self._successes_since_restart >= self.healthy_after

    def crash(self, permanent: bool) -> None:
        self.heartbeats += 1
        self.crashes += 1
        self.alive = False
        self.recovering = False
        self.permanently_dead = self.permanently_dead or permanent
        self._successes_since_restart = 0

    def restart(self) -> None:
        """The replica process came back (but is not yet routable)."""
        if not self.permanently_dead:
            self.alive = True
            self.recovering = True
            self._successes_since_restart = 0
