"""One serving replica: a device, an executor and local serving state.

A :class:`Replica` is the fleet's unit of failure.  It owns a private
simulated GPU (heterogeneous fleets mix catalog devices), an executor on
that GPU, and the same serving components the single-engine path uses —
bounded queue, timeout-or-full batcher, per-shape lowered-work cache and
an EWMA service-time estimate — but exposes them *stepwise* so the fleet's
discrete-event loop (:mod:`repro.fleet.engine`) can interleave many
replicas on one trace-relative clock.

Requests travel as :class:`RequestCopy` instances: the same logical
request may exist as a primary copy, a hedge copy and/or failover copies
on different replicas, and the fleet ledger reconciles them to exactly
one terminal outcome.  A copy mimics the request's ``rid`` /
``arrival_us`` / ``deadline_us`` surface, so the existing queue,
admission and batcher machinery works on copies unchanged.

Executor time and fleet time: each replica's GPU clock is advanced to
``base + now`` before a batch runs, so per-replica device timelines stay
consistent with the shared fleet clock while warmup (pre-lowering every
batch bucket) stays excluded from trace time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.errors import DegradedError, FaultInjected, ReproError
from repro.faults.hooks import fault_poll
from repro.gpusim.device import DeviceProperties
from repro.gpusim.engine import GPU
from repro.nn.net import Net
from repro.obs.metrics import counter_inc, gauge_max, observe
from repro.obs.spans import span
from repro.serve.batcher import DynamicBatcher, LoweredNetCache, default_buckets
from repro.serve.engine import make_executor
from repro.serve.queue import (
    AdmissionController,
    BoundedQueue,
    OverflowPolicy,
    QueueOrder,
)

#: Batch-duration multipliers for the ``replica_slow`` fault effects.
SLOW_FACTORS = {"": 2.0, "mild": 2.0, "severe": 8.0}


@dataclass(frozen=True)
class RequestCopy:
    """One routed instance of a logical request.

    ``kind`` is ``"primary"`` for the first dispatch, ``"hedge"`` for a
    tail-latency duplicate and ``"failover"`` for a re-dispatch after a
    replica failure.  ``copy_id`` is unique fleet-wide.
    """

    copy_id: int
    rid: int
    arrival_us: float
    deadline_us: float
    kind: str = "primary"

    @property
    def slo_us(self) -> float:
        return self.deadline_us - self.arrival_us


@dataclass
class BatchRun:
    """Outcome of one replica batch execution (simulated)."""

    copies: list
    bucket: int
    started_us: float        # fleet (trace-relative) start time
    duration_us: float       # effective duration incl. slow-fault padding
    failure: str = ""        # DegradedError message ("" on success)
    slow_effect: str = ""    # replica_slow effect applied ("" if none)

    @property
    def finish_us(self) -> float:
        return self.started_us + self.duration_us

    @property
    def ok(self) -> bool:
        return not self.failure


class Replica:
    """Serving state for one fleet member (see module docstring)."""

    def __init__(
        self,
        index: int,
        props: DeviceProperties,
        executor_kind: str,
        net_builder: Callable[..., Net],
        *,
        max_batch: int = 8,
        max_wait_us: float = 200.0,
        queue_capacity: int = 64,
        overflow: OverflowPolicy = OverflowPolicy.REJECT_NEWEST,
        order: QueueOrder = QueueOrder.FIFO,
        slo_admission: bool = True,
        buckets: Optional[Sequence[int]] = None,
        seed: int = 0,
        ewma_alpha: float = 0.3,
    ) -> None:
        self.index = index
        self.name = f"r{index}"
        self.gpu = GPU(props, record_timeline=False)
        self.executor = make_executor(executor_kind, self.gpu)
        self.queue = BoundedQueue(queue_capacity, overflow=overflow,
                                  order=order)
        self.batcher = DynamicBatcher(max_batch, max_wait_us)
        self.cache = LoweredNetCache(
            net_builder, buckets or default_buckets(max_batch), seed=seed)
        self.admission = AdmissionController(enabled=slo_admission)
        self.ewma_alpha = ewma_alpha
        self.service_estimate_us: Optional[float] = None
        self.busy_until_us: Optional[float] = None   # None when idle
        self.inflight: Optional[BatchRun] = None
        self.failed_batches = 0
        self.timeout_batches = 0
        self.served = 0              # copies that completed here
        self._base_us = 0.0
        self._warmed = False

    # ------------------------------------------------------------------
    def warm_up(self) -> None:
        """Pre-lower and pre-profile every bucket; seed the EWMA estimate.

        Warmup advances only the replica's private device clock — the
        fleet clock starts after every replica warmed up, so profiling
        cost is never charged to the trace.
        """
        if self._warmed:
            return
        with span("fleet.warmup", cat="fleet", replica=self.name,
                  buckets=len(self.cache.buckets)):
            for bucket in self.cache.buckets:
                _, works = self.cache.works_for(bucket)
                for work in works:
                    self.executor.run(work)
            largest, works = self.cache.works_for(self.cache.buckets[-1])
            start = self.gpu.host_time
            for work in works:
                self.executor.run(work)
            self._update_estimate((self.gpu.host_time - start) / largest)
        self._base_us = self.gpu.host_time
        self._warmed = True

    def _update_estimate(self, per_request_us: float) -> None:
        if self.service_estimate_us is None:
            self.service_estimate_us = per_request_us
        else:
            a = self.ewma_alpha
            self.service_estimate_us = (
                a * per_request_us + (1.0 - a) * self.service_estimate_us)

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        return self.inflight is None

    def depth(self) -> int:
        return len(self.queue)

    def busy_remaining_us(self, now: float) -> float:
        if self.busy_until_us is None:
            return 0.0
        return max(0.0, self.busy_until_us - now)

    def projected_wait_us(self, now: float) -> float:
        """Routing load score: remaining busy time plus queued work."""
        est = self.service_estimate_us or 0.0
        return self.busy_remaining_us(now) + self.depth() * est

    def projected_finish_us(self, now: float) -> float:
        """SLO-aware projection for one more request landing here now."""
        est = self.service_estimate_us or 0.0
        return now + self.projected_wait_us(now) + est

    # ------------------------------------------------------------------
    def offer(self, copy: RequestCopy, now: float
              ) -> tuple[str, list[RequestCopy]]:
        """Enqueue ``copy``; returns ``(verdict, evicted_copies)``.

        Verdicts: ``"queued"``, ``"shed-admission"`` (predictably late by
        this replica's own estimate) or ``"shed-queue"`` (overflow).
        Under ``DROP_OLDEST`` an admission may evict older copies — they
        are returned for the fleet to fail over.
        """
        if not self.admission.admits(copy, now, self.depth(),
                                     self.service_estimate_us):
            return "shed-admission", []
        admitted = self.queue.offer(copy, now)
        evicted = self.queue.drain_evicted()
        gauge_max(f"fleet.{self.name}.queue.high_water",
                  self.queue.high_water)
        if not admitted:
            return "shed-queue", evicted
        return "queued", evicted

    def drain(self) -> list[RequestCopy]:
        """Empty the queue (breaker opened / crash): copies to fail over."""
        drained = self.queue.pop_batch(max(1, self.depth())) \
            if self.depth() else []
        return list(drained)

    def expire_queued(self, now: float) -> list[RequestCopy]:
        """Remove queued copies whose deadline already passed."""
        return self.queue.drop_expired(now)

    # ------------------------------------------------------------------
    def ready(self, now: float, more_arrivals: bool) -> bool:
        return (self.idle
                and self.batcher.ready(self.queue, now, more_arrivals))

    def fire_time_us(self) -> Optional[float]:
        if not self.idle:
            return None
        return self.batcher.fire_time_us(self.queue)

    def run_batch(self, now: float) -> BatchRun:
        """Execute the next batch synchronously; the fleet schedules the
        completion event at :attr:`BatchRun.finish_us`.

        Polls the ``replica_slow`` fault site once per batch; a firing
        spec multiplies the batch duration by its effect's factor (the
        replica computes correctly, just slowly — convergence invariance
        is never at stake, only the timeline).
        """
        copies = self.batcher.form(self.queue)
        bucket, works = self.cache.works_for(len(copies))
        self.gpu.host_time = max(self.gpu.host_time, self._base_us + now)
        start = self.gpu.host_time
        failure = ""
        slow_effect = ""
        with span("fleet.batch", cat="fleet", replica=self.name,
                  size=len(copies), bucket=bucket) as h:
            slow = fault_poll("replica_slow", key=self.name)
            try:
                for work in works:
                    self.executor.run(work)
            except (DegradedError, FaultInjected) as e:
                # DegradedError: the scheduler's retries exhausted.
                # FaultInjected: an executor without a retry path (naive/
                # fixed) surfaced the raw injected fault.  Either way the
                # batch failed as a unit; the fleet fails it over.
                failure = str(e)
                self.failed_batches += 1
                h.set(failed=True)
                try:
                    # Best-effort drain so the next batch starts clean.
                    self.gpu.synchronize()
                except ReproError:
                    pass
            duration = self.gpu.host_time - start
            if slow is not None and not failure:
                slow_effect = slow.effect or "mild"
                factor = SLOW_FACTORS[slow_effect]
                self.gpu.host_time = start + duration * factor
                duration *= factor
                h.set(slow=slow_effect)
        counter_inc("fleet.batches")
        observe("fleet.batch_size", len(copies))
        if not failure:
            self._update_estimate(duration / len(copies))
        run = BatchRun(copies=copies, bucket=bucket, started_us=now,
                       duration_us=duration, failure=failure,
                       slow_effect=slow_effect)
        self.inflight = run
        self.busy_until_us = run.finish_us
        return run

    def finish_batch(self) -> BatchRun:
        """Clear the in-flight marker at the completion event."""
        run = self.inflight
        if run is None:
            raise ReproError(f"{self.name}: no batch in flight")
        self.inflight = None
        self.busy_until_us = None
        if run.ok:
            self.served += len(run.copies)
        return run

    def abort_inflight(self) -> list[RequestCopy]:
        """Crash mid-batch: the in-flight copies are lost (to fail over)."""
        if self.inflight is None:
            return []
        run = self.inflight
        self.inflight = None
        self.busy_until_us = None
        return list(run.copies)
