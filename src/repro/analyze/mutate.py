"""Seeded sync-deletion mutants: the analyzer/fuzzer cross-check probe.

Deleting only the host ``synchronize`` after a layer is usually *not*
observable: the next layer's whole-batch serial kernels launch on the
legacy default stream, which is itself a barrier, so both the engine and
the static model still order everything.  A real sync-edge deletion must
therefore also strip the implicit barrier — the mutation here sets
``sync=False`` on layer ``k`` **and** moves the serial kernels of ``k``
and ``k+1`` onto pool streams (``serial_stream``), exactly the class of
bug a dispatcher refactor could introduce.

:func:`find_flagged_mutant` searches seeded ``(layer, slot)`` candidates
until the static detector reports hazards, returning the mutated plan and
its witness.  The acceptance cross-check then replays the same plan
through :class:`repro.verify.schedule.ScheduleRunner`, which must also
flag it — see ``docs/static_analysis.md`` for the exact directional
guarantees.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Optional, Sequence

from repro.analyze.access import WorkAccess
from repro.analyze.hazards import Hazard, detect
from repro.analyze.plans import program_from_schedule_plan
from repro.errors import AnalyzeError
from repro.kernels.ir import LayerWork


def drop_sync_mutant(plan, layer_index: int, slot: int):
    """Delete layer ``layer_index``'s sync edge from a schedule plan.

    Marks the layer ``sync=False`` and assigns its serial kernels (and
    the next layer's) to pool streams so no implicit default-stream
    barrier re-orders the racing work.
    """
    layers = list(plan.layers)
    if not 0 <= layer_index < len(layers):
        raise AnalyzeError(
            f"mutation index {layer_index} outside plan "
            f"({len(layers)} layers)")
    slot %= plan.pool_size
    layers[layer_index] = replace(layers[layer_index], sync=False,
                                  serial_stream=slot)
    if layer_index + 1 < len(layers):
        next_slot = ((slot + 1) % plan.pool_size
                     if plan.pool_size > 1 else slot)
        layers[layer_index + 1] = replace(layers[layer_index + 1],
                                          serial_stream=next_slot)
    return replace(plan, layers=tuple(layers))


def find_flagged_mutant(works: Sequence[LayerWork],
                        accesses: Sequence[WorkAccess],
                        plan, seed: int = 0,
                        confirm: Optional[Callable[[object], bool]] = None,
                        ) -> tuple[object, list[Hazard]]:
    """Seeded search for a sync-deletion mutant the detector flags.

    Tries layer indices in a seeded random order (and every pool slot for
    each) until the mutated plan's program has hazards; returns
    ``(mutated_plan, hazards)``.  Raises :class:`AnalyzeError` when no
    single deleted sync is observable — e.g. a pool of size 1, where
    stream FIFO alone orders everything (hazard-free by construction).

    ``confirm``, when given, is an extra predicate each statically
    flagged candidate must also satisfy — the cross-check wires in a
    :class:`~repro.verify.schedule.ScheduleRunner` replay here, so the
    returned mutant is flagged by *both* the static detector and the
    dynamic harness.  (Statically flagged but dynamically clean
    candidates are expected: a race is a property of all legal
    schedules, while one simulated run samples a single timing.)
    """
    n = len(plan.layers)
    if n < 2:
        raise AnalyzeError("need at least two layers to delete a sync edge")
    rng = random.Random(seed)
    order = list(range(n - 1))
    rng.shuffle(order)
    static_only = 0
    for k in order:
        for slot in range(plan.pool_size):
            cand = drop_sync_mutant(plan, k, slot)
            hazards = detect(program_from_schedule_plan(works, accesses,
                                                        cand))
            if not hazards:
                continue
            if confirm is not None and not confirm(cand):
                static_only += 1
                continue
            return cand, hazards
    if static_only:
        raise AnalyzeError(
            f"{static_only} sync-deletion mutant(s) are statically racy "
            "but none diverged under the dynamic confirmation predicate")
    raise AnalyzeError(
        "no sync-deletion mutant of this plan produces a static hazard "
        "(a pool of size 1 is hazard-free by construction)")
