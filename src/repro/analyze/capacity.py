"""Static over-subscription check: does the plan fit the device?

A stream plan that is perfectly race- and deadlock-free can still be a
bad plan: if the kernels it makes concurrently resident together demand
more than the device offers, the hardware serializes them anyway and
every cross-stream sync the plan paid for buys nothing (Opara's
"effective parallelism" argument, PAPERS.md).  This check flags that
statically, from the same happens-before relation the other passes use:

* ``capacity/stream-pool`` — the program uses more concurrent non-default
  streams than the device exposes (``max_concurrent_kernels``) or than
  the pool the caller sized; extra streams alias onto existing hardware
  queues and silently serialize.
* ``capacity/over-subscription`` — some antichain of the launch
  happens-before order (launches that may all be resident at once) has a
  summed device *fill* (:class:`repro.interop.resources.KernelEstimate`)
  above :data:`OVERSUBSCRIPTION_FACTOR`; the overlap the plan schedules
  cannot actually happen.

Concurrency is approximated by happens-before *depth*: launches at equal
depth (longest hb chain below them) are pairwise unordered, hence a
legal simultaneous-residency set.  Depth levels under-approximate the
maximal antichains, so a flagged level is a sound witness of
over-subscription (no false positives from ordering), while quiet levels
make no completeness promise — this is a planning lint, not a proof.

Both rules are warnings (SARIF level ``warning``): the plan is correct,
just not profitably parallel.  Findings respect the program's
``allow`` suppression set like every other analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analyze.program import (DEFAULT_STREAM, DispatchProgram, Launch,
                                   happens_before)

#: Summed device fill above which one depth level is over-subscribed.
#: 1.0 is perfect packing; a small slack tolerates boundary kernels.
OVERSUBSCRIPTION_FACTOR = 1.5

#: Cap on kernels named per finding witness.
_MAX_KERNELS = 6

#: Rule ids emitted by this check.
CAPACITY_RULES = ("capacity/over-subscription", "capacity/stream-pool")


@dataclass(frozen=True)
class CapacityFinding:
    """One capacity breach witness."""

    rule: str
    level: int                 # hb depth level (-1 for stream-pool)
    total_fill: float          # summed fill at the level (0 for pool)
    limit: float               # the capacity it exceeds
    streams: int               # concurrent streams involved
    kernels: tuple[str, ...]   # witnesses (capped at _MAX_KERNELS)
    kernel_count: int
    message: str

    def describe(self) -> str:
        extra = ("" if self.kernel_count <= len(self.kernels)
                 else f" (+{self.kernel_count - len(self.kernels)} more)")
        who = ", ".join(self.kernels) + extra
        return f"[{self.rule}] {self.message} — {who}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule, "level": self.level,
            "total_fill": round(self.total_fill, 4),
            "limit": self.limit, "streams": self.streams,
            "kernels": list(self.kernels),
            "kernel_count": self.kernel_count,
            "message": self.message,
        }


def concurrency_levels(program: DispatchProgram) -> list[list[int]]:
    """Launch op indices grouped by happens-before depth.

    ``levels[d]`` holds the launches whose longest predecessor chain
    (counting launches only) has length ``d``; members of one level are
    pairwise unordered, i.e. may be concurrently resident.
    """
    ops = program.ops
    hb = happens_before(ops)
    launch_idx = [i for i, op in enumerate(ops) if isinstance(op, Launch)]
    depth: dict[int, int] = {}
    for i in launch_idx:        # issue order: predecessors come first
        d = 0
        for p in launch_idx:
            if p >= i:
                break
            if (hb[i] >> p) & 1:
                d = max(d, depth[p] + 1)
        depth[i] = d
    levels: list[list[int]] = []
    for i in launch_idx:
        d = depth[i]
        while len(levels) <= d:
            levels.append([])
        levels[d].append(i)
    return levels


def check_capacity(program: DispatchProgram,
                   fills: Optional[Mapping[int, float]] = None,
                   pool_limit: Optional[int] = None,
                   device=None) -> list[CapacityFinding]:
    """All capacity findings for ``program``, post-suppression.

    ``fills`` maps a launch's ``chain`` id to its stand-alone device
    fill (fraction of the device the kernel occupies running alone, from
    :func:`repro.interop.resources.estimate_graph`); without it only the
    stream-pool rule can fire.  ``pool_limit`` defaults to the device's
    ``max_concurrent_kernels`` when a
    :class:`~repro.gpusim.device.DeviceProperties` is given.
    """
    findings: list[CapacityFinding] = []
    if pool_limit is None and device is not None:
        pool_limit = device.max_concurrent_kernels

    streams = sorted(s for s in program.streams_used()
                     if s != DEFAULT_STREAM)
    if pool_limit is not None and len(streams) > pool_limit:
        by_stream: dict[int, str] = {}
        for _, op in program.launches():
            by_stream.setdefault(op.stream, op.kernel)
        witnesses = tuple(by_stream[s] for s in streams
                          if s in by_stream)[:_MAX_KERNELS]
        findings.append(CapacityFinding(
            rule="capacity/stream-pool", level=-1, total_fill=0.0,
            limit=float(pool_limit), streams=len(streams),
            kernels=witnesses, kernel_count=len(streams),
            message=(f"{len(streams)} concurrent streams exceed the "
                     f"device's {pool_limit} hardware queues; the "
                     f"excess serializes — shrink the pool"),
        ))

    if fills:
        ops = program.ops
        for level, members in enumerate(concurrency_levels(program)):
            with_fill = [(i, fills.get(ops[i].chain)) for i in members]
            total = sum(f for _, f in with_fill if f is not None)
            if total <= OVERSUBSCRIPTION_FACTOR:
                continue
            members_sorted = sorted(
                (i for i, f in with_fill if f is not None),
                key=lambda i: -(fills.get(ops[i].chain) or 0.0))
            names = tuple(ops[i].kernel
                          for i in members_sorted[:_MAX_KERNELS])
            lvl_streams = {ops[i].stream for i in members}
            findings.append(CapacityFinding(
                rule="capacity/over-subscription", level=level,
                total_fill=total, limit=OVERSUBSCRIPTION_FACTOR,
                streams=len(lvl_streams), kernels=names,
                kernel_count=len(members),
                message=(f"depth level {level} schedules "
                         f"{len(members)} concurrent kernels totalling "
                         f"{total:.2f}x device fill (limit "
                         f"{OVERSUBSCRIPTION_FACTOR:.2f}x); the overlap "
                         f"serializes on hardware — deepen the "
                         f"schedule or shrink the pool"),
            ))

    return [f for f in findings if not program.is_allowed(f.rule)]
