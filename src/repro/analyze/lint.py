"""A small AST-based lint framework with pluggable determinism rules.

The differential/fuzz harnesses of :mod:`repro.verify` catch
nondeterminism *after* it has perturbed a run; this linter catches the
usual sources before they ship: unseeded RNGs, wall-clock reads inside
the simulated paths, iteration order leaking out of unordered sets, and
multi-stream dispatch with no synchronization edge.

Rules subclass :class:`LintRule` and return ``(line, message)`` pairs
from :meth:`LintRule.check`; :func:`lint_paths` walks the source tree,
parses each file once, applies every in-scope rule and drops violations
suppressed with a ``# repro: allow(<rule>)`` comment on the offending
line or the line directly above it.  The rule catalog lives in
:mod:`repro.analyze.rules`; ``docs/static_analysis.md`` documents each
rule and the suppression syntax.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.errors import AnalyzeError

#: Suppression marker: ``# repro: allow(rule-a, rule-b)``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


class LintRule:
    """Base class for lint rules.

    Attributes
    ----------
    name:
        Stable rule id (kebab-case) used in reports and suppressions.
    description:
        One-line summary shown in the rule catalog and SARIF metadata.
    scope:
        Path fragments (package dir names) the rule is restricted to;
        empty means every file.  E.g. ``("core", "gpusim", "verify")``
        limits a rule to the simulated paths.
    """

    name: str = ""
    description: str = ""
    scope: tuple[str, ...] = ()

    def check(self, tree: ast.AST, source: str,
              path: Path) -> list[tuple[int, str]]:
        raise NotImplementedError

    def applies_to(self, path: Path) -> bool:
        if not self.scope:
            return True
        parts = set(path.parts)
        return any(s in parts for s in self.scope)


@dataclass(frozen=True)
class LintViolation:
    """One rule hit at one source line."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}


@dataclass
class LintReport:
    """Outcome of one ``repro analyze lint`` pass."""

    roots: list[str] = field(default_factory=list)
    rules: list[str] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    violations: list[LintViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "kind": "lint-report",
            "roots": list(self.roots), "rules": list(self.rules),
            "files_checked": self.files_checked,
            "suppressed": self.suppressed, "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        lines = [v.describe() for v in self.violations]
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"analyze lint: {verdict} ({self.files_checked} file(s), "
            f"{len(self.rules)} rule(s), {len(self.violations)} "
            f"violation(s), {self.suppressed} suppressed)")
        return "\n".join(lines)


def allowed_rules(source: str) -> dict[int, set[str]]:
    """Per-line suppression sets parsed from ``# repro: allow(...)``."""
    allowed: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            names = {n.strip() for n in m.group(1).split(",") if n.strip()}
            allowed[lineno] = names
    return allowed


def allow_markers(text: str) -> set[str]:
    """Union of every rule id named in ``# repro: allow(...)`` markers.

    Line positions are discarded: this is the coarse variant used for
    whole-program findings (hazards, deadlocks, capacity), where the
    suppression attaches to the plan producer rather than a source line.
    """
    out: set[str] = set()
    for names in allowed_rules(text).values():
        out |= names
    return out


def _suppressed(allowed: dict[int, set[str]], rule: str, line: int) -> bool:
    for at in (line, line - 1):
        names = allowed.get(at)
        if names and (rule in names or "*" in names):
            return True
    return False


def lint_file(path: Path, rules: Sequence[LintRule],
              display_path: Optional[str] = None,
              ) -> tuple[list[LintViolation], int]:
    """Apply every in-scope rule to one file; returns (hits, #suppressed)."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as e:
        raise AnalyzeError(f"cannot parse {path}: {e}") from e
    allowed = allowed_rules(source)
    shown = display_path or str(path)
    out: list[LintViolation] = []
    suppressed = 0
    for rule in rules:
        if not rule.applies_to(path):
            continue
        for line, message in rule.check(tree, source, path):
            if _suppressed(allowed, rule.name, line):
                suppressed += 1
                continue
            out.append(LintViolation(rule=rule.name, path=shown,
                                     line=line, message=message))
    out.sort(key=lambda v: (v.path, v.line, v.rule))
    return out, suppressed


def lint_paths(paths: Iterable[Union[str, Path]],
               rules: Optional[Sequence[LintRule]] = None) -> LintReport:
    """Lint every ``*.py`` file under the given files/directories."""
    if rules is None:
        from repro.analyze.rules import DEFAULT_RULES
        rules = DEFAULT_RULES
    roots = [Path(p) for p in paths]
    files: list[Path] = []
    for root in roots:
        if root.is_dir():
            files.extend(sorted(root.rglob("*.py")))
        elif root.suffix == ".py":
            files.append(root)
        else:
            raise AnalyzeError(f"nothing to lint at {root}")
    report = LintReport(roots=[str(r) for r in roots],
                        rules=[r.name for r in rules])
    for f in files:
        hits, suppressed = lint_file(f, rules)
        report.violations.extend(hits)
        report.suppressed += suppressed
        report.files_checked += 1
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return report
