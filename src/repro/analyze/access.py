"""Per-kernel memory-effect derivation for lowered layer work.

The hazard detector needs to know, for every kernel a dispatcher will
launch, which abstract memory regions it reads and writes.  This module
derives that from the net's blob wiring (:class:`repro.nn.layer.LayerDef`
bottoms/tops) and the shape of the lowered work
(:class:`repro.kernels.ir.LayerWork`), at **per-sample granularity** —
the granularity GLP4NN's batch-level parallelism actually partitions:

* ``{blob}[s{n}]`` — sample ``n``'s slice of an activation blob;
* ``d:{blob}[s{n}]`` — its gradient;
* ``param:{key}`` — a layer's (possibly shared) parameter blobs,
  read-only during dispatch;
* ``partial:{layer}[c{n}]`` — chain ``n``'s privatized weight-gradient
  partial (the lowering's privatize-and-reduce transform);
* ``wgrad:{key}`` — the reduced parameter gradient, written by the
  serial tail;
* ``{layer}.{f|b}.c{n}.t{j}`` — chain-internal temporaries (im2col
  column buffers etc.), private to one chain by construction.

The derivation is *conservative on reads*: every kernel of a chain is
charged with the chain's external inputs, since e.g. both backward GEMMs
re-read the saved activations.  Over-approximate reads can only add
hazards that a sync would anyway be needed for, never hide one.

Whole-batch serial kernels touch every sample's region — which is exactly
why a serial kernel moved off the default stream without a barrier races
against every chain of the neighbouring layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AnalyzeError
from repro.kernels.ir import LayerWork


@dataclass(frozen=True)
class Access:
    """Memory effect of one kernel: region reads and writes."""

    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()


@dataclass(frozen=True)
class WorkAccess:
    """Per-kernel accesses of one :class:`LayerWork`, aligned by position.

    ``chains[n][j]`` is the effect of kernel ``j`` of parallel chain ``n``;
    ``serial[j]`` of the ``j``-th whole-batch serial kernel.
    """

    chains: tuple[tuple[Access, ...], ...] = ()
    serial: tuple[Access, ...] = ()


def data_region(blob: str, sample: int) -> str:
    return f"{blob}[s{sample}]"


def grad_region(blob: str, sample: int) -> str:
    return f"d:{blob}[s{sample}]"


def _samples(net, blob: str) -> int:
    shape = net.blob_shapes.get(blob)
    if not shape:
        raise AnalyzeError(f"blob {blob!r} has no recorded shape")
    return int(shape[0])


def _expand(net, blobs: Sequence[str], grad: bool = False) -> set[str]:
    region = grad_region if grad else data_region
    return {region(b, s) for b in blobs for s in range(_samples(net, b))}


def _chain_accesses(reads0: set[str], writes_last: set[str],
                    tmp_prefix: str, count: int) -> tuple[Access, ...]:
    """A pipeline of ``count`` kernels threaded through private temps."""
    accs = []
    for j in range(count):
        reads = set(reads0)
        if j > 0:
            reads.add(f"{tmp_prefix}.t{j - 1}")
        writes: set[str] = set()
        if j < count - 1:
            writes.add(f"{tmp_prefix}.t{j}")
        else:
            writes |= writes_last
        accs.append(Access(frozenset(reads), frozenset(writes)))
    return tuple(accs)


def work_access(net, layer_def, work: LayerWork) -> WorkAccess:
    """Derive the per-kernel memory effect of one lowered work unit."""
    name = work.layer
    bottoms = list(layer_def.bottoms)
    tops = list(layer_def.tops)
    param = (f"param:{layer_def.param_key or name}"
             if layer_def.layer.has_params else None)
    forward = work.phase == "forward"
    phase_tag = "f" if forward else "b"

    chains: list[tuple[Access, ...]] = []
    for n, chain in enumerate(work.parallel_chains):
        if forward:
            reads0 = {data_region(b, n) for b in bottoms}
            writes_last = {data_region(t, n) for t in tops}
        else:
            reads0 = ({grad_region(t, n) for t in tops}
                      | {data_region(b, n) for b in bottoms})
            writes_last = {grad_region(b, n) for b in bottoms}
            if param:
                writes_last.add(f"partial:{name}[c{n}]")
        if param:
            reads0.add(param)
        chains.append(_chain_accesses(
            reads0, writes_last, f"{name}.{phase_tag}.c{n}", len(chain)))

    serial: tuple[Access, ...]
    if forward:
        reads0 = _expand(net, bottoms) | ({param} if param else set())
        writes_last = _expand(net, tops)
        serial = _chain_accesses(reads0, writes_last, f"{name}.{phase_tag}",
                                 len(work.serial_kernels))
    elif work.parallel_chains:
        # Conv-backward reduction tail: every serial kernel folds the
        # privatized partials (and the batch's output gradients) into the
        # parameter gradient.  They run back-to-back on one stream, so
        # modelling them with a common write region adds no false pairs.
        reads0 = ({f"partial:{name}[c{n}]"
                   for n in range(len(work.parallel_chains))}
                  | _expand(net, tops, grad=True))
        key = layer_def.param_key or name
        serial = tuple(Access(frozenset(reads0),
                              frozenset({f"wgrad:{key}"}))
                       for _ in work.serial_kernels)
    else:
        reads0 = (_expand(net, tops, grad=True) | _expand(net, bottoms)
                  | ({param} if param else set()))
        writes_last = _expand(net, bottoms, grad=True)
        if param:
            writes_last.add(f"wgrad:{layer_def.param_key or name}")
        serial = _chain_accesses(reads0, writes_last, f"{name}.{phase_tag}",
                                 len(work.serial_kernels))
    return WorkAccess(chains=tuple(chains), serial=serial)


def derive_accesses(net, works: Sequence[LayerWork]) -> list[WorkAccess]:
    """Accesses for a lowered work list, aligned positionally with it."""
    defs = {ld.name: ld for ld in net.layer_defs}
    out: list[WorkAccess] = []
    for work in works:
        ld = defs.get(work.layer)
        if ld is None:
            raise AnalyzeError(
                f"work {work.key!r} does not match any layer of the net "
                f"(have: {', '.join(sorted(defs))})"
            )
        out.append(work_access(net, ld, work))
    return out
