"""Dispatch programs: the static model of a kernel schedule.

A :class:`DispatchProgram` is the analyzer's abstraction of what a host
dispatcher does: an ordered list of operations — kernel launches with
explicit read/write region sets, device-wide barriers (``synchronize``),
and CUDA event record/wait pairs.  It deliberately mirrors the primitives
of :class:`repro.gpusim.engine.GPU` one-for-one, so a program built from a
runtime plan describes *exactly* the dependency edges the engine will wire
(:meth:`GPU._wire_dependencies`):

* ops on one stream are FIFO-ordered;
* an op on the legacy default stream (id 0) is a barrier: it waits for
  every stream's tail and everything issued later waits for it;
* a ``synchronize`` joins all streams on the host;
* a wait on a recorded event orders the waiting stream after the record.

:func:`happens_before` folds those rules into a transitive-reachability
bitmask per op, which :mod:`repro.analyze.hazards` then intersects with
the per-region access sets to find unordered conflicting pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

#: Stream id of the legacy default stream inside a program (barrier
#: semantics).  Pool/thread streams use ids >= 1.
DEFAULT_STREAM = 0


@dataclass(frozen=True)
class Launch:
    """One kernel launch with its memory effect.

    ``reads``/``writes`` are abstract region names (see
    :mod:`repro.analyze.access` for how they are derived from a net);
    ``layer`` and ``chain`` are provenance labels used in hazard witnesses.
    """

    kernel: str
    stream: int
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()
    layer: str = ""
    chain: int = -1


@dataclass(frozen=True)
class SyncAll:
    """A host ``synchronize``: joins every stream (layer_sync)."""

    label: str = ""


@dataclass(frozen=True)
class RecordEvent:
    """``cudaEventRecord`` of ``event`` into ``stream``."""

    event: int
    stream: int


@dataclass(frozen=True)
class WaitEvent:
    """``cudaStreamWaitEvent``: gate later ops in ``stream`` on ``event``."""

    event: int
    stream: int


DispatchOp = Union[Launch, SyncAll, RecordEvent, WaitEvent]


@dataclass
class DispatchProgram:
    """An ordered dispatch trace to be certified hazard-free.

    ``allowed`` is the program's suppression set: finding rule ids (e.g.
    ``"hazard/WAW"``, ``"deadlock/cycle"``, ``"capacity/over-subscription"``
    or the ``"*"`` wildcard) a plan producer has explicitly waived, using
    the same ``# repro: allow(...)`` marker syntax the lint understands
    (see :meth:`allow_from`).  Suppressed findings are counted, not
    hidden: every report surfaces its suppressed total.
    """

    name: str
    ops: list[DispatchOp] = field(default_factory=list)
    allowed: set[str] = field(default_factory=set)

    # -- builder helpers ----------------------------------------------
    def launch(self, kernel: str, stream: int, reads=(), writes=(),
               layer: str = "", chain: int = -1) -> "DispatchProgram":
        self.ops.append(Launch(kernel=kernel, stream=stream,
                               reads=frozenset(reads),
                               writes=frozenset(writes),
                               layer=layer, chain=chain))
        return self

    def sync(self, label: str = "") -> "DispatchProgram":
        self.ops.append(SyncAll(label=label))
        return self

    def record(self, event: int, stream: int) -> "DispatchProgram":
        self.ops.append(RecordEvent(event=event, stream=stream))
        return self

    def wait(self, event: int, stream: int) -> "DispatchProgram":
        self.ops.append(WaitEvent(event=event, stream=stream))
        return self

    def allow(self, *rules: str) -> "DispatchProgram":
        """Suppress finding rule ids for this program (kept as a count)."""
        self.allowed.update(rules)
        return self

    def allow_from(self, text: str) -> "DispatchProgram":
        """Parse ``# repro: allow(rule, ...)`` markers out of ``text``.

        The marker syntax is shared with the determinism lint
        (:func:`repro.analyze.lint.allow_markers`), so a plan producer can
        carry its waivers in a docstring or annotation string.
        """
        from repro.analyze.lint import allow_markers
        self.allowed.update(allow_markers(text))
        return self

    def is_allowed(self, rule: str) -> bool:
        return rule in self.allowed or "*" in self.allowed

    # -- queries ------------------------------------------------------
    def launches(self) -> list[tuple[int, Launch]]:
        """``(op_index, launch)`` pairs in issue order."""
        return [(i, op) for i, op in enumerate(self.ops)
                if isinstance(op, Launch)]

    def streams_used(self) -> set[int]:
        return {op.stream for op in self.ops
                if isinstance(op, (Launch, RecordEvent, WaitEvent))}

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[DispatchOp]:
        return iter(self.ops)


def happens_before(ops: list[DispatchOp]) -> list[int]:
    """Transitive happens-before reachability, one bitmask per op.

    Bit ``j`` of ``hb[i]`` is set iff op ``j`` happens before op ``i``
    under stream-FIFO order, default-stream barrier semantics, host
    ``synchronize`` joins, and event record→wait edges.  The fold mirrors
    the engine's dependency wiring exactly: each op's direct predecessors
    are computed from the same tail/barrier state machine, and its mask is
    the union of the predecessors' masks plus the predecessors themselves.

    An event that was never recorded gates nothing (CUDA semantics); a
    re-recorded event binds each wait to the latest record issued before
    the wait.
    """
    hb: list[int] = []
    tails: dict[int, int] = {}      # stream id -> index of its tail op
    barrier: int | None = None      # last default-stream barrier op
    records: dict[int, int] = {}    # event id -> index of latest record
    for i, op in enumerate(ops):
        preds: set[int] = set()
        if isinstance(op, SyncAll):
            # The host joins every stream; model the sync as a new
            # default-stream barrier so later ops on any stream order
            # after everything before it.
            preds.update(tails.values())
            barrier = i
            tails[DEFAULT_STREAM] = i
        else:
            stream = op.stream
            if stream == DEFAULT_STREAM:
                # Legacy default stream: barrier against every tail.
                preds.update(tails.values())
                barrier = i
            else:
                if stream in tails:
                    preds.add(tails[stream])
                if barrier is not None:
                    preds.add(barrier)
                if isinstance(op, WaitEvent) and op.event in records:
                    preds.add(records[op.event])
            tails[stream] = i
            if isinstance(op, RecordEvent):
                records[op.event] = i
        mask = 0
        for p in preds:
            mask |= hb[p] | (1 << p)
        hb.append(mask)
    return hb


def ordered(hb: list[int], a: int, b: int) -> bool:
    """True iff op ``a`` happens before op ``b`` (or vice versa)."""
    return bool((hb[b] >> a) & 1) or bool((hb[a] >> b) & 1)
