"""Static analysis for GLP4NN dispatch plans and the repo's own source.

Two analyzers share this package:

* **Stream-hazard race detection** — model a dispatch plan (round-robin
  pool, multithread, fused, or data-parallel) as an explicit program of
  kernel launches and sync primitives, compute the happens-before
  relation the engine guarantees (stream FIFO, default-stream barriers,
  recorded events), and report every conflicting access pair the
  relation does not order, with a minimal two-kernel witness.

* **Deadlock detection** — check the *strict* semantics a plan author
  intends: every event wait must be satisfiable by a record and the
  resulting dependency graph must be acyclic; self-waits, record-after-
  wait ordering bugs, never-recorded events and cross-stream wait
  cycles all get minimal cycle witnesses.

* **Certified sync-elision** — compute the transitive reduction of the
  happens-before relation and delete every event wait it proves
  redundant, under a launch-closure certificate that guarantees the
  minimized program replays identically (Opara's minimal-sync lever).

* **Over-subscription check** — flag plans whose concurrently resident
  kernels exceed device fill or stream-pool capacity, using the interop
  resource estimates.

* **Determinism lint** — an AST-based rule framework flagging the usual
  sources of run-to-run divergence (unseeded RNGs, wall-clock reads in
  simulated paths, unordered-set iteration, missing layer syncs).

All back ``python -m repro analyze`` and the CI gate; the verdicts are
cross-checked against the dynamic ``repro.verify`` harness and seeded
fault injection (:mod:`repro.analyze.inject`); see
``docs/static_analysis.md``.
"""

from repro.analyze.access import (Access, WorkAccess, data_region,
                                  derive_accesses, grad_region, work_access)
from repro.analyze.capacity import (CAPACITY_RULES, OVERSUBSCRIPTION_FACTOR,
                                    CapacityFinding, check_capacity,
                                    concurrency_levels)
from repro.analyze.deadlock import (DEADLOCK_RULES, CycleOp, DeadlockFinding,
                                    DeadlockReport, DeadlockVerdict,
                                    analyze_deadlocks, deadlock_verdict_for,
                                    detect_deadlocks)
from repro.analyze.elide import (ELIDE_RULE, ElidedOp, ElisionReport,
                                 ElisionResult, certified_minimize,
                                 launch_closure, minimize,
                                 minimize_networks)
from repro.analyze.hazards import (Hazard, HazardReport, ProgramVerdict,
                                   analyze_networks, detect, verdict_for)
from repro.analyze.lint import (LintReport, LintRule, LintViolation,
                                lint_file, lint_paths)
from repro.analyze.mutate import drop_sync_mutant, find_flagged_mutant
from repro.analyze.plans import (DATA_PARALLEL_REPLICAS, PLAN_KINDS,
                                 ZOO_NETWORKS, build_programs,
                                 program_from_graph,
                                 program_from_schedule_plan,
                                 program_from_works)
from repro.analyze.program import (DEFAULT_STREAM, DispatchProgram, Launch,
                                   RecordEvent, SyncAll, WaitEvent,
                                   happens_before, ordered)
from repro.analyze.report import AnalyzeReport
from repro.analyze.rules import (DEFAULT_RULES, MissingLayerSyncRule,
                                 UnorderedIterationRule, UnseededRngRule,
                                 WallClockRule)
from repro.analyze.sarif import save_sarif, to_sarif

__all__ = [
    "Access", "WorkAccess", "data_region", "derive_accesses", "grad_region",
    "work_access",
    "CAPACITY_RULES", "OVERSUBSCRIPTION_FACTOR", "CapacityFinding",
    "check_capacity", "concurrency_levels",
    "DEADLOCK_RULES", "CycleOp", "DeadlockFinding", "DeadlockReport",
    "DeadlockVerdict", "analyze_deadlocks", "deadlock_verdict_for",
    "detect_deadlocks",
    "ELIDE_RULE", "ElidedOp", "ElisionReport", "ElisionResult",
    "certified_minimize", "launch_closure", "minimize",
    "minimize_networks",
    "Hazard", "HazardReport", "ProgramVerdict", "analyze_networks",
    "detect", "verdict_for",
    "LintReport", "LintRule", "LintViolation", "lint_file", "lint_paths",
    "drop_sync_mutant", "find_flagged_mutant",
    "DATA_PARALLEL_REPLICAS", "PLAN_KINDS", "ZOO_NETWORKS",
    "build_programs", "program_from_graph", "program_from_schedule_plan",
    "program_from_works",
    "DEFAULT_STREAM", "DispatchProgram", "Launch", "RecordEvent",
    "SyncAll", "WaitEvent", "happens_before", "ordered",
    "AnalyzeReport",
    "DEFAULT_RULES", "MissingLayerSyncRule", "UnorderedIterationRule",
    "UnseededRngRule", "WallClockRule",
    "save_sarif", "to_sarif",
]
