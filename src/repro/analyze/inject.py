"""Seeded fault injection for the deadlock detector and sync elider.

A static analyzer that is never shown a bug it must catch is an
unfalsifiable one.  PR 5 cross-checked the race detector with
sync-deletion mutants (:mod:`repro.analyze.mutate`); this module does
the same for the new passes, in both directions:

* :func:`inject_wait_cycle` plants a cross-stream record/wait cycle
  (degenerating to a self-wait on single-stream programs) — the
  deadlock detector must report a cycle through the planted wait;
* :func:`inject_redundant_wait` plants a spurious synchronization: an
  event record/wait pair whose edge happens-before already implies
  (via an existing barrier, or by duplicating a live wait) — the elider
  must remove exactly one more wait than it removes from the clean
  program.

:func:`cross_check` sweeps seeded rounds of both mutations over a set
of programs and reports the hit rates; the acceptance bar (held by
tests and ``python -m repro analyze`` in CI) is **100% of planted
cycles found and 100% of planted redundant waits elided**.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analyze.deadlock import detect_deadlocks, direct_dependencies
from repro.analyze.elide import minimize
from repro.analyze.program import (DEFAULT_STREAM, DispatchProgram, Launch,
                                   SyncAll, WaitEvent)
from repro.errors import AnalyzeError


def _fresh_event(program: DispatchProgram) -> int:
    used = [op.event for op in program.ops if hasattr(op, "event")]
    return (max(used) + 1) if used else 1000


def _clone(program: DispatchProgram, suffix: str) -> DispatchProgram:
    return DispatchProgram(name=f"{program.name}{suffix}",
                           ops=list(program.ops),
                           allowed=set(program.allowed))


def _insert_at(program: DispatchProgram) -> int:
    """Insertion point for planted ops: before a trailing synchronize."""
    ops = program.ops
    if ops and isinstance(ops[-1], SyncAll):
        return len(ops) - 1
    return len(ops)


def inject_wait_cycle(program: DispatchProgram, seed: int = 0
                      ) -> tuple[DispatchProgram, dict]:
    """Plant a record/wait cycle; returns ``(mutant, planted)``.

    With two or more non-default streams available the mutation inserts
    the classic crossed pair — stream A waits on an event only stream B
    records, *after* B first waits on an event only A records — which is
    a 4-op cycle under strict semantics.  A single-stream program gets
    the pool-of-1 degeneration instead: a wait followed by the record of
    the same event on the same stream (a self-wait).

    ``planted["wait_index"]`` is the op index of the wait the detector
    must report a cycle through; ``planted["rule"]`` the expected rule.
    """
    rng = random.Random(seed)
    streams = sorted(s for s in program.streams_used()
                     if s != DEFAULT_STREAM) or [1]
    mutant = _clone(program, "+cycle")
    at = _insert_at(mutant)
    e1 = _fresh_event(program)
    if len(streams) >= 2:
        sa, sb = rng.sample(streams, 2)
        e2 = e1 + 1
        planted_ops = [WaitEvent(event=e1, stream=sa),
                       # record e2 after the wait on A's FIFO...
                       _record(e2, sa),
                       # ...which B consumes before recording e1:
                       WaitEvent(event=e2, stream=sb),
                       _record(e1, sb)]
        rule = "deadlock/cycle"
    else:
        sa = streams[0]
        planted_ops = [WaitEvent(event=e1, stream=sa), _record(e1, sa)]
        rule = "deadlock/self-wait"
    mutant.ops[at:at] = planted_ops
    return mutant, {"wait_index": at, "event": e1, "rule": rule,
                    "streams": streams[:2], "seed": seed}


def _record(event: int, stream: int):
    from repro.analyze.program import RecordEvent
    return RecordEvent(event=event, stream=stream)


def inject_redundant_wait(program: DispatchProgram, seed: int = 0
                          ) -> tuple[DispatchProgram, dict]:
    """Plant one provably redundant wait; returns ``(mutant, planted)``.

    Preferred mutation: duplicate a live (backward-bound) wait directly
    after itself — the duplicate's edge is identical, hence implied.
    Programs with no waits (the barrier-synchronized zoo lowerings) get
    a record/wait pair spanning an existing ``synchronize`` instead: the
    barrier already orders the recording launch before the waiting one,
    so the planted edge is pure overhead.

    Raises :class:`AnalyzeError` when the program has neither a live
    wait nor a barrier with launches on both sides — there is nowhere to
    hide a redundant sync in a single unsynchronized block.
    """
    rng = random.Random(seed)
    ops = program.ops
    _, bindings = direct_dependencies(ops)
    live_waits = [i for i, b in bindings.items()
                  if b is not None and b < i]
    if live_waits:
        i = rng.choice(live_waits)
        wait: WaitEvent = ops[i]                    # type: ignore
        mutant = _clone(program, "+redundant")
        mutant.ops.insert(i + 1, WaitEvent(event=wait.event,
                                           stream=wait.stream))
        return mutant, {"wait_index": i + 1, "event": wait.event,
                        "kind": "duplicate-wait", "seed": seed}

    sync_idx = [i for i, op in enumerate(ops) if isinstance(op, SyncAll)]
    for k in rng.sample(sync_idx, len(sync_idx)) if sync_idx else []:
        before = [i for i, op in enumerate(ops[:k])
                  if isinstance(op, Launch) and op.stream != DEFAULT_STREAM]
        after = [i for i, op in enumerate(ops)
                 if i > k and isinstance(op, Launch)
                 and op.stream != DEFAULT_STREAM]
        if not before or not after:
            continue
        a = rng.choice(before)
        b = rng.choice(after)
        e = _fresh_event(program)
        mutant = _clone(program, "+redundant")
        # insert wait first so the record's index is still valid
        mutant.ops.insert(b, WaitEvent(event=e, stream=ops[b].stream))
        mutant.ops.insert(a + 1, _record(e, ops[a].stream))
        return mutant, {"wait_index": b + 1, "event": e,
                        "kind": "spurious-sync", "seed": seed}
    raise AnalyzeError(
        f"cannot plant a redundant wait in {program.name!r}: no live "
        f"wait to duplicate and no barrier spanning two launches")


@dataclass
class CrossCheckOutcome:
    """One planted mutation and whether the analyzer caught it."""

    program: str
    network: str
    plan: str
    kind: str          # "wait-cycle" | "redundant-wait"
    seed: int
    planted: dict
    caught: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"program": self.program, "network": self.network,
                "plan": self.plan, "kind": self.kind, "seed": self.seed,
                "planted": self.planted, "caught": self.caught,
                "detail": self.detail}


@dataclass
class CrossCheckReport:
    """Hit rates of the seeded mutant sweep."""

    seed: int
    rounds: int
    entries: list[CrossCheckOutcome] = field(default_factory=list)
    skipped: int = 0   # programs with nowhere to plant a redundant wait

    def _count(self, kind: str) -> tuple[int, int]:
        of_kind = [e for e in self.entries if e.kind == kind]
        return sum(1 for e in of_kind if e.caught), len(of_kind)

    @property
    def cycles_found(self) -> tuple[int, int]:
        return self._count("wait-cycle")

    @property
    def waits_elided(self) -> tuple[int, int]:
        return self._count("redundant-wait")

    @property
    def ok(self) -> bool:
        return all(e.caught for e in self.entries) and bool(self.entries)

    def to_dict(self) -> dict:
        cf, cp = self.cycles_found
        wf, wp = self.waits_elided
        return {
            "kind": "cross-check-report",
            "seed": self.seed, "rounds": self.rounds, "ok": self.ok,
            "cycles": {"planted": cp, "found": cf},
            "redundant_waits": {"planted": wp, "elided": wf},
            "skipped": self.skipped,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        cf, cp = self.cycles_found
        wf, wp = self.waits_elided
        lines = [e.detail for e in self.entries if not e.caught]
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"analyze cross-check: {verdict} ({cf}/{cp} planted cycles "
            f"found, {wf}/{wp} planted redundant waits elided, "
            f"{self.skipped} plant site(s) skipped; seed {self.seed}, "
            f"{self.rounds} round(s))")
        return "\n".join(lines)


def cross_check(programs: Sequence[tuple[str, str, DispatchProgram]],
                seed: int = 0, rounds: int = 2) -> CrossCheckReport:
    """Sweep both mutations over ``(network, plan, program)`` triples.

    Every program must be deadlock-free to begin with (the sweep targets
    the certified producers); a planted cycle must surface as a finding
    whose minimal cycle passes through the planted wait, and a planted
    redundant wait must raise the elider's removal count by exactly the
    plant.
    """
    report = CrossCheckReport(seed=seed, rounds=rounds)
    for network, plan, program in programs:
        if detect_deadlocks(program):
            raise AnalyzeError(
                f"cross-check input {program.name!r} is not clean")
        base_removed = minimize(program).waits_removed
        for r in range(rounds):
            s = seed * 1000003 + r
            mutant, planted = inject_wait_cycle(program, seed=s)
            findings = detect_deadlocks(mutant)
            hit = [f for f in findings if f.rule == planted["rule"]
                   and any(c.op_index == planted["wait_index"]
                           for c in f.cycle)]
            report.entries.append(CrossCheckOutcome(
                program=program.name, network=network, plan=plan,
                kind="wait-cycle", seed=s, planted=planted,
                caught=bool(hit),
                detail=("" if hit else
                        f"MISSED cycle in {mutant.name}: planted "
                        f"{planted}, findings "
                        f"{[f.rule for f in findings]}")))

            try:
                mutant2, planted2 = inject_redundant_wait(program, seed=s)
            except AnalyzeError:
                report.skipped += 1
                continue
            removed = minimize(mutant2).waits_removed
            caught = removed == base_removed + 1
            report.entries.append(CrossCheckOutcome(
                program=program.name, network=network, plan=plan,
                kind="redundant-wait", seed=s, planted=planted2,
                caught=caught,
                detail=("" if caught else
                        f"MISSED redundant wait in {mutant2.name}: "
                        f"planted {planted2}, removed {removed} vs "
                        f"baseline {base_removed}")))
    return report


def default_cross_check(seed: int = 0, rounds: int = 2,
                        device: str = "p100",
                        networks: Sequence[str] = ("cifar10",),
                        pool_size: int = 4, batch: int = 2
                        ) -> CrossCheckReport:
    """Cross-check over the standard producers (zoo + interop plans)."""
    from repro.analyze.deadlock import interop_programs
    from repro.analyze.plans import build_programs
    triples: list[tuple[str, str, DispatchProgram]] = []
    for network in networks:
        for program in build_programs(network, plan="round-robin",
                                      pool_size=pool_size, batch=batch,
                                      seed=seed, device=device):
            triples.append((network, "round-robin", program))
    triples.extend(interop_programs(batch=batch, device=device,
                                    streams=pool_size))
    return cross_check(triples, seed=seed, rounds=rounds)
