"""Stream-hazard race detection over dispatch programs.

For every memory region a program touches, collect its accesses in issue
order and flag each conflicting pair (at least one write) that the
happens-before relation (:func:`repro.analyze.program.happens_before`)
does not order: a RAW, WAR or WAW hazard.  Each hazard carries a minimal
witness — the two kernels, the shared buffer(s), and the missing sync
edge — and the report serializes to JSON/SARIF for CI.

The check is *sound for the modelled effects*: happens-before covers all
interleavings the engine could legally produce (stream FIFO, default
barriers, syncs, event edges), so a clean verdict certifies the plan for
every schedule, not just the ones a fuzzer happens to sample.  The
converse cross-check — a statically flagged sync-deletion mutant must
also fail dynamically — lives in :mod:`repro.analyze.mutate` and the
``repro.verify`` replay harness.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analyze.plans import PLAN_KINDS, ZOO_NETWORKS, build_programs
from repro.analyze.program import DispatchProgram, Launch, happens_before

#: Cap on shared regions listed per hazard witness (full set in counts).
_MAX_REGIONS = 6


@dataclass(frozen=True)
class Hazard:
    """One unordered conflicting kernel pair: the minimal race witness."""

    kind: str                 # "RAW" | "WAR" | "WAW"
    first: str                # kernel issued earlier
    second: str               # kernel issued later
    first_layer: str
    second_layer: str
    first_stream: int
    second_stream: int
    first_index: int          # op indices in the program
    second_index: int
    regions: tuple[str, ...]  # shared buffers (capped at _MAX_REGIONS)
    region_count: int
    missing: str              # the absent sync edge, human-readable

    def describe(self) -> str:
        extra = ("" if self.region_count <= len(self.regions)
                 else f" (+{self.region_count - len(self.regions)} more)")
        return (f"[{self.kind}] {self.first} (stream {self.first_stream}, "
                f"{self.first_layer}) vs {self.second} "
                f"(stream {self.second_stream}, {self.second_layer}) on "
                f"{', '.join(self.regions)}{extra}: {self.missing}")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "first": {"kernel": self.first, "layer": self.first_layer,
                      "stream": self.first_stream,
                      "op_index": self.first_index},
            "second": {"kernel": self.second, "layer": self.second_layer,
                       "stream": self.second_stream,
                       "op_index": self.second_index},
            "regions": list(self.regions),
            "region_count": self.region_count,
            "missing": self.missing,
        }


def detect(program: DispatchProgram) -> list[Hazard]:
    """All RAW/WAR/WAW pairs of ``program`` not ordered by happens-before.

    Hazards are deduplicated per (kernel pair, kind): a pair racing on
    many per-sample regions is one witness listing the shared buffers.
    """
    ops = program.ops
    hb = happens_before(ops)
    by_region: dict[str, list[tuple[int, bool]]] = {}
    for i, op in enumerate(ops):
        if not isinstance(op, Launch):
            continue
        for r in op.reads:
            by_region.setdefault(r, []).append((i, False))
        for r in op.writes:
            by_region.setdefault(r, []).append((i, True))

    pairs: dict[tuple[int, int, str], list[str]] = {}
    for region in sorted(by_region):
        accs = by_region[region]
        if not any(w for _, w in accs):
            continue
        for a in range(len(accs)):
            ia, wa = accs[a]
            for b in range(a + 1, len(accs)):
                ib, wb = accs[b]
                if ia == ib or not (wa or wb):
                    continue
                if ((hb[ib] >> ia) & 1) or ((hb[ia] >> ib) & 1):
                    continue
                kind = "WAW" if (wa and wb) else ("RAW" if wa else "WAR")
                pairs.setdefault((ia, ib, kind), []).append(region)

    hazards = []
    for (ia, ib, kind), regions in sorted(pairs.items()):
        first: Launch = ops[ia]          # type: ignore[assignment]
        second: Launch = ops[ib]         # type: ignore[assignment]
        missing = (
            f"no happens-before edge orders them; add a layer_sync "
            f"barrier between {first.layer or first.kernel} and "
            f"{second.layer or second.kernel}, or record an event on "
            f"stream {first.stream} after {first.kernel} and wait on it "
            f"on stream {second.stream}"
        )
        hazards.append(Hazard(
            kind=kind, first=first.kernel, second=second.kernel,
            first_layer=first.layer, second_layer=second.layer,
            first_stream=first.stream, second_stream=second.stream,
            first_index=ia, second_index=ib,
            regions=tuple(sorted(regions)[:_MAX_REGIONS]),
            region_count=len(regions), missing=missing,
        ))
    return hazards


@dataclass
class ProgramVerdict:
    """Hazard verdict for one program (one network × plan × context)."""

    program: str
    network: str
    plan: str
    ops: int
    launches: int
    hazards: list[Hazard] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.hazards

    def to_dict(self) -> dict:
        return {
            "program": self.program, "network": self.network,
            "plan": self.plan, "ops": self.ops, "launches": self.launches,
            "ok": self.ok, "suppressed": self.suppressed,
            "hazards": [h.to_dict() for h in self.hazards],
        }


@dataclass
class HazardReport:
    """Outcome of one ``repro analyze hazards`` pass."""

    device: str
    pool_size: int
    batch: int
    seed: int
    entries: list[ProgramVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    @property
    def hazard_count(self) -> int:
        return sum(len(e.hazards) for e in self.entries)

    @property
    def suppressed(self) -> int:
        return sum(e.suppressed for e in self.entries)

    def to_dict(self) -> dict:
        return {
            "kind": "hazard-report",
            "device": self.device, "pool_size": self.pool_size,
            "batch": self.batch, "seed": self.seed, "ok": self.ok,
            "hazards": self.hazard_count, "suppressed": self.suppressed,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        lines = []
        for e in self.entries:
            status = "OK" if e.ok else f"{len(e.hazards)} hazard(s)"
            lines.append(f"  {e.program}: {e.launches} launch(es) over "
                         f"{e.ops} op(s) — {status}")
            for h in e.hazards[:10]:
                lines.append(f"    {h.describe()}")
            if len(e.hazards) > 10:
                lines.append(f"    ... and {len(e.hazards) - 10} more")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"analyze hazards: {verdict} ({len(self.entries)} program(s), "
            f"{self.hazard_count} hazard(s), {self.suppressed} suppressed; "
            f"device {self.device}, pool {self.pool_size}, "
            f"batch {self.batch}, seed {self.seed})")
        return "\n".join(lines)


def verdict_for(program: DispatchProgram, network: str = "",
                plan: str = "") -> ProgramVerdict:
    """Run the detector over one program and wrap the result.

    Hazards whose rule id (``hazard/<kind>``) is in the program's
    suppression set (:meth:`DispatchProgram.allow`) are dropped from the
    verdict but counted in ``suppressed``.
    """
    kept: list[Hazard] = []
    suppressed = 0
    for h in detect(program):
        if program.is_allowed(f"hazard/{h.kind}"):
            suppressed += 1
        else:
            kept.append(h)
    return ProgramVerdict(
        program=program.name, network=network, plan=plan,
        ops=len(program), launches=len(program.launches()),
        hazards=kept, suppressed=suppressed,
    )


def analyze_networks(networks: Sequence[str] = ZOO_NETWORKS,
                     plans: Sequence[str] = ("round-robin",),
                     device: str = "p100",
                     pool_size: int = 4,
                     batch: int = 4,
                     seed: int = 0) -> HazardReport:
    """Certify every (network, plan) pair; the ``analyze hazards`` driver."""
    report = HazardReport(device=device, pool_size=pool_size, batch=batch,
                          seed=seed)
    for network in networks:
        for plan in plans:
            for program in build_programs(network, plan=plan,
                                          pool_size=pool_size, batch=batch,
                                          seed=seed, device=device):
                report.entries.append(
                    verdict_for(program, network=network, plan=plan))
    return report
