"""The determinism rule catalog (see ``docs/static_analysis.md``).

Every rule here guards the property the whole repo exists to reproduce —
bit-identical runs.  They are deliberately syntactic and conservative:
each matches the concrete idioms that have caused (or would cause) the
differential harness to trip, and anything intentional is silenced at
the use site with ``# repro: allow(<rule>)``, keeping exceptions visible
in the diff.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analyze.lint import LintRule

#: numpy legacy global-state samplers (np.random.<fn> without a Generator).
_NP_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "bytes",
})

#: stdlib ``random`` module-level samplers (the shared global Random()).
_PY_GLOBAL_FNS = frozenset({
    "random", "randrange", "randint", "uniform", "gauss", "choice",
    "choices", "sample", "shuffle", "betavariate", "expovariate",
    "normalvariate", "triangular", "randbytes", "getrandbits",
})

#: wall-clock reads that leak host time into simulated state.
_WALL_CLOCK_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns",
})

#: call names that constitute a synchronization edge between streams.
_SYNC_NAMES = frozenset({
    "synchronize", "stream_synchronize", "event_synchronize",
    "record_event", "wait_event", "layer_sync",
})


def _attr_root(node: ast.expr) -> str:
    """``a.b.c`` -> ``a`` (empty for non-name roots)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


class UnseededRngRule(LintRule):
    """Unseeded/global RNG construction or use.

    Flags argument-less ``random.Random()`` / ``np.random.default_rng()``
    / ``np.random.RandomState()`` (entropy-seeded → run-dependent) and
    any module-level sampler on the stdlib ``random`` or legacy
    ``np.random`` global state.
    """

    name = "unseeded-rng"
    description = ("RNG constructed without a seed, or global RNG state "
                   "sampled directly")

    def check(self, tree, source, path):
        hits = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            # random.<fn>(...)
            if isinstance(value, ast.Name) and value.id == "random":
                if func.attr == "Random" and not node.args:
                    hits.append((node.lineno,
                                 "random.Random() without a seed is "
                                 "entropy-seeded; pass an explicit seed"))
                elif func.attr in _PY_GLOBAL_FNS:
                    hits.append((node.lineno,
                                 f"random.{func.attr}() samples the global "
                                 "RNG; use a seeded random.Random "
                                 "instance"))
                continue
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            is_np_random = (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and _attr_root(value) in ("np", "numpy")
            )
            if is_np_random:
                if func.attr in ("default_rng", "RandomState", "Generator") \
                        and not node.args:
                    hits.append((node.lineno,
                                 f"np.random.{func.attr}() without a seed "
                                 "is entropy-seeded; pass an explicit "
                                 "seed"))
                elif func.attr in _NP_GLOBAL_FNS:
                    hits.append((node.lineno,
                                 f"np.random.{func.attr}() samples numpy's "
                                 "global state; use a seeded Generator "
                                 "(np.random.default_rng(seed))"))
        return hits


class WallClockRule(LintRule):
    """Wall-clock reads in the simulated paths.

    The simulator, analyzers and verification harnesses must be pure
    functions of their inputs — host time reaching any simulated
    quantity makes runs non-replayable.  Use the simulated clocks
    (``gpu.host_time`` / ``gpu.now``) or deterministic work counters.
    """

    name = "wall-clock"
    description = ("wall-clock read (time.time/perf_counter/...) in a "
                   "simulated path")
    scope = ("core", "gpusim", "verify")

    def check(self, tree, source, path):
        hits = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            if isinstance(value, ast.Name) and value.id == "time" \
                    and func.attr in _WALL_CLOCK_FNS:
                hits.append((node.lineno,
                             f"time.{func.attr}() reads the wall clock; "
                             "derive timing from the simulated clock or "
                             "deterministic counters"))
            elif func.attr in ("now", "utcnow") \
                    and _attr_root(func.value) in ("datetime", "dt"):
                hits.append((node.lineno,
                             f"datetime {func.attr}() reads the wall "
                             "clock; pass timestamps in explicitly"))
        return hits


class UnorderedIterationRule(LintRule):
    """Iteration over an unordered set.

    Set iteration order depends on element hashes (and for str, on
    ``PYTHONHASHSEED``); anywhere that order can reach a fingerprint,
    a report, or dispatch order it breaks replayability.  Wrap the
    iterable in ``sorted(...)``.
    """

    name = "unordered-iteration"
    description = "for-loop or comprehension over a set (unordered)"

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            # set algebra: s1 | s2, s1 & s2, s1 - s2 ...
            return (UnorderedIterationRule._is_set_expr(node.left)
                    or UnorderedIterationRule._is_set_expr(node.right))
        return False

    def check(self, tree, source, path):
        hits = []
        message = ("iterating an unordered set; wrap in sorted(...) so "
                   "downstream order is deterministic")
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and self._is_set_expr(node.iter):
                hits.append((node.lineno, message))
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.SetComp, ast.DictComp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter):
                        hits.append((node.lineno, message))
        return hits


class MissingLayerSyncRule(LintRule):
    """Multi-stream dispatch with no synchronization edge.

    A heuristic shadow of the hazard detector for hand-written
    dispatchers: a function that launches onto two or more distinct
    non-default streams (or onto a stream expression that varies inside
    a loop) but contains no synchronize/event primitive and no
    default-stream launch (an implicit barrier) almost certainly misses
    its layer_sync.
    """

    name = "missing-layer-sync"
    description = ("function launches on multiple streams without any "
                   "sync edge")

    def check(self, tree, source, path):
        hits = []
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stream_exprs: set[str] = set()
            varying = False
            has_sync = False
            default_launch = False
            first_line = None
            loop_depth_of: dict[int, int] = {}

            def _loops(node, depth=0):
                loop_depth_of[id(node)] = depth
                for child in ast.iter_child_nodes(node):
                    _loops(child, depth + isinstance(
                        node, (ast.For, ast.While, ast.AsyncFor)))

            _loops(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                name = (node.func.attr
                        if isinstance(node.func, ast.Attribute)
                        else node.func.id
                        if isinstance(node.func, ast.Name) else "")
                if name in _SYNC_NAMES or "sync" in name:
                    has_sync = True
                if name != "launch":
                    continue
                stream_kw = next((kw for kw in node.keywords
                                  if kw.arg == "stream"), None)
                if stream_kw is None or (
                        isinstance(stream_kw.value, ast.Constant)
                        and stream_kw.value.value is None):
                    default_launch = True
                    continue
                if first_line is None:
                    first_line = node.lineno
                stream_exprs.add(ast.dump(stream_kw.value))
                if isinstance(stream_kw.value, (ast.Subscript, ast.Call)) \
                        and loop_depth_of.get(id(node), 0) > 0:
                    varying = True
            multi = len(stream_exprs) >= 2 or varying
            if multi and not has_sync and not default_launch \
                    and first_line is not None:
                hits.append((
                    first_line,
                    f"{fn.name}() launches onto multiple streams but has "
                    "no synchronize/event edge and no default-stream "
                    "barrier; add a layer_sync"))
        return hits


DEFAULT_RULES: tuple[LintRule, ...] = (
    UnseededRngRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    MissingLayerSyncRule(),
)
