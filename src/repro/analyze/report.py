"""Combined ``repro analyze`` report (hazards + deadlock + elision + lint).

Mirrors :class:`repro.verify.report.VerifyReport`: one object that holds
whichever passes ran, renders as text or JSON through the shared
:mod:`repro.reporting` helpers, and decides the process exit code via
``ok``.

The report also carries the CI **findings baseline**: ``counts()``
summarizes each pass as a small dict of integers, and
:func:`check_baseline` compares a run against a committed baseline file
(``results/analyze_baseline.json``), failing the gate on any *new*
finding while allowing the recorded ones — so the analyzer can be
adopted incrementally without a flag day, exactly like a lint baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.analyze.deadlock import DeadlockReport
from repro.analyze.elide import ElisionReport
from repro.analyze.hazards import HazardReport
from repro.analyze.inject import CrossCheckReport
from repro.analyze.lint import LintReport


@dataclass
class AnalyzeReport:
    """Everything one ``repro analyze`` invocation produced."""

    hazards: Optional[HazardReport] = None
    deadlock: Optional[DeadlockReport] = None
    elision: Optional[ElisionReport] = None
    crosscheck: Optional[CrossCheckReport] = None
    lint: Optional[LintReport] = None

    @property
    def ok(self) -> bool:
        for part in (self.hazards, self.deadlock, self.elision,
                     self.crosscheck, self.lint):
            if part is not None and not part.ok:
                return False
        return True

    def counts(self) -> dict:
        """Findings summary, the unit the CI baseline gate compares."""
        c: dict[str, int] = {}
        if self.hazards is not None:
            c["hazards"] = sum(len(e.hazards)
                               for e in self.hazards.entries)
            c["hazards_suppressed"] = self.hazards.suppressed
        if self.deadlock is not None:
            c["deadlock_findings"] = self.deadlock.finding_count
            c["deadlock_suppressed"] = self.deadlock.suppressed
        if self.elision is not None:
            c["not_equivalent"] = sum(
                1 for e in self.elision.entries if not e.equivalent)
        if self.crosscheck is not None:
            cf, cp = self.crosscheck.cycles_found
            wf, wp = self.crosscheck.waits_elided
            c["cycles_missed"] = cp - cf
            c["redundant_waits_missed"] = wp - wf
        if self.lint is not None:
            c["lint_violations"] = len(self.lint.violations)
        return c

    def to_dict(self) -> dict:
        return {
            "kind": "analyze-report",
            "ok": self.ok,
            "counts": self.counts(),
            "hazards": (None if self.hazards is None
                        else self.hazards.to_dict()),
            "deadlock": (None if self.deadlock is None
                         else self.deadlock.to_dict()),
            "elision": (None if self.elision is None
                        else self.elision.to_dict()),
            "crosscheck": (None if self.crosscheck is None
                           else self.crosscheck.to_dict()),
            "lint": None if self.lint is None else self.lint.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        sections = []
        for part in (self.hazards, self.deadlock, self.elision,
                     self.crosscheck, self.lint):
            if part is not None:
                sections.append(part.render())
        verdict = "PASS" if self.ok else "FAIL"
        sections.append(f"analyze: {verdict}")
        return "\n".join(sections)

    def save_sarif(self, path: Union[str, Path]) -> str:
        from repro.analyze.sarif import save_sarif
        return save_sarif(path, hazards=self.hazards,
                          deadlock=self.deadlock, elision=self.elision,
                          lint=self.lint)


def baseline_dict(report: AnalyzeReport) -> dict:
    """The committable baseline for one run (``--update-baseline``)."""
    return {"kind": "analyze-baseline", "counts": report.counts()}


def check_baseline(report: AnalyzeReport,
                   baseline: dict) -> list[str]:
    """Regressions of ``report`` against a committed baseline.

    A pass regresses when its *finding* count exceeds the recorded one
    (counts missing from the baseline default to 0, so brand-new passes
    gate at zero findings).  Improvements — fewer findings than recorded
    — never fail; refresh the baseline to ratchet them in.
    """
    recorded = baseline.get("counts", {})
    problems: list[str] = []
    for key, current in sorted(report.counts().items()):
        allowed = int(recorded.get(key, 0))
        if current > allowed:
            problems.append(
                f"{key}: {current} finding(s) vs baseline {allowed}")
    return problems


def load_baseline(path: Union[str, Path]) -> dict:
    """Read a baseline file, raising ``AnalyzeError`` on malformed input."""
    from repro.errors import AnalyzeError
    p = Path(path)
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as e:
        raise AnalyzeError(f"cannot read analyze baseline {p}: {e}") from e
    if not isinstance(doc, dict) or doc.get("kind") != "analyze-baseline":
        raise AnalyzeError(
            f"{p} is not an analyze baseline (expected kind="
            f"'analyze-baseline')")
    return doc


def save_baseline(report: AnalyzeReport, path: Union[str, Path]) -> str:
    p = Path(path)
    p.write_text(json.dumps(baseline_dict(report), indent=1) + "\n",
                 encoding="utf-8")
    return str(p)
