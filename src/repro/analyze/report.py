"""Combined ``repro analyze`` report (hazards + lint).

Mirrors :class:`repro.verify.report.VerifyReport`: one object that holds
whichever passes ran, renders as text or JSON through the shared
:mod:`repro.reporting` helpers, and decides the process exit code via
``ok``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.analyze.hazards import HazardReport
from repro.analyze.lint import LintReport


@dataclass
class AnalyzeReport:
    """Everything one ``repro analyze`` invocation produced."""

    hazards: Optional[HazardReport] = None
    lint: Optional[LintReport] = None

    @property
    def ok(self) -> bool:
        if self.hazards is not None and not self.hazards.ok:
            return False
        if self.lint is not None and not self.lint.ok:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "kind": "analyze-report",
            "ok": self.ok,
            "hazards": (None if self.hazards is None
                        else self.hazards.to_dict()),
            "lint": None if self.lint is None else self.lint.to_dict(),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        sections = []
        if self.hazards is not None:
            sections.append(self.hazards.render())
        if self.lint is not None:
            sections.append(self.lint.render())
        verdict = "PASS" if self.ok else "FAIL"
        sections.append(f"analyze: {verdict}")
        return "\n".join(sections)

    def save_sarif(self, path: Union[str, Path]) -> str:
        from repro.analyze.sarif import save_sarif
        return save_sarif(path, hazards=self.hazards, lint=self.lint)
