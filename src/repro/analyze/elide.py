"""Certified sync-elision: remove event waits happens-before implies.

Opara's observation (PAPERS.md) is that synchronization is itself a
first-order cost: every cross-stream dependency edge a planner emits
costs an event record plus a wait of host time, and many of those edges
are *redundant* — already implied by stream FIFO order, a barrier, or
another event edge.  This pass computes which waits the happens-before
relation proves removable and emits a minimized program.

The certificate is the **launch closure**: the happens-before relation
projected onto the program's launches (which elision never removes, so
launch ordinals are stable), together with the per-stream launch
sequences.  A wait is *redundant* iff deleting it leaves the launch
closure bit-for-bit identical — every ordering the original program
guaranteed between two kernels is still guaranteed, and no new ordering
appears.  Since the race detector's verdict and the engine's observable
execution order both depend on the program only through that closure,
equality is exactly the "replays identically" guarantee
(:mod:`repro.verify.elision_equiv` re-checks it dynamically).

The pass is greedy in issue order over the transitive reduction: each
wait is tentatively deleted and kept out only if the closure is
unchanged; records whose every bound wait was elided are then dropped as
orphans (a record with no wait is pure host overhead), again under the
same closure check.  :func:`certified_minimize` wraps the pass with the
full certificate: deadlock-freedom of the input, closure equality,
identical launch sequences, and a hazard-verdict match from the race
detector on the minimized program.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analyze.hazards import detect
from repro.analyze.program import (DispatchOp, DispatchProgram, Launch,
                                   RecordEvent, WaitEvent, happens_before)
from repro.errors import AnalyzeError

#: SARIF rule id for an elided (provably redundant) synchronization op.
ELIDE_RULE = "elide/redundant-sync"


@dataclass(frozen=True)
class ElidedOp:
    """One removed synchronization op, with its justification."""

    op_index: int       # index in the *original* program
    kind: str           # "wait" | "record"
    stream: int
    event: int
    reason: str         # "implied-by-happens-before" | "orphaned-record"

    def describe(self) -> str:
        return (f"op {self.op_index}: {self.kind} event {self.event} "
                f"on stream {self.stream} — {self.reason}")

    def to_dict(self) -> dict:
        return {"op_index": self.op_index, "kind": self.kind,
                "stream": self.stream, "event": self.event,
                "reason": self.reason}


def launch_closure(ops: Sequence[DispatchOp]) -> tuple:
    """The elision certificate: launch order per stream + hb projection.

    Returns ``(sequences, closure)`` where ``sequences`` is the tuple of
    per-stream ``(kernel, chain)`` launch sequences (sorted by stream id)
    and ``closure[j]`` is the frozenset of launch *ordinals* that happen
    before launch ordinal ``j``.  Ordinals index launches in issue order,
    so the certificate is invariant under inserting/removing non-launch
    ops — exactly the moves elision makes.
    """
    hb = happens_before(list(ops))
    launch_idx = [i for i, op in enumerate(ops) if isinstance(op, Launch)]
    ordinal = {i: j for j, i in enumerate(launch_idx)}
    closure = tuple(
        frozenset(ordinal[p] for p in launch_idx if (hb[i] >> p) & 1)
        for i in launch_idx)
    by_stream: dict[int, list[tuple[str, int]]] = {}
    for i in launch_idx:
        op = ops[i]
        by_stream.setdefault(op.stream, []).append((op.kernel, op.chain))
    sequences = tuple((s, tuple(by_stream[s])) for s in sorted(by_stream))
    return sequences, closure


@dataclass
class ElisionResult:
    """Outcome of minimizing one program."""

    original: DispatchProgram
    minimized: DispatchProgram
    removed: list[ElidedOp] = field(default_factory=list)
    waits_checked: int = 0
    equivalent: bool = False   # set by the certified closure re-check

    @property
    def waits_removed(self) -> int:
        return sum(1 for r in self.removed if r.kind == "wait")

    @property
    def records_removed(self) -> int:
        return sum(1 for r in self.removed if r.kind == "record")

    def to_dict(self) -> dict:
        return {
            "program": self.original.name,
            "ops_before": len(self.original),
            "ops_after": len(self.minimized),
            "waits_checked": self.waits_checked,
            "waits_removed": self.waits_removed,
            "records_removed": self.records_removed,
            "equivalent": self.equivalent,
            "removed": [r.to_dict() for r in self.removed],
        }


def minimize(program: DispatchProgram) -> ElisionResult:
    """Transitive-reduction sync elision over one program.

    Greedily deletes each event wait whose removal provably leaves the
    launch closure unchanged, then drops records no remaining wait binds
    to.  Refuses deadlocked inputs: a mis-ordered record/wait pair has no
    well-defined intended closure to preserve.
    """
    from repro.analyze.deadlock import detect_deadlocks
    blockers = detect_deadlocks(program)
    if blockers:
        raise AnalyzeError(
            f"refusing to minimize {program.name!r}: "
            f"{len(blockers)} deadlock finding(s) — fix "
            f"{blockers[0].rule} at op {blockers[0].wait_index} first")

    base = launch_closure(program.ops)
    # Track ops by identity so indices stay meaningful as we delete.
    kept: list[tuple[int, DispatchOp]] = list(enumerate(program.ops))
    removed: list[ElidedOp] = []
    waits_checked = 0

    def closure_of(items: list[tuple[int, DispatchOp]]) -> tuple:
        return launch_closure([op for _, op in items])

    for orig_idx, op in list(kept):
        if not isinstance(op, WaitEvent):
            continue
        waits_checked += 1
        candidate = [(i, o) for i, o in kept if i != orig_idx]
        if closure_of(candidate) == base:
            kept = candidate
            removed.append(ElidedOp(
                op_index=orig_idx, kind="wait", stream=op.stream,
                event=op.event, reason="implied-by-happens-before"))

    # Orphaned records: no surviving wait binds to them.  Binding is
    # latest-record-before-wait, so walk the kept list in order.
    bound: set[int] = set()
    latest: dict[int, int] = {}
    for orig_idx, op in kept:
        if isinstance(op, RecordEvent):
            latest[op.event] = orig_idx
        elif isinstance(op, WaitEvent) and op.event in latest:
            bound.add(latest[op.event])
    for orig_idx, op in list(kept):
        if isinstance(op, RecordEvent) and orig_idx not in bound:
            candidate = [(i, o) for i, o in kept if i != orig_idx]
            if closure_of(candidate) == base:
                kept = candidate
                removed.append(ElidedOp(
                    op_index=orig_idx, kind="record", stream=op.stream,
                    event=op.event, reason="orphaned-record"))

    minimized = DispatchProgram(
        name=f"{program.name}+min",
        ops=[op for _, op in kept],
        allowed=set(program.allowed))
    removed.sort(key=lambda r: r.op_index)
    result = ElisionResult(original=program, minimized=minimized,
                           removed=removed, waits_checked=waits_checked)
    result.equivalent = launch_closure(minimized.ops) == base
    return result


def assert_equivalent(result: ElisionResult) -> None:
    """The full certificate; raises :class:`AnalyzeError` on any breach.

    Checks (1) launch sequences and happens-before closure are
    bit-identical, (2) no launch was touched, and (3) the race detector
    returns the same hazard set on the minimized program — a minimized
    program of a certified plan stays certified.
    """
    orig, mini = result.original, result.minimized
    if launch_closure(orig.ops) != launch_closure(mini.ops):
        raise AnalyzeError(
            f"elision broke the launch closure of {orig.name!r}")
    launches_o = [(op.kernel, op.stream, op.chain)
                  for _, op in orig.launches()]
    launches_m = [(op.kernel, op.stream, op.chain)
                  for _, op in mini.launches()]
    if launches_o != launches_m:
        raise AnalyzeError(
            f"elision touched a launch of {orig.name!r}")
    haz_o = [(h.kind, h.first_index, h.second_index)
             for h in detect(orig)]
    haz_m_raw = detect(mini)
    if len(haz_m_raw) != len(haz_o):
        raise AnalyzeError(
            f"elision changed the hazard verdict of {orig.name!r}: "
            f"{len(haz_o)} -> {len(haz_m_raw)} hazard(s)")


def certified_minimize(program: DispatchProgram) -> ElisionResult:
    """Minimize and certify; the only entry point producers should use."""
    result = minimize(program)
    assert_equivalent(result)
    return result


@dataclass
class ElisionEntry:
    """Per-program row of an ``analyze minimize`` pass."""

    program: str
    network: str
    plan: str
    ops_before: int
    ops_after: int
    waits_before: int
    waits_removed: int
    records_removed: int
    equivalent: bool
    removed: list[ElidedOp] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.equivalent

    def to_dict(self) -> dict:
        return {
            "program": self.program, "network": self.network,
            "plan": self.plan, "ops_before": self.ops_before,
            "ops_after": self.ops_after,
            "waits_before": self.waits_before,
            "waits_removed": self.waits_removed,
            "records_removed": self.records_removed,
            "equivalent": self.equivalent,
            "removed": [r.to_dict() for r in self.removed],
        }


@dataclass
class ElisionReport:
    """Outcome of one ``repro analyze minimize`` pass."""

    device: str
    pool_size: int
    batch: int
    seed: int
    entries: list[ElisionEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    @property
    def waits_removed(self) -> int:
        return sum(e.waits_removed for e in self.entries)

    @property
    def records_removed(self) -> int:
        return sum(e.records_removed for e in self.entries)

    def to_dict(self) -> dict:
        return {
            "kind": "elision-report",
            "device": self.device, "pool_size": self.pool_size,
            "batch": self.batch, "seed": self.seed, "ok": self.ok,
            "waits_removed": self.waits_removed,
            "records_removed": self.records_removed,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        lines = []
        for e in self.entries:
            status = "certified" if e.equivalent else "NOT EQUIVALENT"
            lines.append(
                f"  {e.program}: {e.waits_removed}/{e.waits_before} "
                f"wait(s) + {e.records_removed} record(s) elided, "
                f"{e.ops_before} -> {e.ops_after} op(s) — {status}")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"analyze minimize: {verdict} ({len(self.entries)} "
            f"program(s), {self.waits_removed} wait(s) + "
            f"{self.records_removed} record(s) removed; device "
            f"{self.device}, pool {self.pool_size}, batch {self.batch}, "
            f"seed {self.seed})")
        return "\n".join(lines)


def _entry(result: ElisionResult, network: str, plan: str) -> ElisionEntry:
    waits_before = sum(1 for op in result.original.ops
                       if isinstance(op, WaitEvent))
    return ElisionEntry(
        program=result.original.name, network=network, plan=plan,
        ops_before=len(result.original), ops_after=len(result.minimized),
        waits_before=waits_before, waits_removed=result.waits_removed,
        records_removed=result.records_removed,
        equivalent=result.equivalent, removed=list(result.removed))


def minimize_networks(networks: Sequence[str] = (),
                      plans: Sequence[str] = ("round-robin",),
                      device: str = "p100",
                      pool_size: int = 4,
                      batch: int = 4,
                      seed: int = 0,
                      include_interop: bool = True) -> ElisionReport:
    """Minimize every plan producer; the ``analyze minimize`` driver.

    Zoo programs synchronize with barriers, not events, so elision is a
    certified no-op there; the interop lowerings are where redundant
    waits actually fall out (multiple cross-stream join edges landing on
    one producer stream).
    """
    from repro.analyze.deadlock import interop_programs
    from repro.analyze.plans import build_programs
    report = ElisionReport(device=device, pool_size=pool_size,
                           batch=batch, seed=seed)
    for network in networks:
        for plan in plans:
            for program in build_programs(network, plan=plan,
                                          pool_size=pool_size, batch=batch,
                                          seed=seed, device=device):
                result = certified_minimize(program)
                report.entries.append(_entry(result, network, plan))
    if include_interop:
        for network, plan, program in interop_programs(
                batch=min(batch, 2), device=device, streams=pool_size):
            result = certified_minimize(program)
            report.entries.append(_entry(result, network, plan))
    return report
