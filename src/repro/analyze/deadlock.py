"""Static deadlock detection over dispatch programs.

The happens-before fold in :mod:`repro.analyze.program` deliberately
mirrors the engine's *permissive* CUDA semantics: a wait on an event
with no prior record gates nothing, so a mis-ordered record/wait pair
silently loses its edge instead of hanging.  That permissiveness is
exactly what makes such bugs invisible to the race detector — the plan
"runs", just without the synchronization its author intended.

This module checks the *strict* semantics the plan author meant: every
``WaitEvent`` must be satisfiable by a record, and satisfying all waits
must not require a cyclic schedule.  Each wait is classified by its
binding:

* a record of the same event issued **before** the wait → a normal
  backward edge (the engine wires this one too);
* no prior record but a record issued **later** → the wait can only be
  satisfied by a record that the dispatch order places after it — a
  ``deadlock/record-after-wait`` ordering bug.  The forward edge
  (wait depends on the later record) joins cycle detection, because on
  a driver with strict stream-wait semantics it *is* a dependency;
* no record at all → ``deadlock/never-recorded``: the wait is dead
  (permissive) or hangs forever (strict).

Cycle detection runs over the direct-dependency graph (stream FIFO,
default-stream barriers, ``synchronize`` joins, backward bindings) plus
the forward edges.  Every cycle is reported with a minimal witness — the
shortest op cycle through the offending wait, in the same
kernel/stream/op-index shape as the PR5 hazard witnesses — under
``deadlock/self-wait`` when the cycle never leaves one stream (the
pool-of-1 degeneration) or ``deadlock/cycle`` otherwise.

A program with **no findings** is certified deadlock-free for strict
semantics, which implies the permissive engine executes every intended
edge; :mod:`repro.graphs.admission` and :mod:`repro.interop.certify`
require that certificate before replay.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analyze.plans import ZOO_NETWORKS, build_programs
from repro.analyze.program import (DEFAULT_STREAM, DispatchOp,
                                   DispatchProgram, Launch, RecordEvent,
                                   SyncAll, WaitEvent)

#: Rule ids emitted by this detector (also SARIF rule ids).
DEADLOCK_RULES = ("deadlock/cycle", "deadlock/self-wait",
                  "deadlock/record-after-wait", "deadlock/never-recorded")


@dataclass(frozen=True)
class CycleOp:
    """One op on a deadlock cycle witness."""

    op_index: int
    kind: str       # "launch" | "sync" | "record" | "wait"
    stream: int
    event: int = -1
    kernel: str = ""
    layer: str = ""

    def describe(self) -> str:
        if self.kind == "launch":
            where = self.layer or self.kernel
            return f"op {self.op_index}: launch {self.kernel} ({where}) on stream {self.stream}"
        if self.kind == "sync":
            return f"op {self.op_index}: synchronize"
        return (f"op {self.op_index}: {self.kind} event {self.event} "
                f"on stream {self.stream}")

    def to_dict(self) -> dict:
        d = {"op_index": self.op_index, "kind": self.kind,
             "stream": self.stream}
        if self.event >= 0:
            d["event"] = self.event
        if self.kernel:
            d["kernel"] = self.kernel
        if self.layer:
            d["layer"] = self.layer
        return d


@dataclass(frozen=True)
class DeadlockFinding:
    """One unsatisfiable or mis-ordered wait: the minimal cycle witness."""

    rule: str                  # one of DEADLOCK_RULES
    wait_index: int            # op index of the offending WaitEvent
    event: int
    stream: int
    cycle: tuple[CycleOp, ...]  # minimal op cycle; empty when acyclic
    missing: str               # the fix, human-readable

    def describe(self) -> str:
        head = (f"[{self.rule}] wait on event {self.event} "
                f"(stream {self.stream}, op {self.wait_index})")
        if self.cycle:
            loop = " -> ".join(c.describe() for c in self.cycle)
            return f"{head}: cycle {loop} -> (back to start); {self.missing}"
        return f"{head}: {self.missing}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule, "wait_index": self.wait_index,
            "event": self.event, "stream": self.stream,
            "cycle": [c.to_dict() for c in self.cycle],
            "missing": self.missing,
        }


def _cycle_op(ops: Sequence[DispatchOp], i: int) -> CycleOp:
    op = ops[i]
    if isinstance(op, Launch):
        return CycleOp(op_index=i, kind="launch", stream=op.stream,
                       kernel=op.kernel, layer=op.layer)
    if isinstance(op, SyncAll):
        return CycleOp(op_index=i, kind="sync", stream=DEFAULT_STREAM)
    kind = "record" if isinstance(op, RecordEvent) else "wait"
    return CycleOp(op_index=i, kind=kind, stream=op.stream, event=op.event)


def direct_dependencies(
        ops: Sequence[DispatchOp],
) -> tuple[list[set[int]], dict[int, Optional[int]]]:
    """Strict-semantics direct dependency edges, plus wait bindings.

    Returns ``(deps, bindings)`` where ``deps[i]`` is the set of op
    indices op ``i`` directly depends on, and ``bindings`` maps each
    ``WaitEvent`` index to the record index it binds to (the latest
    prior record, else the earliest later record, else ``None``).
    Forward bindings contribute the edge that makes mis-ordered
    record/wait pairs cyclic under strict semantics.
    """
    record_sites: dict[int, list[int]] = {}
    for i, op in enumerate(ops):
        if isinstance(op, RecordEvent):
            record_sites.setdefault(op.event, []).append(i)

    deps: list[set[int]] = []
    bindings: dict[int, Optional[int]] = {}
    tails: dict[int, int] = {}
    barrier: Optional[int] = None
    latest_record: dict[int, int] = {}
    for i, op in enumerate(ops):
        preds: set[int] = set()
        if isinstance(op, SyncAll):
            preds.update(tails.values())
            barrier = i
            tails[DEFAULT_STREAM] = i
        else:
            stream = op.stream
            if stream == DEFAULT_STREAM:
                preds.update(tails.values())
                barrier = i
            else:
                if stream in tails:
                    preds.add(tails[stream])
                if barrier is not None:
                    preds.add(barrier)
                if isinstance(op, WaitEvent):
                    if op.event in latest_record:
                        bind = latest_record[op.event]
                    else:
                        later = [r for r in record_sites.get(op.event, ())
                                 if r > i]
                        bind = later[0] if later else None
                    bindings[i] = bind
                    if bind is not None:
                        preds.add(bind)
            tails[stream] = i
            if isinstance(op, RecordEvent):
                latest_record[op.event] = i
        preds.discard(i)
        deps.append(preds)
    return deps, bindings


def _shortest_cycle(deps: list[set[int]], wait: int,
                    bind: int) -> list[int]:
    """Shortest dependency cycle through the edge ``wait -> bind``.

    BFS from ``bind`` along dependency edges back to ``wait``; the
    returned index list starts at the wait and follows "depends-on"
    direction.  Empty when the forward edge closes no cycle.
    """
    parent: dict[int, int] = {bind: -1}
    queue = deque([bind])
    while queue:
        cur = queue.popleft()
        if cur == wait:
            path = [cur]
            while parent[path[-1]] != -1:
                path.append(parent[path[-1]])
            path.reverse()          # bind ... wait in depends-on order
            return [wait] + path[:-1]
        for nxt in sorted(deps[cur]):
            if nxt not in parent:
                parent[nxt] = cur
                queue.append(nxt)
    return []


def detect_deadlocks(program: DispatchProgram) -> list[DeadlockFinding]:
    """All deadlock findings for ``program`` under strict wait semantics.

    Findings suppressed by the program's ``allow`` set are *not*
    filtered here — use :func:`deadlock_verdict_for` for the counted
    variant (mirrors ``hazards.detect`` vs ``verdict_for``).
    """
    ops = program.ops
    deps, bindings = direct_dependencies(ops)
    findings: list[DeadlockFinding] = []
    for i, op in enumerate(ops):
        if not isinstance(op, WaitEvent) or op.stream == DEFAULT_STREAM:
            continue
        bind = bindings.get(i)
        if bind is None:
            findings.append(DeadlockFinding(
                rule="deadlock/never-recorded", wait_index=i,
                event=op.event, stream=op.stream, cycle=(),
                missing=(f"event {op.event} is never recorded; the wait "
                         f"gates nothing under permissive CUDA semantics "
                         f"and hangs forever under strict semantics — "
                         f"record the event or drop the wait"),
            ))
            continue
        if bind < i:
            continue  # normal backward binding: satisfiable, acyclic
        cycle_idx = _shortest_cycle(deps, i, bind)
        if cycle_idx:
            streams = {c.stream for c in
                       (_cycle_op(ops, j) for j in cycle_idx)}
            rule = ("deadlock/self-wait" if len(streams) == 1
                    else "deadlock/cycle")
            missing = (
                f"satisfying the wait requires the record at op {bind}, "
                f"which transitively waits on the wait itself; break the "
                f"cycle by recording event {op.event} before op {i} or "
                f"removing one edge of the loop"
            )
            findings.append(DeadlockFinding(
                rule=rule, wait_index=i, event=op.event, stream=op.stream,
                cycle=tuple(_cycle_op(ops, j) for j in cycle_idx),
                missing=missing,
            ))
        else:
            findings.append(DeadlockFinding(
                rule="deadlock/record-after-wait", wait_index=i,
                event=op.event, stream=op.stream,
                cycle=(_cycle_op(ops, i), _cycle_op(ops, bind)),
                missing=(f"the only record of event {op.event} (op {bind}) "
                         f"is issued after the wait; the engine silently "
                         f"drops the edge — move the record before the "
                         f"wait to get the intended ordering"),
            ))
    findings.sort(key=lambda f: (f.wait_index, f.rule))
    return findings


@dataclass
class DeadlockVerdict:
    """Deadlock verdict for one program (one network × plan × context)."""

    program: str
    network: str
    plan: str
    ops: int
    waits: int
    findings: list[DeadlockFinding] = field(default_factory=list)
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "program": self.program, "network": self.network,
            "plan": self.plan, "ops": self.ops, "waits": self.waits,
            "ok": self.ok, "suppressed": self.suppressed,
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass
class DeadlockReport:
    """Outcome of one ``repro analyze deadlock`` pass."""

    device: str
    pool_size: int
    batch: int
    seed: int
    entries: list[DeadlockVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries)

    @property
    def finding_count(self) -> int:
        return sum(len(e.findings) for e in self.entries)

    @property
    def suppressed(self) -> int:
        return sum(e.suppressed for e in self.entries)

    def to_dict(self) -> dict:
        return {
            "kind": "deadlock-report",
            "device": self.device, "pool_size": self.pool_size,
            "batch": self.batch, "seed": self.seed, "ok": self.ok,
            "findings": self.finding_count, "suppressed": self.suppressed,
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: Union[str, Path]) -> str:
        p = Path(path)
        p.write_text(self.to_json() + "\n", encoding="utf-8")
        return str(p)

    def render(self) -> str:
        lines = []
        for e in self.entries:
            status = "OK" if e.ok else f"{len(e.findings)} finding(s)"
            lines.append(f"  {e.program}: {e.waits} wait(s) over "
                         f"{e.ops} op(s) — {status}")
            for f in e.findings[:10]:
                lines.append(f"    {f.describe()}")
            if len(e.findings) > 10:
                lines.append(f"    ... and {len(e.findings) - 10} more")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"analyze deadlock: {verdict} ({len(self.entries)} program(s), "
            f"{self.finding_count} finding(s), {self.suppressed} "
            f"suppressed; device {self.device}, pool {self.pool_size}, "
            f"batch {self.batch}, seed {self.seed})")
        return "\n".join(lines)


def deadlock_verdict_for(program: DispatchProgram, network: str = "",
                         plan: str = "") -> DeadlockVerdict:
    """Run the detector over one program, applying the suppression set."""
    kept: list[DeadlockFinding] = []
    suppressed = 0
    for f in detect_deadlocks(program):
        if program.is_allowed(f.rule):
            suppressed += 1
        else:
            kept.append(f)
    waits = sum(1 for op in program.ops if isinstance(op, WaitEvent))
    return DeadlockVerdict(
        program=program.name, network=network, plan=plan,
        ops=len(program), waits=waits, findings=kept,
        suppressed=suppressed)


def analyze_deadlocks(networks: Sequence[str] = ZOO_NETWORKS,
                      plans: Sequence[str] = ("round-robin",),
                      device: str = "p100",
                      pool_size: int = 4,
                      batch: int = 4,
                      seed: int = 0,
                      include_interop: bool = True) -> DeadlockReport:
    """Certify every plan producer; the ``analyze deadlock`` driver.

    Covers the zoo network × plan programs (same producers the hazard
    pass certifies) and, when ``include_interop`` is set, the lowered
    stream plans of every interop policy over the inception units — the
    producers that actually emit event record/wait pairs.
    """
    report = DeadlockReport(device=device, pool_size=pool_size,
                            batch=batch, seed=seed)
    for network in networks:
        for plan in plans:
            for program in build_programs(network, plan=plan,
                                          pool_size=pool_size, batch=batch,
                                          seed=seed, device=device):
                report.entries.append(
                    deadlock_verdict_for(program, network=network,
                                         plan=plan))
    if include_interop:
        for network, plan, program in interop_programs(
                batch=min(batch, 2), device=device, streams=pool_size):
            report.entries.append(
                deadlock_verdict_for(program, network=network, plan=plan))
    return report


def interop_programs(batch: int = 2, device: str = "p100",
                     streams: int = 4) -> list[tuple[str, str,
                                                     DispatchProgram]]:
    """Lower every interop (unit, policy) pair to its dispatch program.

    Imported lazily so :mod:`repro.analyze` stays importable without the
    interop subsystem (which itself imports the analyzer).
    """
    from repro.interop.certify import plan_program, structural_effects
    from repro.interop.planner import PLAN_POLICIES, build_plan
    from repro.interop.resources import estimate_graph
    from repro.interop.workloads import INCEPTION_UNITS, inception_unit
    from repro.serve.engine import resolve_device
    props = resolve_device(device)
    out: list[tuple[str, str, DispatchProgram]] = []
    for unit in sorted(INCEPTION_UNITS):
        workload = inception_unit(unit, batch)
        graph = workload.graph
        effects = structural_effects(graph, in_place=workload.in_place)
        estimates = estimate_graph(graph, props)
        for policy in PLAN_POLICIES:
            plan = build_plan(graph, policy, streams, device=props,
                              estimates=estimates)
            out.append((unit, policy,
                        plan_program(graph, plan, effects)))
    return out
