"""Build dispatch programs for every executor plan the runtime supports.

Each builder reproduces — statically — the exact op order a dispatcher
issues, using the same round-robin assignment helper
(:func:`repro.core.stream_manager.round_robin_slots`) the runtime uses,
so the certified program *is* the dispatched program:

* ``round-robin`` — :meth:`RuntimeScheduler._dispatch`: chains over the
  pool, whole-batch serial kernels on the legacy default stream, one
  ``synchronize`` per layer;
* ``multithread`` — :class:`repro.runtime.multithread.MultiThreadDispatcher`:
  thread ``t = i % threads`` owns stream ``t``; the orderings visible to
  the hazard model are identical to round-robin (per-thread FIFOs, serial
  work on default, a join + sync per layer);
* ``fused`` — round-robin dispatch of works rewritten by
  :func:`repro.runtime.fusion.make_fusion_transform` (fusion merges
  kernels *within* a chain, so the region model is re-derived on the
  fused works);
* ``data-parallel`` — :mod:`repro.runtime.data_parallel`: each replica
  round-robin dispatches its own batch shard on its own device; one
  program per replica, hazard-checked independently (the allreduce is a
  full barrier between replicas and is outside the per-device model).

``program_from_schedule_plan`` mirrors
:class:`repro.verify.schedule.ScheduleRunner` op-for-op, including the
``sync``/``serial_stream`` mutation axes, and is how the static verdict
and the dynamic fuzzer are compared on the *same* plan.
``program_from_graph`` mirrors :func:`repro.runtime.graph.dispatch_graph`
(event record/wait edges for cross-stream DAG dependencies).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analyze.access import WorkAccess, derive_accesses
from repro.analyze.program import DispatchProgram
from repro.core.stream_manager import round_robin_slots
from repro.errors import AnalyzeError
from repro.kernels.ir import LayerWork

#: The executor plans the hazard pass certifies (CI runs all of them).
PLAN_KINDS = ("round-robin", "multithread", "fused", "data-parallel")

#: Zoo networks the hazard pass certifies, in report order.
ZOO_NETWORKS = ("cifar10", "lenet", "siamese", "caffenet", "googlenet")

#: Replica count modelled for the data-parallel plan.
DATA_PARALLEL_REPLICAS = 2


def _kernel_name(spec, layer: str, fallback: str) -> str:
    name = getattr(spec, "name", "") or fallback
    tag = getattr(spec, "tag", "")
    return f"{name}@{tag}" if tag else name


def program_from_works(works: Sequence[LayerWork],
                       accesses: Sequence[WorkAccess],
                       pool_size: int,
                       name: str = "round-robin") -> DispatchProgram:
    """The paper's dispatch: round-robin chains, serial on default, sync."""
    if len(works) != len(accesses):
        raise AnalyzeError(
            f"{len(works)} works but {len(accesses)} access plans")
    prog = DispatchProgram(name)
    for work, acc in zip(works, accesses):
        slots = round_robin_slots(len(work.parallel_chains), pool_size)
        for ci, chain in enumerate(work.parallel_chains):
            for j, spec in enumerate(chain):
                a = acc.chains[ci][j]
                prog.launch(_kernel_name(spec, work.layer, f"k{j}"),
                            stream=slots[ci] + 1,
                            reads=a.reads, writes=a.writes,
                            layer=work.key, chain=ci)
        for j, spec in enumerate(work.serial_kernels):
            a = acc.serial[j]
            prog.launch(_kernel_name(spec, work.layer, f"serial{j}"),
                        stream=0, reads=a.reads, writes=a.writes,
                        layer=work.key)
        prog.sync(label=work.key)
    return prog


def program_from_schedule_plan(works: Sequence[LayerWork],
                               accesses: Sequence[WorkAccess],
                               plan) -> DispatchProgram:
    """Mirror :meth:`ScheduleRunner.run` for a fuzzed/mutated plan."""
    if len(works) != len(accesses):
        raise AnalyzeError(
            f"{len(works)} works but {len(accesses)} access plans")
    prog = DispatchProgram(
        f"{plan.network}/schedule-plan/r{plan.round}")
    for ls in plan.layers:
        if not 0 <= ls.index < len(works):
            raise AnalyzeError(
                f"schedule references layer index {ls.index}, but only "
                f"{len(works)} works are lowered")
        work = works[ls.index]
        acc = accesses[ls.index]
        for pos, ci in enumerate(ls.chain_order):
            slot = ls.stream_of[pos] % plan.pool_size
            for j, spec in enumerate(work.parallel_chains[ci]):
                a = acc.chains[ci][j]
                prog.launch(_kernel_name(spec, work.layer, f"k{j}"),
                            stream=slot + 1,
                            reads=a.reads, writes=a.writes,
                            layer=work.key, chain=ci)
        serial_stream = (0 if ls.serial_stream is None
                         else (ls.serial_stream % plan.pool_size) + 1)
        for j, spec in enumerate(work.serial_kernels):
            a = acc.serial[j]
            prog.launch(_kernel_name(spec, work.layer, f"serial{j}"),
                        stream=serial_stream,
                        reads=a.reads, writes=a.writes, layer=work.key)
        if ls.sync:
            prog.sync(label=work.key)
    return prog


def program_from_graph(graph, num_streams: int,
                       name: Optional[str] = None) -> DispatchProgram:
    """Mirror :func:`repro.runtime.graph.dispatch_graph` for a DAG.

    Node regions come from the graph structure itself: node ``i`` writes
    ``n{i}`` and reads its dependencies' regions — precisely the effect
    set the DAG encodes.  Cross-stream edges become event record/wait
    pairs; same-stream edges ride stream FIFO order, as in the runtime.
    """
    if num_streams < 1:
        raise AnalyzeError("need at least one stream")
    prog = DispatchProgram(name or f"graph:{graph.name}")
    assignment = graph.assign_streams(num_streams)
    dependents = graph.dependents()
    recorded: set[int] = set()
    for node in graph.nodes:
        slot = assignment[node.node_id]
        for d in node.deps:
            if assignment[d] != slot and d in recorded:
                prog.wait(event=d, stream=slot + 1)
        prog.launch(node.spec.name or f"n{node.node_id}",
                    stream=slot + 1,
                    reads={f"n{d}" for d in node.deps},
                    writes={f"n{node.node_id}"},
                    layer=graph.name, chain=node.node_id)
        if any(assignment[c] != slot for c in dependents[node.node_id]):
            prog.record(event=node.node_id, stream=slot + 1)
            recorded.add(node.node_id)
    prog.sync(label=graph.name)
    return prog


def build_programs(network: str,
                   plan: str = "round-robin",
                   pool_size: int = 4,
                   batch: int = 4,
                   seed: int = 0,
                   device: str = "p100") -> list[DispatchProgram]:
    """Lower ``network`` (forward+backward) and lay it out under ``plan``.

    Returns one program per independent hardware context — a single
    program for the single-device plans, one per replica for
    ``data-parallel``.
    """
    from repro.runtime.lowering import lower_net
    from repro.serve.engine import resolve_device, resolve_net

    if plan not in PLAN_KINDS:
        raise AnalyzeError(
            f"unknown plan {plan!r}; expected one of {', '.join(PLAN_KINDS)}")

    def lowered(b: int):
        net = resolve_net(network)(batch=b, seed=seed)
        works = (list(lower_net(net, "forward"))
                 + list(lower_net(net, "backward")))
        return net, works

    if plan == "data-parallel":
        shard = max(1, batch // DATA_PARALLEL_REPLICAS)
        programs = []
        for r in range(DATA_PARALLEL_REPLICAS):
            net, works = lowered(shard)
            accesses = derive_accesses(net, works)
            programs.append(program_from_works(
                works, accesses, pool_size,
                name=f"{network}/data-parallel/r{r}"))
        return programs

    net, works = lowered(batch)
    if plan == "fused":
        from repro.runtime.fusion import make_fusion_transform
        transform = make_fusion_transform(resolve_device(device))
        works = [transform(w) for w in works]
    accesses = derive_accesses(net, works)
    return [program_from_works(works, accesses, pool_size,
                               name=f"{network}/{plan}")]
