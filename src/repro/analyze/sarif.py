"""SARIF 2.1.0 export for hazard and lint reports.

SARIF (Static Analysis Results Interchange Format) is the report format
CI systems ingest natively; ``repro analyze --sarif out.sarif`` writes
one and the CI job uploads it as an artifact when the gate fails.  Lint
violations carry physical locations (file + line); hazards, which live
in a dispatch program rather than a file, carry logical locations (the
two kernels and their layers) plus the full witness in ``properties``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

_SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")


def _driver(name: str, rules: list[dict]) -> dict:
    return {
        "tool": {
            "driver": {
                "name": name,
                "informationUri":
                    "https://example.invalid/repro/docs/static_analysis.md",
                "rules": rules,
            }
        },
        "results": [],
    }


def _hazard_run(report) -> dict:
    kinds = sorted({h.kind for e in report.entries for h in e.hazards}) \
        or ["RAW", "WAR", "WAW"]
    run = _driver("repro-analyze-hazards", [
        {"id": f"hazard/{k}",
         "shortDescription": {"text": f"{k} stream hazard: conflicting "
                                      "accesses not ordered by "
                                      "happens-before"}}
        for k in kinds
    ])
    for entry in report.entries:
        for h in entry.hazards:
            run["results"].append({
                "ruleId": f"hazard/{h.kind}",
                "level": "error",
                "message": {"text": h.describe()},
                "locations": [{
                    "logicalLocations": [
                        {"name": h.first,
                         "fullyQualifiedName":
                             f"{entry.program}/{h.first_layer}/{h.first}"},
                        {"name": h.second,
                         "fullyQualifiedName":
                             f"{entry.program}/{h.second_layer}/{h.second}"},
                    ]
                }],
                "properties": h.to_dict() | {"program": entry.program},
            })
    return run


def _lint_run(report) -> dict:
    from repro.analyze.rules import DEFAULT_RULES
    descriptions = {r.name: r.description for r in DEFAULT_RULES}
    run = _driver("repro-analyze-lint", [
        {"id": name,
         "shortDescription": {"text": descriptions.get(name, name)}}
        for name in report.rules
    ])
    for v in report.violations:
        run["results"].append({
            "ruleId": v.rule,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path},
                    "region": {"startLine": v.line},
                }
            }],
        })
    return run


def to_sarif(hazards=None, lint=None) -> dict:
    """Fold the given report(s) into one SARIF log (one run per tool)."""
    runs = []
    if hazards is not None:
        runs.append(_hazard_run(hazards))
    if lint is not None:
        runs.append(_lint_run(lint))
    return {"$schema": _SCHEMA, "version": _SARIF_VERSION, "runs": runs}


def save_sarif(path: Union[str, Path], hazards=None,
               lint=None) -> str:
    p = Path(path)
    p.write_text(json.dumps(to_sarif(hazards=hazards, lint=lint), indent=1)
                 + "\n", encoding="utf-8")
    return str(p)
