"""SARIF 2.1.0 export for the static-analysis reports.

SARIF (Static Analysis Results Interchange Format) is the report format
CI systems ingest natively; ``repro analyze --sarif out.sarif`` writes
one and the CI job uploads it as an artifact.  Lint violations carry
physical locations (file + line); hazard, deadlock and elision results,
which live in a dispatch program rather than a file, carry logical
locations (the ops and their layers) plus the full witness in
``properties``.

Every rule any run can emit is registered in :data:`RULE_META` with its
severity level, full description and help URI, so consumers get real
rule metadata instead of ids alone:

* ``hazard/*`` and ``deadlock/*`` are **errors** — the plan is wrong;
* ``capacity/*`` is a **warning** — the plan is legal but over-commits
  the device;
* ``elide/redundant-sync`` is a **note** — the op is correct but
  provably unnecessary (the elider removed it);
* lint rules are **warnings** — determinism smells in the source.

Per-run ``properties`` carry the suppressed-finding counts so a CI
dashboard can distinguish "clean" from "waived".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

_SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
           "master/Schemata/sarif-schema-2.1.0.json")
_HELP_BASE = "https://example.invalid/repro/docs/static_analysis.md"

#: Every rule id the analyzers can emit -> (level, short, full, anchor).
RULE_META: dict[str, tuple[str, str, str, str]] = {
    "hazard/RAW": (
        "error",
        "Read-after-write stream hazard",
        "A kernel reads a region another stream's kernel writes, and no "
        "happens-before edge (stream FIFO, barrier, or event) orders the "
        "pair; the read may observe stale or partial data.",
        "#stream-hazards"),
    "hazard/WAR": (
        "error",
        "Write-after-read stream hazard",
        "A kernel overwrites a region another stream's kernel reads, "
        "unordered by happens-before; the reader may observe the new "
        "value early.",
        "#stream-hazards"),
    "hazard/WAW": (
        "error",
        "Write-after-write stream hazard",
        "Two unordered kernels write the same region; the final contents "
        "depend on the schedule.",
        "#stream-hazards"),
    "deadlock/cycle": (
        "error",
        "Cross-stream event wait cycle",
        "Satisfying an event wait requires a record that transitively "
        "waits on the wait itself; under strict stream-wait semantics "
        "the program hangs.  The witness is the shortest op cycle "
        "through the offending wait.",
        "#deadlock-detection"),
    "deadlock/self-wait": (
        "error",
        "Single-stream self-wait",
        "A stream waits on an event only a later op of the same stream "
        "records — the pool-of-1 degeneration of a wait cycle.",
        "#deadlock-detection"),
    "deadlock/record-after-wait": (
        "error",
        "Record issued after its only wait",
        "The only record of the awaited event is dispatched after the "
        "wait; the engine silently drops the edge, so the intended "
        "ordering never takes effect.",
        "#deadlock-detection"),
    "deadlock/never-recorded": (
        "error",
        "Wait on a never-recorded event",
        "No op records the awaited event: the wait gates nothing under "
        "permissive CUDA semantics and hangs forever under strict "
        "semantics.",
        "#deadlock-detection"),
    "capacity/over-subscription": (
        "warning",
        "Concurrent kernels exceed device fill",
        "A concurrency level of the plan sums kernel fill fractions "
        "beyond what the device's SMs can co-schedule; the excess "
        "serializes and the plan's parallelism is partly fictional.",
        "#over-subscription"),
    "capacity/stream-pool": (
        "warning",
        "Plan uses more streams than the pool",
        "The plan touches more distinct streams than the device's "
        "concurrent-kernel pool supports; extra streams alias onto the "
        "same hardware queues.",
        "#over-subscription"),
    "elide/redundant-sync": (
        "note",
        "Provably redundant synchronization",
        "Happens-before already implies the edge this wait (or its "
        "orphaned record) enforces; the certified elider removed it "
        "without changing the launch closure.",
        "#sync-elision"),
}


def _lint_meta(name: str, description: str) -> tuple[str, str, str, str]:
    return ("warning", description or name,
            description or name, "#determinism-lint")


def _rule(rule_id: str,
          meta: Optional[tuple[str, str, str, str]] = None) -> dict:
    level, short, full, anchor = (meta or RULE_META.get(rule_id)
                                  or ("warning", rule_id, rule_id, ""))
    return {
        "id": rule_id,
        "shortDescription": {"text": short},
        "fullDescription": {"text": full},
        "helpUri": _HELP_BASE + anchor,
        "defaultConfiguration": {"level": level},
    }


def _level(rule_id: str) -> str:
    return RULE_META.get(rule_id, ("warning",))[0]


def _driver(name: str, rules: list[dict],
            properties: Optional[dict] = None) -> dict:
    run = {
        "tool": {
            "driver": {
                "name": name,
                "informationUri": _HELP_BASE,
                "rules": rules,
            }
        },
        "results": [],
    }
    if properties:
        run["properties"] = properties
    return run


def _hazard_run(report) -> dict:
    kinds = sorted({h.kind for e in report.entries for h in e.hazards}
                   | {"RAW", "WAR", "WAW"})
    run = _driver("repro-analyze-hazards",
                  [_rule(f"hazard/{k}") for k in kinds],
                  properties={"suppressed": report.suppressed})
    for entry in report.entries:
        for h in entry.hazards:
            rule_id = f"hazard/{h.kind}"
            run["results"].append({
                "ruleId": rule_id,
                "level": _level(rule_id),
                "message": {"text": h.describe()},
                "locations": [{
                    "logicalLocations": [
                        {"name": h.first,
                         "fullyQualifiedName":
                             f"{entry.program}/{h.first_layer}/{h.first}"},
                        {"name": h.second,
                         "fullyQualifiedName":
                             f"{entry.program}/{h.second_layer}/{h.second}"},
                    ]
                }],
                "properties": h.to_dict() | {"program": entry.program},
            })
    return run


def _deadlock_run(report) -> dict:
    from repro.analyze.deadlock import DEADLOCK_RULES
    run = _driver("repro-analyze-deadlock",
                  [_rule(r) for r in DEADLOCK_RULES],
                  properties={"suppressed": report.suppressed})
    for entry in report.entries:
        for f in entry.findings:
            locations = [{"name": f"op{c.op_index}",
                          "fullyQualifiedName":
                              f"{entry.program}/op{c.op_index}/{c.kind}"}
                         for c in f.cycle] or [
                {"name": f"op{f.wait_index}",
                 "fullyQualifiedName":
                     f"{entry.program}/op{f.wait_index}/wait"}]
            run["results"].append({
                "ruleId": f.rule,
                "level": _level(f.rule),
                "message": {"text": f.describe()},
                "locations": [{"logicalLocations": locations}],
                "properties": f.to_dict() | {"program": entry.program},
            })
    return run


def _elision_run(report) -> dict:
    from repro.analyze.elide import ELIDE_RULE
    run = _driver("repro-analyze-elide", [_rule(ELIDE_RULE)],
                  properties={"waits_removed": report.waits_removed,
                              "records_removed": report.records_removed})
    for entry in report.entries:
        for r in entry.removed:
            run["results"].append({
                "ruleId": ELIDE_RULE,
                "level": _level(ELIDE_RULE),
                "message": {"text": f"{entry.program}: {r.describe()}"},
                "locations": [{
                    "logicalLocations": [
                        {"name": f"op{r.op_index}",
                         "fullyQualifiedName":
                             f"{entry.program}/op{r.op_index}/{r.kind}"},
                    ]
                }],
                "properties": r.to_dict() | {"program": entry.program},
            })
    return run


def _lint_run(report) -> dict:
    from repro.analyze.rules import DEFAULT_RULES
    descriptions = {r.name: r.description for r in DEFAULT_RULES}
    run = _driver(
        "repro-analyze-lint",
        [_rule(name, _lint_meta(name, descriptions.get(name, name)))
         for name in report.rules],
        properties={"suppressed": getattr(report, "suppressed", 0)})
    for v in report.violations:
        run["results"].append({
            "ruleId": v.rule,
            "level": "warning",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": v.path},
                    "region": {"startLine": v.line},
                }
            }],
        })
    return run


def to_sarif(hazards=None, deadlock=None, elision=None,
             lint=None) -> dict:
    """Fold the given report(s) into one SARIF log (one run per tool)."""
    runs = []
    if hazards is not None:
        runs.append(_hazard_run(hazards))
    if deadlock is not None:
        runs.append(_deadlock_run(deadlock))
    if elision is not None:
        runs.append(_elision_run(elision))
    if lint is not None:
        runs.append(_lint_run(lint))
    return {"$schema": _SCHEMA, "version": _SARIF_VERSION, "runs": runs}


def save_sarif(path: Union[str, Path], hazards=None, deadlock=None,
               elision=None, lint=None) -> str:
    p = Path(path)
    p.write_text(json.dumps(to_sarif(hazards=hazards, deadlock=deadlock,
                                     elision=elision, lint=lint),
                            indent=1) + "\n", encoding="utf-8")
    return str(p)
